#!/usr/bin/env python3
"""A two-server replication fabric that heals itself.

Two Clarens servers share one monitoring bus.  Site B holds the only copy of
a dataset; site A attaches site B as a *remote storage element*, installs a
2-copy policy, and pulls a local replica across the fabric.  Then the local
copy rots on disk: verification quarantines it, the quarantine event fires
the policy engine, and the fabric heals itself back to two healthy copies on
a fresh element — no operator in the loop.  Transfers are write-ahead
journalled throughout, so a crash at any point would replay on restart.

Run with::

    python examples/replication_fabric.py
"""

from __future__ import annotations

import tempfile
import time

from repro.client.client import ClarensClient
from repro.client.files import download_lfn
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.monitoring.bus import MessageBus
from repro.pki.authority import CertificateAuthority
from repro.replica.storage import RemoteStorageElement

ADMIN_DN = "/O=fabric.example/OU=People/CN=Fabric Operations"
LFN = "/lfn/cms/run7/higgs-candidates.dat"
DATA = b"four-lepton candidate events " * 2048


def wait_for(predicate, *, timeout: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise RuntimeError(f"timed out waiting for {what}")


def main() -> None:
    ca = CertificateAuthority("/O=fabric.example/CN=Fabric CA", key_bits=512)
    operator = ca.issue_user("Fabric Operations")
    analyst = ca.issue_user("Nadia Analyst")
    replicator = ca.issue_user("Replication Service")

    bus = MessageBus()                        # one monitoring network
    observed: list[str] = []
    for prefix in ("replica.transfer.done", "replica.transfer.recovered",
                   "replica.quarantine", "replica.policy"):
        bus.subscribe(prefix,
                      lambda m: (observed.append(m.topic),
                                 print(f"  [bus] {m.topic} "
                                       f"(from {m.source or '?'})")))

    with tempfile.TemporaryDirectory(prefix="clarens-fabric-") as workdir:
        servers: dict[str, ClarensServer] = {}
        for site in ("a", "b"):
            host = ca.issue_host(f"clarens.site-{site}.example")
            config = ServerConfig(
                server_name=f"clarens-site-{site}",
                admins=[ADMIN_DN],
                data_dir=f"{workdir}/site-{site}",
                host_dn=str(host.certificate.subject),
                replica_journal_enabled=True,     # restart-safe transfers
                replica_retry_delay=0.01,
                replica_heal_backoff=0.05,
            )
            servers[site] = ClarensServer(config, credential=host,
                                          trust_store=ca.trust_store(),
                                          message_bus=bus)
        site_a, site_b = servers["a"], servers["b"]

        # ---------------------------------------------- data lands at site B
        nadia_b = ClarensClient.for_loopback(site_b.loopback())
        nadia_b.login_with_credential(analyst)
        nadia_b.call("file.write", LFN, DATA, False)
        entry = nadia_b.call("replica.register", LFN, "local", LFN)
        print(f"site-b: registered {LFN}")
        print(f"        {entry['size']} bytes, md5 {entry['checksum'][:12]}…")

        # ------------------------- site A attaches site B as a remote element
        peer = ClarensClient.for_loopback(site_b.loopback())
        peer.login_with_credential(replicator)
        site_a.services["replica"].add_storage_element(
            RemoteStorageElement("site-b", peer))
        nadia_a = ClarensClient.for_loopback(site_a.loopback())
        nadia_a.login_with_credential(analyst)
        nadia_a.call("replica.register", LFN, "site-b", LFN)
        print("site-a: attached site-b as a remote storage element and "
              "registered the LFN")

        # -------------------------------------- a 2-copy policy pulls a copy
        ops = ClarensClient.for_loopback(site_a.loopback())
        ops.login_with_credential(operator)
        ops.call("replica.set_policy", "/lfn/cms", 2)
        decision = nadia_a.call("replica.heal", LFN)
        print(f"site-a: policy /lfn/cms -> 2 copies; heal decision: "
              f"{decision['action']} -> "
              f"{[s['dst_se'] for s in decision['scheduled']]}")
        wait_for(lambda: len([r for r in nadia_a.call(
                     "replica.stat", LFN)["replicas"].values()
                     if r["state"] == "active"]) >= 2,
                 what="first heal (site-b -> local)")
        print("site-a: healed to 2 active copies "
              "(site-b remote + local disk)\n")

        # ------------------------------------------- the local copy bit-rots
        local_path = site_a.file_root / LFN.lstrip("/")
        local_path.write_bytes(b"cosmic ray went through the disk")
        print("site-a: local replica silently corrupted on disk")
        verdict = nadia_a.call("replica.verify", LFN, "local")
        print(f"site-a: replica.verify -> local copy is "
              f"{verdict['replicas']['local']['state']}")

        # The quarantine event already fired the policy engine; watch the
        # fabric repair itself onto a fresh element (the SRM mass store).
        wait_for(lambda: len([r for r in nadia_a.call(
                     "replica.stat", LFN)["replicas"].values()
                     if r["state"] == "active"]) >= 2,
                 what="auto-heal after quarantine")
        final = nadia_a.call("replica.stat", LFN)
        states = {se: r["state"] for se, r in final["replicas"].items()}
        print(f"site-a: auto-healed back to 2 healthy copies: {states}\n")

        # ------------------------------------------------ proof of the bytes
        assert download_lfn(nadia_a, LFN) == DATA
        assert download_lfn(nadia_b, LFN) == DATA
        assert states["local"] == "quarantined"          # evidence preserved
        assert sum(1 for s in states.values() if s == "active") == 2
        assert "replica.quarantine" in observed
        assert any(t.startswith("replica.policy.heal_scheduled")
                   for t in observed)
        assert any(t.startswith("replica.policy.healed") for t in observed)
        stats = nadia_a.call("replica.stats")
        print(f"site-a stats: {stats['policy']['heals_completed']} heals, "
              f"journal entries now {stats['journal']['entries']} "
              f"(drained), broker reads {stats['broker']['reads']}")

        for client in (nadia_a, nadia_b, ops, peer):
            client.close()
        for server in servers.values():
            server.close()

    print("\nreplication fabric demo complete")


if __name__ == "__main__":
    main()
