#!/usr/bin/env python3
"""Secure file sharing: proxies, delegation, VO-scoped ACLs and the shell sandbox.

A common grid pattern the paper's proxy and shell services exist for:

1. a scientist creates a proxy certificate and stores it on the server under
   a password (so she can later log in from a web browser or a batch node
   with just DN + password);
2. she delegates a *limited* proxy to a colleague's production job, which can
   then act on her behalf — but only within the rights she granted;
3. data access is controlled per VO group with read/write file ACLs, and the
   sandbox from the shell service is used as the working area.

Run with::

    python examples/secure_file_sharing.py
"""

from __future__ import annotations

import tempfile

from repro.acl.model import ACL
from repro.client.client import ClarensClient
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.pki.authority import CertificateAuthority
from repro.pki.proxy import ProxyCertificate, issue_proxy

ADMIN_DN = "/O=ligo.example/OU=People/CN=Site Admin"


def main() -> None:
    ca = CertificateAuthority("/O=ligo.example/CN=LIGO Lab CA")
    host = ca.issue_host("clarens.ligo.example")
    admin = ca.issue_user("Site Admin")
    grace = ca.issue_user("Grace Gravwave")       # data owner
    worker = ca.issue_user("Walter Worker")        # runs the production jobs

    with tempfile.TemporaryDirectory(prefix="clarens-sharing-") as workdir:
        config = ServerConfig(server_name="ligo-data", admins=[ADMIN_DN],
                              data_dir=f"{workdir}/state",
                              file_root=f"{workdir}/files",
                              shell_root=f"{workdir}/files/sandboxes",
                              host_dn=str(host.certificate.subject))
        server = ClarensServer(config, credential=host, trust_store=ca.trust_store())

        admin_client = ClarensClient.for_loopback(server.loopback())
        admin_client.login_with_credential(admin)
        grace_dn = str(grace.certificate.subject)
        worker_dn = str(worker.certificate.subject)

        # ------------------------------------------------------------- VO/ACLs
        # Writes are restricted to the data owner by DN (a sub-group would not
        # do: per section 2.1, members of the parent group are automatically
        # members of every sub-group).
        admin_client.call("vo.create_group", "ligo", [grace_dn, worker_dn], [], "LIGO members")
        admin_client.call("acl.set_file_acl", "/strain",
                          ACL(groups_allowed=["ligo"]).to_record(),            # read: all of LIGO
                          ACL(dns_allowed=[grace_dn, ADMIN_DN]).to_record())   # write: owner only
        admin_client.call("shell.add_mapping", "grace", [grace_dn], [])
        admin_client.call("shell.add_mapping", "worker", [worker_dn], [])

        # ------------------------------------------------------ owner uploads
        grace_client = ClarensClient.for_loopback(server.loopback())
        grace_client.login_with_credential(grace)
        grace_client.call("file.write", "/strain/H1_segment_001.dat", b"\x01\x02" * 4096, False)
        print("grace uploaded:", grace_client.call("file.stat", "/strain/H1_segment_001.dat"))

        # A colleague can read but not overwrite the data.
        worker_client = ClarensClient.for_loopback(server.loopback())
        worker_client.login_with_credential(worker)
        print("worker read OK:",
              len(worker_client.call("file.read", "/strain/H1_segment_001.dat", 0, 1024)), "bytes")
        _, fault = worker_client.try_call("file.write", "/strain/H1_segment_001.dat", b"x", False)
        print(f"worker write denied as expected (fault {fault.code})")

        # ------------------------------------------------ proxy store / login
        grace_proxy = issue_proxy(grace, lifetime=6 * 3600)
        grace_client.call("proxy.store", grace_proxy.to_dict(), "correct horse battery")
        print("\nproxy stored for", grace_dn)

        # Later, from a machine with no certificate files: DN + password login.
        browser_session = ClarensClient.for_loopback(server.loopback())
        browser_session.login_with_stored_proxy(grace_dn, "correct horse battery")
        print("password-only login as:", browser_session.whoami()["dn"])

        # --------------------------------------------------------- delegation
        delegated = ProxyCertificate.from_dict(
            grace_client.call("proxy.delegate", grace_dn, "correct horse battery", 3600.0, True))
        print(f"delegated proxy: depth={delegated.delegation_depth}, limited={delegated.limited}")

        # Walter's job logs in *as Grace* using only the delegated proxy and
        # writes the calibration result into the owners-only area — rights it
        # got through delegation, not through its own identity.
        job_client = ClarensClient.for_loopback(server.loopback())
        job_client.login_with_proxy(delegated)
        print("job authenticated as:", job_client.whoami()["dn"])
        job_client.call("file.write", "/strain/H1_segment_001.calibrated", b"calibrated", False)
        print("delegated write succeeded:",
              job_client.call("file.exists", "/strain/H1_segment_001.calibrated"))

        # ------------------------------------------------- sandbox + cleanup
        sandbox = grace_client.call("shell.cmd_info")
        grace_client.call("shell.cmd", "echo analysis notes > notes.txt")
        print("\ngrace's sandbox lives under the file root:", sandbox["file_service_path"])
        if sandbox["file_service_path"]:
            notes_path = f"{sandbox['file_service_path']}/notes.txt"
            print("notes visible through the file service:",
                  grace_client.call("file.read", notes_path, 0, -1))

        print("\nstored proxy metadata:", grace_client.call("proxy.info", ""))
        grace_client.call("proxy.delete", "")
        server.close()
    print("\nsecure file sharing example complete.")


if __name__ == "__main__":
    main()
