#!/usr/bin/env python3
"""Service discovery across a federation of Clarens servers.

Reproduces section 2.4 of the paper: several Clarens servers publish their
service descriptors (UDP-style) to MonALISA station servers; a discovery
server aggregates them from the monitoring network; clients make
location-independent calls that bind to a live endpoint at call time — and
keep working when a service moves from one server to another.

Run with::

    python examples/discovery_federation.py
"""

from __future__ import annotations

import tempfile

from repro.client.client import ClarensClient
from repro.client.discovery_client import DiscoveryAwareClient, ServerDirectory
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.core.system import SystemService
from repro.discovery.publisher import ServicePublisher
from repro.discovery.service import DiscoveryService
from repro.monitoring.bus import MessageBus
from repro.monitoring.monalisa import MonALISARepository
from repro.monitoring.station import StationServer

ADMIN_DN = "/O=grid.example/OU=People/CN=Grid Operations"


def main() -> None:
    ca_kwargs = {}
    from repro.pki.authority import CertificateAuthority

    ca = CertificateAuthority("/O=grid.example/CN=Federation CA", **ca_kwargs)
    operator = ca.issue_user("Grid Operations")
    analyst = ca.issue_user("Nadia Analyst")

    # The monitoring substrate: one bus, one repository, one station per site.
    bus = MessageBus()
    repository = MonALISARepository(bus)
    stations = {site: StationServer(f"station-{site}", bus, site_name=site)
                for site in ("caltech", "cern", "fnal")}

    directory = ServerDirectory()
    servers: list[ClarensServer] = []
    publishers: list[ServicePublisher] = []

    with tempfile.TemporaryDirectory(prefix="clarens-federation-") as workdir:
        # ------------------------------------------------ three worker servers
        for site in stations:
            host = ca.issue_host(f"clarens.{site}.example")
            config = ServerConfig(server_name=f"clarens-{site}", admins=[ADMIN_DN],
                                  data_dir=f"{workdir}/{site}",
                                  host_dn=str(host.certificate.subject))
            server = ClarensServer(config, credential=host, trust_store=ca.trust_store())
            servers.append(server)
            url = f"loopback://clarens-{site}/clarens/rpc"
            directory.register_loopback(url, server.loopback())
            publisher = ServicePublisher(stations[site],
                                         lambda s=server, u=url: s.service_descriptor(url=u),
                                         reliable=True)
            publisher.publish_once()
            publishers.append(publisher)
            print(f"{config.server_name}: published {len(server.registry.list_methods())} "
                  f"methods to {stations[site].name}")

        # ------------------------------------------- the discovery server
        host = ca.issue_host("discovery.grid.example")
        discovery_server = ClarensServer(
            ServerConfig(server_name="discovery", admins=[ADMIN_DN],
                         host_dn=str(host.certificate.subject)),
            credential=host, trust_store=ca.trust_store(),
            monitor=repository, register_default_services=False)
        discovery_server.add_service(SystemService(discovery_server))
        discovery_service = discovery_server.add_service(DiscoveryService(discovery_server))
        discovery_service.on_start()
        synced = discovery_service.registry.sync_from_repository()
        servers.append(discovery_server)
        print(f"\ndiscovery server aggregated {synced} descriptors from the monitoring network")
        print(f"monitoring snapshot: {repository.snapshot()}")

        # --------------------------------------- location-independent clients
        discovery_client = ClarensClient.for_loopback(discovery_server.loopback())
        discovery_client.login_with_credential(operator)

        smart = DiscoveryAwareClient(
            discovery_client, directory,
            login=lambda client: client.login_with_credential(analyst))

        url = smart.resolve_url(module="file")
        print(f"\n'file' module currently resolves to: {url}")
        smart.call("file.write", "/shared/notes.txt", b"written via discovery binding", False)
        print("file.read via discovery:",
              smart.call("file.read", "/shared/notes.txt", 0, -1))

        # ------------------------------------------------ a service moves site
        moved_from = url.split("//")[1].split("/")[0]
        print(f"\nsimulating an outage of {moved_from} …")
        discovery_client.call("discovery.deregister", moved_from, "")
        smart.unbind("file")
        new_url = smart.resolve_url(module="file")
        print(f"'file' module now resolves to: {new_url}")
        smart.call("file.write", "/shared/after_move.txt", b"still working", False)
        print("call after the move still succeeds:",
              smart.call("file.exists", "/shared/after_move.txt"))

        # ------------------------------------------------------------- wrap up
        for server in servers:
            server.close()
    print("\ndiscovery federation example complete.")


if __name__ == "__main__":
    main()
