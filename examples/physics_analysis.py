#!/usr/bin/env python3
"""A CMS-style distributed analysis session across two Clarens servers.

This is the workload the paper's introduction motivates: a geographically
distributed collaboration whose event data sits at different sites and whose
members have different rights.  The script builds:

* a Tier-1 Clarens server holding the staged dataset (file + VO + ACL
  services), and a Tier-2 server where the analysis jobs run (shell + job
  services);
* a VO with a ``cms`` group and a ``cms.higgs`` analysis subgroup;
* file ACLs so only the Higgs group reads the staged events;
* an analysis "skim" submitted as jobs on the Tier-2 server, whose outputs
  are uploaded back to the Tier-1 store and checksummed.

Run with::

    python examples/physics_analysis.py
"""

from __future__ import annotations

import tempfile

from repro.acl.model import ACL
from repro.bench.workloads import make_event_file
from repro.client.client import ClarensClient
from repro.client.files import download_file, upload_file
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.pki.authority import CertificateAuthority

ADMIN_DN = "/O=cms.example/OU=People/CN=Production Manager"


def make_server(ca: CertificateAuthority, name: str, workdir: str) -> ClarensServer:
    host = ca.issue_host(f"{name}.cms.example")
    config = ServerConfig(
        server_name=name,
        data_dir=f"{workdir}/{name}/state",
        file_root=f"{workdir}/{name}/files",
        shell_root=f"{workdir}/{name}/sandboxes",
        admins=[ADMIN_DN],
        host_dn=str(host.certificate.subject),
    )
    return ClarensServer(config, credential=host, trust_store=ca.trust_store())


def main() -> None:
    ca = CertificateAuthority("/O=cms.example/CN=CMS Experiment CA")
    manager = ca.issue_user("Production Manager")
    alice = ca.issue_user("Alice Adams")      # Higgs group analyst
    bob = ca.issue_user("Bob Brown")          # CMS member, not in the Higgs group

    with tempfile.TemporaryDirectory(prefix="clarens-analysis-") as workdir:
        tier1 = make_server(ca, "tier1", workdir)
        tier2 = make_server(ca, "tier2", workdir)

        admin_t1 = ClarensClient.for_loopback(tier1.loopback())
        admin_t1.login_with_credential(manager)
        admin_t2 = ClarensClient.for_loopback(tier2.loopback())
        admin_t2.login_with_credential(manager)

        # ------------------------------------------------------------------ VO
        # Note on the VO semantics (paper section 2.1): members of a *parent*
        # group are automatically members of its sub-groups, so a restricted
        # analysis group must be a separate top-level group rather than a
        # child of ``cms``.
        alice_dn = str(alice.certificate.subject)
        bob_dn = str(bob.certificate.subject)
        admin_t1.call("vo.create_group", "cms", [alice_dn, bob_dn], [], "CMS collaboration")
        admin_t1.call("vo.create_group", "higgs", [alice_dn], [], "Higgs analysis group")
        print("VO groups on tier1:", admin_t1.call("vo.list_groups", ""))

        # ------------------------------------------------------ stage the data
        event_path = make_event_file(tier1.file_root, size_bytes=2 << 20,
                                     name="run2005A_events.dat")
        admin_t1.call("acl.set_file_acl", "/",
                      ACL(groups_allowed=["cms"]).to_record(),
                      ACL(dns_allowed=[ADMIN_DN, alice_dn]).to_record())
        # The dataset itself: readable by the Higgs group, *specifically denied*
        # at this lower level to the rest of CMS (the paper's override rule).
        admin_t1.call("acl.set_file_acl", "/run2005A_events.dat",
                      ACL(order="deny,allow", groups_allowed=["higgs"],
                          groups_denied=["cms"]).to_record(),
                      ACL(dns_allowed=[ADMIN_DN]).to_record())
        print(f"staged dataset: {event_path.name} "
              f"({admin_t1.call('file.size', '/run2005A_events.dat')} bytes)")

        # ----------------------------------------------- access control checks
        alice_t1 = ClarensClient.for_loopback(tier1.loopback())
        alice_t1.login_with_credential(alice)
        bob_t1 = ClarensClient.for_loopback(tier1.loopback())
        bob_t1.login_with_credential(bob)

        checksum = alice_t1.call("file.md5", "/run2005A_events.dat")
        print(f"alice reads the dataset checksum: {checksum[:16]}…")
        _, fault = bob_t1.try_call("file.read", "/run2005A_events.dat", 0, 64)
        print(f"bob is denied as expected: fault {fault.code} ({fault.message[:60]}…)")

        # ------------------------------------------------- analysis on tier-2
        admin_t2.call("shell.add_mapping", "alice", [alice_dn], [])
        alice_t2 = ClarensClient.for_loopback(tier2.loopback())
        alice_t2.login_with_credential(alice)

        # Transfer the dataset tier1 -> local -> tier2 sandbox (the 2005 way).
        data = download_file(alice_t1, "/run2005A_events.dat", verify_checksum=True)
        sandbox = alice_t2.call("shell.cmd_info")
        print(f"alice's tier2 sandbox: {sandbox['sandbox']}")
        with tempfile.NamedTemporaryFile() as staging:
            staging.write(data)
            staging.flush()
            upload_file(alice_t2, staging.name, "/staged/run2005A_events.dat")
        print("dataset staged on tier2:",
              alice_t2.call("file.stat", "/staged/run2005A_events.dat")["size"], "bytes")

        # Submit skim jobs (one per "trigger stream").
        job_ids = []
        for stream in ("mu", "e", "tau"):
            job = alice_t2.call(
                "job.submit",
                f"echo skimming {stream} stream from run2005A > skim_{stream}.log && "
                f"echo 125.0 >> skim_{stream}.log && cat skim_{stream}.log",
                f"skim-{stream}", {"dataset": "/staged/run2005A_events.dat"})
            job_ids.append(job["job_id"])
        ran = admin_t2.call("job.run_pending", 0)
        print(f"tier2 scheduler executed {ran} jobs")
        for job_id in job_ids:
            output = alice_t2.call("job.output", job_id)
            print(f"  job {job_id[:8]}… -> {output['state']}, "
                  f"last line: {output['stdout'].splitlines()[-1]!r}")

        # --------------------------------------- publish results back to tier1
        results = alice_t2.call("shell.cmd", "cat skim_mu.log skim_e.log skim_tau.log")
        alice_t1.call("file.write", "/results/higgs_candidates.txt",
                      results["stdout"].encode(), False)
        print("results published to tier1:",
              alice_t1.call("file.stat", "/results/higgs_candidates.txt"))

        for client in (admin_t1, admin_t2, alice_t1, alice_t2, bob_t1):
            client.logout()
        tier1.close()
        tier2.close()
    print("\nphysics analysis example complete.")


if __name__ == "__main__":
    main()
