#!/usr/bin/env python3
"""A three-server federation on the ``repro.fabric`` peering substrate.

Three Clarens servers — each with its *own* monitoring bus, so nothing is
shared in-process — peer with each other over authenticated channels.  The
fabric then does three jobs at once, all on its background loops:

* **catalogue anti-entropy**: a dataset registered only on site-1 appears in
  site-2's and site-3's catalogues within a sync round and is readable
  through them, with no transfer having been scheduled;
* **fabric-wide admission**: a hot client throttled on site-1 is
  pre-throttled on the other sites within a gossip interval;
* **failure handling**: site-2 is killed (its network link severed); the
  survivors mark the peer down, and a dataset registered afterwards still
  converges between site-1 and site-3.

Run with::

    python examples/federation_fabric.py
"""

from __future__ import annotations

import time

from repro.client.client import ClarensClient
from repro.client.errors import ClientError
from repro.client.files import download_lfn
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.pki.authority import CertificateAuthority
from repro.protocols.errors import Fault, FaultCode

ADMIN_DN = "/O=fabric.example/OU=People/CN=Fabric Operations"
SITES = ("site-1", "site-2", "site-3")
LFN = "/lfn/cms/run9/muon-candidates.dat"
LFN_LATE = "/lfn/cms/run9/late-arrivals.dat"
DATA = b"di-muon candidate events " * 1024
DATA_LATE = b"events recorded after the outage " * 512


def wait_for(predicate, *, timeout: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise RuntimeError(f"timed out waiting for {what}")


def main() -> None:
    ca = CertificateAuthority("/O=fabric.example/CN=Fabric CA", key_bits=512)
    peering = ca.issue_user("Fabric Peering Service")
    peering_dn = str(peering.certificate.subject)
    analyst = ca.issue_user("Nadia Analyst")
    hot = ca.issue_user("Hot Client")

    events: list[str] = []
    servers: dict[str, ClarensServer] = {}
    for site in SITES:
        host = ca.issue_host(f"clarens.{site}.example")
        config = ServerConfig(
            server_name=site,
            admins=[ADMIN_DN],
            host_dn=str(host.certificate.subject),
            dispatch_rate_limit=0.001,        # ~none per second: demo-tight
            dispatch_burst=8,
            fabric_gossip_interval=0.05,      # background flusher
            fabric_catalogue_sync=0.1,        # background anti-entropy
        )
        servers[site] = ClarensServer(config, credential=host,
                                      trust_store=ca.trust_store())
        for prefix in ("fabric.peer", "fabric.sync", "fabric.admission"):
            servers[site].message_bus.subscribe(
                prefix, lambda m, s=site: events.append(f"{s}:{m.topic}"))

    # ------------------------------------------------- the full-mesh network
    # Every link goes through this table, so "killing" a site later means
    # flipping its entry — exactly what a dead host looks like to its peers.
    alive = {site: True for site in SITES}

    def link(target_site: str):
        def factory() -> ClarensClient:
            if not alive[target_site]:
                raise ClientError(f"{target_site} is unreachable")
            # The peering credential identifies the channel via its TLS DN:
            # no login round-trips, and registered peer DNs are exempt from
            # admission (fabric traffic is paced by the fabric intervals).
            return ClarensClient.for_loopback(
                servers[target_site].loopback(), credential=peering)
        return factory

    for site in SITES:
        for other in SITES:
            if other != site:
                servers[site].fabric.add_peer(other, factory=link(other),
                                              dn=peering_dn)
    print("federation up: 3 sites, full mesh, gossip + anti-entropy running")

    # ------------------------------------------ catalogue convergence (1->*)
    nadia_1 = ClarensClient.for_loopback(servers["site-1"].loopback(),
                                         credential=analyst)
    nadia_1.call("file.write", LFN, DATA, False)
    nadia_1.call("replica.register", LFN, "local", LFN)
    print(f"site-1: registered {LFN} ({len(DATA)} bytes)")

    readers = {}
    for site in ("site-2", "site-3"):
        readers[site] = ClarensClient.for_loopback(servers[site].loopback(),
                                                   credential=analyst)
    for site in ("site-2", "site-3"):
        wait_for(lambda s=site: servers[s].services["replica"]
                 .catalogue.exists(LFN),
                 what=f"catalogue convergence on {site}")
        assert download_lfn(readers[site], LFN) == DATA
        print(f"{site}: catalogue converged; read the dataset through the "
              f"fabric (no transfer was scheduled)")

    # ------------------------------------------------ fabric-wide admission
    hot_1 = ClarensClient.for_loopback(servers["site-1"].loopback(),
                                       credential=hot)
    throttled = False
    for _ in range(16):                      # drain the burst, then trip
        try:
            hot_1.call("system.ping")
        except Fault as fault:
            assert fault.code == FaultCode.RETRY_LATER
            throttled = True
            break
    assert throttled, "site-1 should have shed the hot client"
    print("site-1: hot client throttled (RETRY_LATER)")
    for site in ("site-2", "site-3"):
        wait_for(lambda s=site: servers[s].pipeline.admission
                 .stats()["sheds_applied"] >= 1,
                 what=f"shed advert applied on {site}")
        hot_n = ClarensClient.for_loopback(servers[site].loopback(),
                                           credential=hot)
        try:
            hot_n.call("system.ping")
            raise RuntimeError(f"{site} admitted the pre-shed hot client")
        except Fault as fault:
            assert fault.code == FaultCode.RETRY_LATER
        hot_n.close()
        print(f"{site}: hot client pre-throttled before ever being served")

    # --------------------------------------------------------- kill site-2
    alive["site-2"] = False
    servers["site-2"].close()
    for site in ("site-1", "site-3"):
        servers[site].fabric.channels["site-2"].close()   # sever live links
    print("\nsite-2 killed (host down, links severed)")
    for site in ("site-1", "site-3"):
        wait_for(lambda s=site: servers[s].fabric.registry
                 .get("site-2").state == "down",
                 what=f"{site} noticing the dead peer")
        print(f"{site}: marked site-2 down "
              f"(fabric.peer.down published)")

    # The survivors keep converging without the dead member.
    nadia_1.call("file.write", LFN_LATE, DATA_LATE, False)
    nadia_1.call("replica.register", LFN_LATE, "local", LFN_LATE)
    wait_for(lambda: servers["site-3"].services["replica"]
             .catalogue.exists(LFN_LATE),
             what="post-outage convergence on site-3")
    assert download_lfn(readers["site-3"], LFN_LATE) == DATA_LATE
    print("site-3: post-outage dataset converged and is readable — the "
          "fabric degraded, it did not stop")

    assert any(e.endswith("fabric.peer.down") for e in events)
    assert any(":fabric.sync.round" in e for e in events)
    assert any(":fabric.admission.shed" in e for e in events)
    status = servers["site-1"].fabric.sync.stats()
    print(f"\nsite-1 sync stats: {status['rounds']} rounds, "
          f"{status['replicas_imported']} replicas imported, "
          f"{status['errors']} peer errors survived")

    nadia_1.close()
    hot_1.close()
    for client in readers.values():
        client.close()
    for site in ("site-1", "site-3"):
        servers[site].close()

    print("\nfederation fabric demo complete")


if __name__ == "__main__":
    main()
