#!/usr/bin/env python3
"""One observability plane over a three-site Clarens fabric.

Three telemetry-enabled Clarens servers peer into a full mesh.  Site B holds
the only good copy of a dataset; site A's local replica bit-rots, gets
quarantined by verification, and the policy engine heals it back across the
fabric.  The point of the demo is not the heal — it is that the whole chain
is *observable from anywhere*:

* the verify → quarantine → heal → cross-server pull is retrieved as ONE
  assembled span tree (``system.trace_tree``) whose nodes carry the name of
  the server that executed them;
* one ``GET /metrics/federation`` scrape on site C returns every site's
  series, re-labelled ``server="..."``;
* a declarative alert rule on site A fires once, gossips fabric-wide, and
  shows up in site C's fleet health — then resolves the same way.

Run with::

    python examples/observability_federation.py
"""

from __future__ import annotations

import json
import tempfile
import time

from repro.client.client import ClarensClient
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.httpd.message import HTTPRequest
from repro.pki.authority import CertificateAuthority

ADMIN_DN = "/O=fabric.example/OU=People/CN=Fabric Operations"
SITES = ("site-a", "site-b", "site-c")
LFN = "/lfn/cms/run11/tau-candidates.dat"
DATA = b"hadronic tau candidate events " * 1024


def wait_for(predicate, *, timeout: float = 30.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    raise RuntimeError(f"timed out waiting for {what}")


def print_tree(nodes, depth=0):
    for node in nodes:
        orphan = "  [parent span evicted]" if node.get("missing_parent") \
            else ""
        print(f"    {'  ' * depth}{node['server']:<8} "
              f"{node['method'] or '(http)':<24} "
              f"{node['duration_s'] * 1000:7.2f}ms{orphan}")
        print_tree(node["children"], depth + 1)


def main() -> None:
    ca = CertificateAuthority("/O=fabric.example/CN=Fabric CA", key_bits=512)
    peering = ca.issue_user("Fabric Peering Service")
    peering_dn = str(peering.certificate.subject)
    operator = ca.issue_user("Fabric Operations")
    analyst = ca.issue_user("Nadia Analyst")

    with tempfile.TemporaryDirectory(prefix="clarens-obs-") as workdir:
        servers: dict[str, ClarensServer] = {}
        for site in SITES:
            host = ca.issue_host(f"clarens.{site}.example")
            config = ServerConfig(
                server_name=site,
                admins=[ADMIN_DN],
                data_dir=f"{workdir}/{site}",
                host_dn=str(host.certificate.subject),
                telemetry_enabled=True,
                replica_retry_delay=0.01,
                replica_heal_backoff=0.05,
                fabric_gossip_interval=0.05,
                fabric_catalogue_sync=0.1,
                # One line of operator intent: more than two live sessions
                # on this box is unusual enough to tell the whole fleet.
                telemetry_alert_rules=[
                    "busy: gauge(clarens_sessions_active) >= 3 "
                    "severity=warning"] if site == "site-a" else [],
            )
            servers[site] = ClarensServer(config, credential=host,
                                          trust_store=ca.trust_store())

        def link(target):
            def factory():
                return ClarensClient.for_loopback(
                    servers[target].loopback(), credential=peering)
            return factory

        for site in SITES:
            for other in SITES:
                if other != site:
                    servers[site].fabric.add_peer(other, factory=link(other),
                                                  dn=peering_dn)
        print("fabric up: 3 telemetry-enabled sites, full mesh\n")

        # ---------------------------------------------- data lands at site B
        nadia_b = ClarensClient.for_loopback(servers["site-b"].loopback(),
                                             credential=analyst)
        nadia_b.call("file.write", LFN, DATA, False)
        nadia_b.call("replica.register", LFN, "local", LFN)
        wait_for(lambda: servers["site-a"].services["replica"]
                 .catalogue.exists(LFN),
                 what="catalogue convergence on site-a")
        print(f"site-b: registered {LFN}; site-a's catalogue converged")

        # --------------------- site A mirrors it, then the local copy rots
        ops_a = ClarensClient.for_loopback(servers["site-a"].loopback(),
                                           credential=operator)
        ops_a.call("file.write", LFN, DATA, False)
        ops_a.call("replica.register", LFN, "local", LFN)
        ops_a.call("replica.set_policy", "/lfn/cms", 2)
        ops_a.call("file.write", LFN, b"cosmic ray went through", False)
        verdict = ops_a.call("replica.verify", LFN, "local")
        state = verdict["replicas"]["local"]["state"]
        print(f"site-a: local copy corrupted; replica.verify -> {state}")
        wait_for(lambda: sum(
                 1 for r in ops_a.call("replica.stat", LFN)
                 ["replicas"].values() if r["state"] == "active") >= 2,
                 what="auto-heal back to 2 copies")
        print("site-a: policy engine healed back to 2 active copies over "
              "the fabric\n")

        # ----------------- the whole chain, as ONE cross-server span tree
        spans = ops_a.call("system.trace")["spans"]
        trace_id = [s for s in spans
                    if s["method"] == "replica.verify"][-1]["trace_id"]
        # Ask site C — which executed nothing — for the assembled tree: the
        # collector fans out to every peer and stitches the answers.
        ops_c = ClarensClient.for_loopback(servers["site-c"].loopback(),
                                           credential=operator)
        tree = ops_c.fetch_trace(trace_id)
        print(f"trace {trace_id} assembled on site-c: "
              f"{tree['span_count']} spans from {sorted(tree['servers'])}, "
              f"partial={tree['partial']}")
        print_tree(tree["tree"])
        assert {s["server"] for s in tree["spans"]} >= {"site-a", "site-b"}
        assert tree["partial"] is False

        # ------------------------- one scrape, every site's series, labelled
        response = servers["site-c"].handle_request(
            HTTPRequest(method="GET", path="/metrics/federation"))
        assert response.status == 200
        text = bytes(response.body).decode()
        print(f"\nsite-c GET /metrics/federation -> {response.status}, "
              f"{len(text)} bytes")
        print("    " + text.splitlines()[0])
        for site in SITES:
            assert f'server="{site}"' in text
            series = sum(1 for line in text.splitlines()
                         if f'server="{site}"' in line)
            print(f"    {series} series labelled server=\"{site}\"")

        # --------------------- an alert fires once and the fleet learns it
        alerts_on_c: list[dict] = []
        servers["site-c"].message_bus.subscribe(
            "telemetry.alert.fired",
            lambda m: alerts_on_c.append(dict(m.payload)))
        extra = []
        for _ in range(3):                   # three live sessions on site-a
            client = ClarensClient.for_loopback(servers["site-a"].loopback())
            client.login_with_credential(analyst)
            extra.append(client)
        servers["site-a"].telemetry.beat()
        wait_for(lambda: alerts_on_c, what="alert gossip reaching site-c")
        assert len(alerts_on_c) == 1         # fired exactly once fleet-wide
        fired = alerts_on_c[0]
        print(f"\nsite-a alert '{fired['rule']}' fired "
              f"(value {fired['value']:.0f} {fired['op']} "
              f"{fired['threshold']:.0f}, severity {fired['severity']}) "
              f"and reached site-c via gossip")

        health_a = servers["site-a"].handle_request(
            HTTPRequest(method="GET", path="/healthz"))
        body = json.loads(bytes(health_a.body))
        print(f"site-a GET /healthz -> {health_a.status} "
              f"(status {body['status']!r}: warning degrades, it does not "
              f"take the node out)")
        fleet = wait_for(
            lambda: [a for a in servers["site-c"].telemetry.health
                     .evaluate()["alerts"]["fleet"]],
            what="site-c folding the firing into fleet health")
        print(f"site-c fleet health now carries: "
              f"{[(a['server'], a['rule']) for a in fleet]}")

        # Logging the extra sessions out clears the condition; the next beat
        # resolves the alert and gossip clears it fleet-wide too.
        for client in extra:
            client.logout()
            client.close()
        servers["site-a"].telemetry.beat()
        wait_for(lambda: not servers["site-c"].telemetry.health
                 .evaluate()["alerts"]["fleet"],
                 what="fleet-wide resolve")
        print("sessions closed: alert resolved, fleet health clean again")

        # --------------------------------------------------- fleet overview
        overview = ops_c.call("system.health")
        fleet_names = sorted(k.split("#", 1)[0]
                             for k in overview["fleet"])
        print(f"\nsite-c system.health: local status "
              f"{overview['status']!r}, fleet summaries from {fleet_names}")

        for client in (nadia_b, ops_a, ops_c):
            client.close()
        for server in servers.values():
            server.close()

    print("\nobservability federation demo complete")


if __name__ == "__main__":
    main()
