#!/usr/bin/env python3
"""Generate the browser portal and exercise the calls its pages make.

Section 3 of the paper: the portal is "a series of static web pages that
embed JavaScript scripts to handle communication and web service calls".
This example generates those pages into the server's file root (so they are
served over HTTP GET like any other file), then performs — from Python — the
same JSON-RPC calls the pages' JavaScript would issue, demonstrating that a
browser needs nothing beyond what the file service already provides.

Run with::

    python examples/grid_portal.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile

from repro.client.client import ClarensClient
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.pki.authority import CertificateAuthority
from repro.portal.generator import PortalGenerator
from repro.protocols import JSONRPCCodec

ADMIN_DN = "/O=portal.example/OU=People/CN=Portal Admin"


def main() -> None:
    ca = CertificateAuthority("/O=portal.example/CN=Portal CA")
    host = ca.issue_host("portal.example")
    admin = ca.issue_user("Portal Admin")
    scientist = ca.issue_user("Sam Scientist")

    with tempfile.TemporaryDirectory(prefix="clarens-portal-") as workdir:
        config = ServerConfig(server_name="portal-demo", admins=[ADMIN_DN],
                              file_root=f"{workdir}/files",
                              shell_root=f"{workdir}/sandboxes",
                              host_dn=str(host.certificate.subject))
        server = ClarensServer(config, credential=host, trust_store=ca.trust_store())

        # ------------------------------------------------- generate the pages
        output_dir = sys.argv[1] if len(sys.argv) > 1 else f"{server.file_root}/portal"
        pages = PortalGenerator.for_server(server).write(output_dir)
        print("generated portal pages:")
        for page in pages:
            print(f"  {page}")

        # The pages are ordinary files under the virtual root, so the file
        # service serves them to any browser over GET.
        admin_client = ClarensClient.for_loopback(server.loopback(), codec=JSONRPCCodec())
        admin_client.login_with_credential(admin)
        index = admin_client.http_get("portal/index.html")
        print(f"\nGET /clarens/file/portal/index.html -> HTTP {index.status}, "
              f"{len(index.body_bytes())} bytes of HTML")

        # ------------------------------ the calls the portal JavaScript makes
        print("\nreplaying the portal components' JSON-RPC calls:")
        science_client = ClarensClient.for_loopback(server.loopback(), codec=JSONRPCCodec())
        science_client.login_with_credential(scientist)

        # file browser component -> file.ls
        admin_client.call("file.write", "/data/ntuple_01.root", b"\x00" * 2048, False)
        listing = science_client.call("file.ls", "/data")
        print(f"  file.ls /data          -> {[(e['name'], e['size']) for e in listing]}")

        # VO manager component -> vo.create_group / vo.list_groups
        admin_client.call("vo.create_group", "astro",
                          [str(scientist.certificate.subject)], [], "astro survey group")
        print(f"  vo.list_groups         -> {science_client.call('vo.list_groups', '')}")

        # ACL component -> acl.check_method
        decision = science_client.call("acl.check_method", "file.read", "")
        print(f"  acl.check_method       -> allowed={decision['allowed']}")

        # discovery component -> discovery.find
        found = science_client.call("discovery.find", "", "file", "", "")
        print(f"  discovery.find(file)   -> {[d['name'] for d in found]}")

        # job component -> job.submit / job.list
        admin_client.call("shell.add_mapping", "sam",
                          [str(scientist.certificate.subject)], [])
        job = science_client.call("job.submit", "echo portal job ran > portal.log", "portal-job", {})
        admin_client.call("job.run_pending", 0)
        jobs = science_client.call("job.list", "")
        print(f"  job.submit/job.list    -> {[(j['name'], j['state']) for j in jobs]}")
        output = science_client.call("job.output", job["job_id"])
        print(f"  job.output             -> exit {output['exit_code']}")

        server.close()
    print("\ngrid portal example complete.")


if __name__ == "__main__":
    main()
