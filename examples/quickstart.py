#!/usr/bin/env python3
"""Quickstart: stand up a Clarens server, authenticate, call services.

This walks the path a new deployment walks:

1. create a certificate authority and issue a host certificate (normally the
   grid CA does this — here we run our own);
2. start a Clarens server with that credential;
3. issue a user certificate, log in with the challenge-response flow, and
   call a few services (introspection, file access, VO queries);
4. do the same over a real TCP socket to show the two frontends behave
   identically.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro.client.client import ClarensClient
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.pki.authority import CertificateAuthority


def main() -> None:
    # --- 1. PKI: a CA, a host certificate and one user certificate ---------
    ca = CertificateAuthority("/O=quickstart.example/CN=Quickstart CA")
    host = ca.issue_host("clarens.quickstart.example")
    alice = ca.issue_user("Alice Adams")
    print(f"CA          : {ca.name}")
    print(f"server DN   : {host.certificate.subject}")
    print(f"user DN     : {alice.certificate.subject}")

    # --- 2. a server with Alice's supervisor as administrator --------------
    with tempfile.TemporaryDirectory(prefix="clarens-quickstart-") as workdir:
        config = ServerConfig(
            server_name="quickstart",
            data_dir=f"{workdir}/state",
            file_root=f"{workdir}/files",
            admins=["/O=quickstart.example/OU=People/CN=Grid Admin"],
            host_dn=str(host.certificate.subject),
        )
        server = ClarensServer(config, credential=host, trust_store=ca.trust_store())

        # --- 3. a client over the in-process loopback ----------------------
        client = ClarensClient.for_loopback(server.loopback())
        methods = client.list_methods()
        print(f"\nanonymous introspection: {len(methods)} methods published, e.g. {methods[:4]}")

        session = client.login_with_credential(alice)
        print(f"logged in   : session {session['session_id'][:8]}… for {session['dn']}")
        print(f"whoami      : {client.whoami()}")

        client.call("file.write", "/welcome.txt", b"hello from Clarens\n", False)
        print(f"file.ls /   : {[e['name'] for e in client.call('file.ls', '/')]}")
        print(f"file.read   : {client.call('file.read', '/welcome.txt', 0, -1)!r}")
        print(f"file.md5    : {client.call('file.md5', '/welcome.txt')}")
        print(f"echo        : {client.call('system.echo', {'run': 2005, 'ok': True})}")

        # --- 4. the same server over a real TCP socket ----------------------
        with server.socket_server() as sock:
            tcp_client = ClarensClient.for_url(sock.url)
            tcp_client.login_with_credential(alice)
            print(f"\nover TCP at {sock.url}:")
            print(f"  server_info: {tcp_client.server_info()['server_name']}")
            print(f"  GET /welcome.txt -> {tcp_client.http_get('welcome.txt').body_bytes()!r}")
            tcp_client.logout()

        client.logout()
        server.close()
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
