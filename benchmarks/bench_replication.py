"""REPLICATION — write-ahead journal overhead and auto-heal throughput.

PR 3 made the transfer queue durable and self-healing; this benchmark keeps
both additions honest:

* **journal overhead** — every transfer now costs up to three journal
  upserts plus a discharge.  Measured as transfers/s through the full
  submit→copy→done pipeline with the journal off vs. on; the journaled run
  must stay within ``MAX_JOURNAL_SLOWDOWN`` of the bare one, so durability
  never silently eats the engine's throughput.
* **heal throughput** — the policy engine's sweep schedules one heal per
  under-replicated LFN and the worker pool drains them.  Measured as
  heals/s bringing a catalogue of 1-copy files up to a 2-copy policy; every
  file must end at two ``ACTIVE`` replicas (completeness is asserted, not
  sampled).

This file is auto-collected into the tier-1 suite (see
``benchmarks/conftest.py``); default sizes are CI-cheap and ``--smoke``
shrinks them further.
"""

from __future__ import annotations

import hashlib
import time

from repro.bench.results import ComparisonRow, ResultTable, format_rate
from repro.database import Database
from repro.fileservice.vfs import VirtualFileSystem
from repro.monitoring.bus import MessageBus
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.journal import TransferJournal
from repro.replica.model import ReplicaState, TransferState
from repro.replica.policy import ReplicaPolicyEngine
from repro.replica.storage import VFSStorageElement
from repro.replica.transfer import TransferEngine

#: The journaled pipeline must stay within this factor of the bare one.
#: Three in-memory table upserts + one delete per transfer should cost far
#: less than the copy itself; 3x leaves room for noisy CI machines.
MAX_JOURNAL_SLOWDOWN = 3.0


def _make_se(tmp_path, name: str) -> VFSStorageElement:
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    return VFSStorageElement(name, VirtualFileSystem(root))


def _populate(catalogue, se, n: int, payload: bytes) -> list[str]:
    checksum = hashlib.md5(payload).hexdigest()
    lfns = []
    for i in range(n):
        lfn = f"/lfn/bench/file{i:05d}.dat"
        se.vfs.write(lfn, payload)
        catalogue.register(lfn, se.name, lfn, size=len(payload),
                           checksum=checksum)
        lfns.append(lfn)
    return lfns


def _drain(engine: TransferEngine, lfns: list[str], dst: str) -> float:
    """Submit one transfer per LFN and wait for all; returns elapsed seconds."""

    start = time.perf_counter()
    requests = [engine.submit(lfn, dst) for lfn in lfns]
    for request in requests:
        done = engine.wait(request.transfer_id, timeout=60.0)
        assert done.state is TransferState.DONE, done.error
    return time.perf_counter() - start


def test_journal_overhead(smoke, paper_scale, capsys, tmp_path):
    """Durability must not meaningfully slow the transfer pipeline."""

    n = 30 if smoke else (400 if paper_scale else 120)
    payload = b"j" * 2048

    def run(label: str, journaled: bool) -> float:
        db = Database()
        catalogue = ReplicaCatalogue(db)
        se_a = _make_se(tmp_path, f"{label}-a")
        se_b = _make_se(tmp_path, f"{label}-b")
        lfns = _populate(catalogue, se_a, n, payload)
        journal = TransferJournal(db) if journaled else None
        engine = TransferEngine(catalogue, {se_a.name: se_a, se_b.name: se_b},
                                workers=4, retry_delay=0.001, journal=journal)
        engine.start()
        try:
            elapsed = _drain(engine, lfns, se_b.name)
        finally:
            engine.stop()
        if journal is not None:
            assert len(journal) == 0, "journal must drain to empty"
        return elapsed

    bare = run("bare", journaled=False)
    journaled = run("journaled", journaled=True)
    slowdown = journaled / max(bare, 1e-9)

    table = ResultTable(
        f"REPLICATION — journal overhead over {n} transfers, 4 workers",
        ["pipeline", "transfers/s", "wall s"])
    table.add_row("journal off", format_rate(n / bare), f"{bare:.3f}")
    table.add_row("journal on", format_rate(n / journaled), f"{journaled:.3f}")
    comparison = ComparisonRow(
        experiment_id="REPLICATION",
        description="write-ahead journal overhead on the transfer pipeline",
        paper_value="n/a (durability beyond the paper's scope)",
        measured_value=f"{slowdown:.2f}x slowdown with journaling on",
        shape_holds=slowdown < MAX_JOURNAL_SLOWDOWN,
        notes=f"limit {MAX_JOURNAL_SLOWDOWN:.1f}x; journal drained to empty",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")
    assert slowdown < MAX_JOURNAL_SLOWDOWN, (
        f"journaling slowed transfers {slowdown:.2f}x "
        f"(limit {MAX_JOURNAL_SLOWDOWN}x)")


def test_heal_throughput(smoke, paper_scale, capsys, tmp_path):
    """One policy sweep heals a whole under-replicated catalogue."""

    n = 15 if smoke else (200 if paper_scale else 60)
    payload = b"h" * 1024
    bus = MessageBus()
    catalogue = ReplicaCatalogue(Database(), bus=bus)
    se_a = _make_se(tmp_path, "heal-a")
    se_b = _make_se(tmp_path, "heal-b")
    lfns = _populate(catalogue, se_a, n, payload)
    engine = TransferEngine(catalogue, {se_a.name: se_a, se_b.name: se_b},
                            workers=4, retry_delay=0.001, bus=bus)
    engine.start()
    policy = ReplicaPolicyEngine(catalogue, engine, bus=bus)
    policy.set_policy("/lfn/bench", 2)
    policy.start()
    try:
        start = time.perf_counter()
        checked = policy.sweep()
        assert checked == n
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            healed = sum(
                1 for lfn in lfns
                if len(catalogue.replicas(lfn, state=ReplicaState.ACTIVE)) >= 2)
            if healed == n:
                break
            time.sleep(0.01)
        elapsed = time.perf_counter() - start
    finally:
        policy.stop()
        engine.stop()

    assert healed == n, f"only {healed}/{n} files healed to 2 copies"
    stats = policy.stats()
    assert stats["heals_scheduled"] == n
    table = ResultTable(
        f"REPLICATION — auto-heal of {n} LFNs to 2 copies, 4 workers",
        ["metric", "value"])
    table.add_row("heals/s", format_rate(n / elapsed))
    table.add_row("wall s", f"{elapsed:.3f}")
    table.add_row("heals scheduled", str(stats["heals_scheduled"]))
    table.add_row("heals completed", str(stats["heals_completed"]))
    with capsys.disabled():
        print("\n" + table.render() + "\n")
