"""Shared benchmark fixtures.

Every benchmark measures the same thing the paper measured wherever possible:
the loopback transport (framework overhead, not kernel sockets), the standard
two access-control checks per request, and no method-list caching unless the
ablation says otherwise.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import make_benchmark_environment

#: Benchmarks cheap enough to ride along with the tier-1 test suite.  Files
#: named ``bench_*.py`` are normally only collected when named explicitly
#: (``pytest benchmarks/bench_x.py``); the ones listed here are additionally
#: picked up by plain ``pytest``, so CI exercises the code path (the replica
#: transfer engine) on every run.  Their default sizes are seconds-scale;
#: ``--smoke`` shrinks them further.
TIER1_BENCHMARKS = {"bench_replica.py", "bench_replication.py",
                    "bench_protocols.py"}


def pytest_collect_file(file_path, parent):
    # Explicitly named files (pytest benchmarks/bench_x.py) are collected by
    # pytest itself; only step in for directory/rootdir collection sweeps.
    if file_path.name in TIER1_BENCHMARKS and not parent.session.isinitpath(file_path):
        return pytest.Module.from_parent(parent, path=file_path)
    return None


@pytest.fixture(scope="session")
def bench_env():
    """The paper's measurement setup: one server, TLS available, user issued."""

    env = make_benchmark_environment(access_checks=2, cache_method_list=False, with_tls=True)
    yield env
    env.close()


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="Run the full paper-scale sweeps (1000-call batches, full client grid). "
             "Default is a reduced grid that preserves the curve shapes.")
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="Fast mode: shrink iteration counts so a benchmark finishes in "
             "seconds (for CI gates); ratios are still asserted, absolute "
             "numbers are meaningless.")


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return bool(request.config.getoption("--paper-scale"))


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return bool(request.config.getoption("--smoke"))
