"""ABL-PROTO — the cost of the wire protocols Clarens speaks.

Section 2 lists XML-RPC, SOAP and JSON-RPC support; the reproduction adds a
negotiated binary codec on the same dispatch path.  The protocol choice
changes only the codec, so this benchmark measures (a) raw encode+decode
round-trips of the Figure 4 payload (the >30-string method list) and a typed
event-metadata record, (b) end-to-end ``system.list_methods`` calls per
protocol against a live server, and (c) the socket-level XML-RPC vs binary
A/B on the async frontend (the raw-speed wire path).

Expected shape: binary is the cheapest (``struct`` packing, no markup),
JSON-RPC next, XML-RPC close behind, SOAP the most expensive (bigger
envelopes, namespace handling) — the reason the original PClarens defaulted
to XML-RPC rather than SOAP for analysis traffic.
"""

from __future__ import annotations

import datetime as dt
import time

import pytest

from repro.bench.results import ResultTable
from repro.client.client import ClarensClient
from repro.protocols import BinaryCodec, JSONRPCCodec, SOAPCodec, XMLRPCCodec
from repro.protocols.types import RPCRequest, RPCResponse

CODECS = {"xml-rpc": XMLRPCCodec(), "soap": SOAPCodec(),
          "json-rpc": JSONRPCCodec(), "binary": BinaryCodec()}

#: The Figure 4 response payload: a method list of >30 strings.
METHOD_LIST = [f"{module}.{name}" for module in ("system", "file", "vo", "acl", "job")
               for name in ("read", "write", "list", "status", "info", "find", "check")]

#: A typed record like the file/job services return.
EVENT_RECORD = {
    "dataset": "/store/cms/run2005A",
    "events": 1_250_000,
    "size_bytes": 8 << 30,
    "luminosity": 2.37,
    "good_run": True,
    "checksum": b"\x12\x34\x56\x78" * 4,
    "recorded": dt.datetime(2005, 6, 14, 12, 0, 0),
    "files": [{"name": f"run1_{i}.root", "size": 2 << 20} for i in range(10)],
}


@pytest.mark.parametrize("name", list(CODECS), ids=list(CODECS))
def test_encode_decode_method_list(benchmark, name):
    codec = CODECS[name]
    response = RPCResponse.from_result(METHOD_LIST)

    def round_trip():
        return codec.decode_response(codec.encode_response(response))

    decoded = benchmark(round_trip)
    assert decoded.result == METHOD_LIST
    benchmark.extra_info["protocol"] = name
    benchmark.extra_info["payload"] = "method-list"


@pytest.mark.parametrize("name", list(CODECS), ids=list(CODECS))
def test_encode_decode_typed_record(benchmark, name):
    codec = CODECS[name]
    request = RPCRequest("file.register_dataset", [EVENT_RECORD])

    def round_trip():
        return codec.decode_request(codec.encode_request(request))

    decoded = benchmark(round_trip)
    assert decoded.params[0]["events"] == EVENT_RECORD["events"]
    benchmark.extra_info["protocol"] = name
    benchmark.extra_info["payload"] = "event-record"


@pytest.mark.parametrize("name", list(CODECS), ids=list(CODECS))
def test_end_to_end_list_methods_per_protocol(benchmark, bench_env, name):
    codec = CODECS[name]
    client = ClarensClient.for_loopback(bench_env.loopback, codec=codec,
                                        url_prefix=bench_env.server.config.url_prefix)
    client.login_with_credential(bench_env.user)
    result = benchmark(client.call, "system.list_methods")
    assert len(result) > 30
    benchmark.extra_info["protocol"] = name


def test_protocol_summary_table(benchmark, bench_env, paper_scale, capsys):
    calls = 400 if paper_scale else 120
    table = ResultTable("Protocol comparison (end-to-end system.list_methods)",
                        ["protocol", "calls/s", "wire bytes/response"])

    def measure() -> dict:
        rates = {}
        for name, codec in CODECS.items():
            client = ClarensClient.for_loopback(bench_env.loopback, codec=codec,
                                                url_prefix=bench_env.server.config.url_prefix)
            client.login_with_credential(bench_env.user)
            wire_size = len(codec.encode_response(RPCResponse.from_result(
                client.call("system.list_methods"))))
            start = time.perf_counter()
            for _ in range(calls):
                client.call("system.list_methods")
            rates[name] = calls / (time.perf_counter() - start)
            table.add_row(name, round(rates[name], 1), wire_size)
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table.render())
        print("[ABL-PROTO] all protocols share one endpoint and dispatch path; "
              "only serialization cost differs.\n")

    # Shape: SOAP is the heaviest of the text protocols (within 10% tolerance).
    assert rates["soap"] <= max(rates["xml-rpc"], rates["json-rpc"]) * 1.1


def test_binary_wire_path_socket_ab(benchmark, smoke):
    """The raw-speed wire path: XML-RPC vs binary on the async frontend.

    Unlike the loopback tests above this boots a real TCP socket server and
    drives it with the pipelined event-loop client, so the A/B includes
    bytes-on-the-wire and the server's decode/encode hot path — the setup
    ``scripts/bench_trend.py`` records as ``fig4_binary``.
    """

    from repro.bench.pipelinebench import measure_fig4_protocols

    calls = 200 if smoke else 800
    counts = (4,) if smoke else (1, 8)
    result = benchmark.pedantic(
        measure_fig4_protocols, rounds=1, iterations=1,
        kwargs={"calls_per_point": calls, "client_counts": counts,
                "rounds": 1 if smoke else 2})
    assert result["errors"] == 0
    for n in counts:
        assert result["binary"][n] > 0
        assert result["xmlrpc"][n] > 0
    if not smoke:
        # Binary must beat XML-RPC at concurrency; the >=2x target is
        # asserted on trend numbers, not here, to keep CI noise-proof.
        assert result["binary_over_xmlrpc"][counts[-1]] > 1.0
    benchmark.extra_info["binary_over_xmlrpc"] = {
        str(k): round(v, 2) for k, v in result["binary_over_xmlrpc"].items()}
