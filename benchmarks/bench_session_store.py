"""ABL-SESS — persistent session store performance and restart recovery.

Section 2 of the paper: session information "is stored persistently on the
server side", which both adds a per-request database lookup (measured in the
Figure 4 workload) and lets clients "survive server failures or restarts
transparently".  This ablation measures the two sides of that trade:

* per-operation cost of the session store (create / validate / destroy);
* time to reopen a session database containing N live sessions after a
  simulated restart, for N in {100, 1000, 5000}.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.results import ResultTable
from repro.core.session import SessionManager
from repro.database import Database


@pytest.fixture()
def memory_sessions():
    return SessionManager(Database())


def test_session_create(benchmark, memory_sessions):
    benchmark(memory_sessions.create, "/O=bench/OU=People/CN=Load User")


def test_session_validate(benchmark, memory_sessions):
    session = memory_sessions.create("/O=bench/OU=People/CN=Load User")
    benchmark(memory_sessions.validate, session.session_id)


def test_session_validate_persistent_backend(benchmark, tmp_path):
    sessions = SessionManager(Database(tmp_path / "sessions"))
    session = sessions.create("/O=bench/OU=People/CN=Load User")
    benchmark(sessions.validate, session.session_id)


def test_session_create_destroy_cycle(benchmark, memory_sessions):
    def cycle():
        session = memory_sessions.create("/O=bench/CN=cycled")
        memory_sessions.destroy(session.session_id)

    benchmark(cycle)


@pytest.mark.parametrize("n_sessions", [100, 1000, 5000])
def test_restart_recovery_time(benchmark, tmp_path, n_sessions):
    """Reopening the session database after a restart, by live-session count."""

    state_dir = tmp_path / f"state-{n_sessions}"
    db = Database(state_dir)
    manager = SessionManager(db)
    for i in range(n_sessions):
        manager.create(f"/O=bench/OU=People/CN=User {i:05d}")
    db.close()

    def reopen():
        reopened = Database(state_dir)
        restored = SessionManager(reopened)
        count = restored.count()
        reopened.close()
        return count

    count = benchmark(reopen)
    assert count == n_sessions
    benchmark.extra_info["n_sessions"] = n_sessions


def test_session_scaling_table(benchmark, paper_scale, capsys):
    table = ResultTable("Session store: restart recovery vs live sessions",
                        ["sessions", "recovery (ms)", "validate (µs)"])
    counts = (100, 1000, 5000) if not paper_scale else (100, 1000, 5000, 20000)
    import tempfile

    def measure_one(n: int) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            db = Database(tmp)
            manager = SessionManager(db)
            ids = [manager.create(f"/O=bench/CN=User {i}").session_id for i in range(n)]
            db.close()

            start = time.perf_counter()
            reopened = Database(tmp)
            restored = SessionManager(reopened)
            recovery_ms = (time.perf_counter() - start) * 1000

            start = time.perf_counter()
            probes = min(200, n)
            for session_id in ids[:probes]:
                restored.validate(session_id)
            validate_us = (time.perf_counter() - start) / probes * 1e6
            reopened.close()
            table.add_row(n, round(recovery_ms, 1), round(validate_us, 1))

    def measure_all() -> None:
        for n in counts:
            measure_one(n)

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table.render())
        print("[ABL-SESS] sessions survive restarts; recovery cost grows with the "
              "snapshot size while per-request validation stays flat.\n")
