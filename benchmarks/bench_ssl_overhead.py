"""TXT-SSL — "Informal tests show [SSL/TLS] to reduce performance by up to 50%".

The same ``system.list_methods`` workload is run over the plain loopback and
over the simulated-TLS loopback (certificate handshake at connection setup,
HMAC-keystream record layer per request).  The paper's claim is a relative
one — encrypted throughput is roughly half of unencrypted — so the check is
on the ratio, not on absolute rates.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.results import ComparisonRow, ResultTable
from repro.client.asyncclient import AsyncLoadClient

N_CLIENTS = 8


def _measure(env, *, encrypted: bool, calls: int) -> float:
    factory = env.client_factory(encrypted=encrypted, login=True)
    with AsyncLoadClient(factory, n_clients=N_CLIENTS) as load:
        result = load.run_batch(calls)
    assert result.errors == 0
    return result.calls_per_second


@pytest.mark.parametrize("encrypted", [False, True], ids=["plain", "tls"])
def test_list_methods_throughput(benchmark, bench_env, paper_scale, encrypted):
    calls = 500 if paper_scale else 150
    factory = bench_env.client_factory(encrypted=encrypted, login=True)
    load = AsyncLoadClient(factory, n_clients=N_CLIENTS)
    with load:
        result = benchmark.pedantic(load.run_batch, args=(calls,), rounds=3, iterations=1)
    benchmark.extra_info["encrypted"] = encrypted
    benchmark.extra_info["calls_per_second"] = result.calls_per_second
    assert result.errors == 0


def test_ssl_overhead_ratio(benchmark, bench_env, paper_scale, capsys):
    calls = 600 if paper_scale else 200

    def measure_both():
        return (_measure(bench_env, encrypted=False, calls=calls),
                _measure(bench_env, encrypted=True, calls=calls))

    plain, encrypted = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    slowdown = 1.0 - encrypted / plain if plain else 0.0

    table = ResultTable("SSL/TLS overhead on the Figure 4 workload",
                        ["transport", "calls/s", "relative"])
    table.add_row("unencrypted", round(plain, 1), "1.00")
    table.add_row("simulated TLS", round(encrypted, 1), f"{encrypted / plain:.2f}")
    comparison = ComparisonRow(
        experiment_id="TXT-SSL",
        description="throughput reduction when SSL/TLS is enabled",
        paper_value="up to 50% reduction (informal tests)",
        measured_value=f"{slowdown * 100:.0f}% reduction",
        shape_holds=encrypted < plain,
        notes="record-layer cost dominates; handshake amortized over keep-alive connections",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    # Shape: encryption must cost something noticeable, and the encrypted
    # server must still be usable (not orders of magnitude slower).
    assert encrypted < plain
    assert encrypted > plain / 20


def test_tls_handshake_latency(benchmark, bench_env):
    """Connection-setup cost: one full certificate handshake per connection."""

    loopback = bench_env.tls_loopback
    assert loopback is not None

    def handshake():
        connection = loopback.connect()
        connection.close()

    benchmark(handshake)


def test_record_layer_cost_scales_with_payload(benchmark, bench_env, capsys):
    """Per-byte cost of the record layer (the mechanism behind the slowdown)."""

    from repro.httpd.tls import TLSContext, perform_handshake

    client_ctx = TLSContext(credential=bench_env.user, trust_store=bench_env.ca.trust_store())
    server_ctx = TLSContext(credential=bench_env.server.credential,
                            trust_store=bench_env.ca.trust_store())
    client_chan, server_chan = perform_handshake(client_ctx, server_ctx)

    def measure() -> ResultTable:
        table = ResultTable("Simulated TLS record layer throughput", ["payload", "MB/s"])
        for size in (1 << 10, 64 << 10, 1 << 20):
            payload = b"x" * size
            start = time.perf_counter()
            iterations = max(4, (4 << 20) // size)
            for _ in range(iterations):
                server_chan.unwrap(client_chan.wrap(payload))
            elapsed = time.perf_counter() - start
            table.add_row(f"{size >> 10} KiB", round(size * iterations / elapsed / 1e6, 1))
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table.render() + "\n")
