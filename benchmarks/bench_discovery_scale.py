"""ABL-DISC — discovery scalability.

Section 2.4: a discovery environment "needs to scale to large numbers of
servers and users without incurring prohibitively large amounts of
administrative overhead", and the JClarens discovery server answers searches
"far more rapidly by using the local database" aggregated from the MonALISA
network (which at the time monitored 90+ sites).

This benchmark populates the discovery registry with synthetic service
descriptors (10 … 5000 — from a single site up to well beyond the 2005 grid)
and measures query latency, registration throughput, and the cost of
aggregating a full monitoring snapshot.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.results import ResultTable
from repro.bench.workloads import populate_discovery
from repro.discovery.model import ServiceDescriptor
from repro.discovery.registry import DiscoveryRegistry
from repro.monitoring.bus import MessageBus
from repro.monitoring.glue import generate_synthetic_grid
from repro.monitoring.monalisa import MonALISARepository
from repro.monitoring.station import StationServer

POPULATIONS = (10, 100, 1000, 5000)


@pytest.fixture(scope="module", params=POPULATIONS)
def populated_registry(request):
    registry = DiscoveryRegistry()
    populate_discovery(registry, request.param)
    return request.param, registry


def test_query_by_module(benchmark, populated_registry):
    n, registry = populated_registry
    result = benchmark(registry.find, module="file")
    assert result  # some servers always offer the file module
    benchmark.extra_info["population"] = n


def test_lookup_url_bind_time(benchmark, populated_registry):
    """The bind-at-call-time primitive the discovery-aware client uses."""

    n, registry = populated_registry
    url = benchmark(registry.lookup_url, module="job")
    assert url
    benchmark.extra_info["population"] = n


def test_registration_throughput(benchmark):
    registry = DiscoveryRegistry()
    counter = iter(range(10_000_000))

    def register_one():
        i = next(counter)
        registry.register(ServiceDescriptor(
            name=f"reg-{i}", url=f"http://server{i}.example/rpc", services=["system"]))

    benchmark(register_one)


def test_monitoring_aggregation(benchmark):
    """Cost of syncing the discovery registry from a 90-site monitoring network."""

    bus = MessageBus()
    repository = MonALISARepository(bus)
    station = StationServer("st", bus, site_name="grid")
    schema = generate_synthetic_grid(90, nodes_per_farm=5)
    for i, site_name in enumerate(sorted(schema.sites)):
        station.receive_service_info({
            "name": f"clarens-{site_name}", "url": f"http://{site_name}/clarens/rpc",
            "services": ["system", "file"], "attributes": {"site": site_name}},
            reliable=True)
    registry = DiscoveryRegistry(repository=repository)
    count = benchmark(registry.sync_from_repository)
    assert count == 90


def test_discovery_scaling_table(benchmark, paper_scale, capsys):
    table = ResultTable("Discovery query latency vs registered services",
                        ["services", "find(module) µs", "lookup_url µs", "register µs"])
    populations = POPULATIONS if not paper_scale else POPULATIONS + (20000,)

    def timed(func, repeats=50):
        start = time.perf_counter()
        for _ in range(repeats):
            func()
        return (time.perf_counter() - start) / repeats * 1e6

    def measure_all() -> None:
        for n in populations:
            registry = DiscoveryRegistry()
            populate_discovery(registry, n)
            find_us = timed(lambda: registry.find(module="file"))
            lookup_us = timed(lambda: registry.lookup_url(module="job"))
            register_us = timed(lambda: registry.register(ServiceDescriptor(
                name="probe", url="http://probe/rpc", services=["system"])))
            table.add_row(n, round(find_us, 1), round(lookup_us, 1), round(register_us, 1))

    benchmark.pedantic(measure_all, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + table.render())
        print("[ABL-DISC] query cost grows linearly with the registered population; "
              "registration stays O(1) — the 2005-era grid (~100 servers) is far below "
              "the point where this matters.\n")
