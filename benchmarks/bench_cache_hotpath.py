"""CACHE — cold/uncached vs warm cached throughput on the per-RPC hot path.

The paper's performance test puts "two access control checks involving
access to several databases" on every request: the session lookup and the
hierarchical method-ACL evaluation (which itself consults the ACL tables and
the VO group tables for membership).  The paper ran with "no caching … on
the server"; this benchmark measures what the :mod:`repro.cache` subsystem
buys when that constraint is lifted.

Three measurements:

* the two-check hot path itself (``sessions.validate`` + ``acl.check_method``)
  uncached vs warm-cached — the headline ≥3× speedup;
* full RPC dispatch throughput through the loopback transport, cold vs warm
  (protocol codec work dilutes the win, reported for context);
* paper-mode equivalence: with caching disabled the server answers
  identically and creates no caches.

Run with ``--smoke`` for a seconds-long CI-gate version (same assertions,
smaller loops).
"""

from __future__ import annotations

import time

import pytest

from repro.acl.model import ACL
from repro.bench.results import ComparisonRow, ResultTable, format_rate
from repro.bench.workloads import (make_benchmark_environment,
                                   make_cached_benchmark_environment)

#: Group granted access at the ``system`` level; membership is evaluated
#: through the VO tables, reproducing the "several databases" per check.
BENCH_GROUP = "benchusers"

#: The headline acceptance ratio: warm cached checks vs uncached checks.
MIN_HOTPATH_SPEEDUP = 3.0


def _make_env(*, cache_enabled: bool):
    """A benchmark server with a deny-by-default ACL fence at ``system``.

    The configured ACL grants :data:`BENCH_GROUP` (the benchmark user is a
    member), so every uncached check walks method levels, loads the ACL
    record and resolves group membership through the VO tables.
    """

    if cache_enabled:
        env = make_cached_benchmark_environment(with_tls=False)
    else:
        env = make_benchmark_environment(with_tls=False)
    server = env.server
    dn = str(env.user.certificate.subject)
    server.vo.create_group(BENCH_GROUP, members=[dn])
    server.acl.default_allow_authenticated = False
    server.acl.set_method_acl("system", ACL(groups_allowed=[BENCH_GROUP]))
    return env, dn


def _measure_two_checks(server, session_id: str, dn: str, calls: int) -> float:
    """Calls/second through the paper's two access-control checks."""

    validate = server.sessions.validate
    check = server.acl.check_method
    method = "system.list_methods"
    # Warm-up (fills caches when enabled; costs one loop otherwise).
    for _ in range(min(100, calls)):
        validate(session_id)
        check(dn, method)
    start = time.perf_counter()
    for _ in range(calls):
        validate(session_id)
        assert check(dn, method).allowed
    elapsed = time.perf_counter() - start
    return calls / elapsed


def _measure_dispatch(env, calls: int, *, rounds: int = 3) -> float:
    """Best-of-``rounds`` calls/second of full system.list_methods RPCs.

    Best-of filters out GC pauses and noisy-neighbor contention, which
    matters for the smoke-mode gate where each round is only a few hundred
    calls.
    """

    client = env.client_factory(encrypted=False, login=True)()
    try:
        for _ in range(min(50, calls)):
            client.call("system.list_methods")
        best = 0.0
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(calls):
                client.call("system.list_methods")
            elapsed = time.perf_counter() - start
            best = max(best, calls / elapsed)
        return best
    finally:
        client.close()


def test_cache_hotpath_speedup(smoke, capsys):
    """Warm cached two-check throughput is ≥3× the uncached throughput."""

    calls = 2_000 if smoke else 20_000
    uncached_env, dn = _make_env(cache_enabled=False)
    cached_env, _ = _make_env(cache_enabled=True)
    try:
        cold_sid = uncached_env.server.sessions.create(dn).session_id
        warm_sid = cached_env.server.sessions.create(dn).session_id
        uncached_rate = _measure_two_checks(uncached_env.server, cold_sid, dn, calls)
        cached_rate = _measure_two_checks(cached_env.server, warm_sid, dn, calls)
        speedup = cached_rate / uncached_rate

        session_cache = cached_env.server.caches.get("core.sessions")
        acl_cache = cached_env.server.caches.get("acl.decisions")
        table = ResultTable("CACHE — two access checks per request (paper hot path)",
                            ["mode", "checks/s", "session hit rate", "acl hit rate"])
        table.add_row("uncached (paper)", format_rate(uncached_rate), "-", "-")
        table.add_row("cached (warm)", format_rate(cached_rate),
                      f"{session_cache.stats.hit_rate:.3f}",
                      f"{acl_cache.stats.hit_rate:.3f}")
        comparison = ComparisonRow(
            experiment_id="CACHE",
            description="session validate + method ACL check throughput",
            paper_value="no caching on the server (paper mode)",
            measured_value=f"{speedup:.1f}x with repro.cache enabled",
            shape_holds=speedup >= MIN_HOTPATH_SPEEDUP,
            notes="writes invalidate by tag, so no stale-grant window",
        )
        with capsys.disabled():
            print("\n" + table.render())
            print(comparison.render() + "\n")

        assert session_cache.stats.hits > 0 and acl_cache.stats.hits > 0
        assert speedup >= MIN_HOTPATH_SPEEDUP, (
            f"warm cached hot path only {speedup:.2f}x faster than uncached "
            f"({format_rate(cached_rate)} vs {format_rate(uncached_rate)})")
    finally:
        uncached_env.close()
        cached_env.close()


def test_cache_dispatch_throughput(smoke, capsys):
    """Full RPC dispatch, cold vs warm: caching must never slow dispatch down."""

    calls = 300 if smoke else 2_000
    uncached_env, _ = _make_env(cache_enabled=False)
    cached_env, _ = _make_env(cache_enabled=True)
    try:
        cold_rate = _measure_dispatch(uncached_env, calls)
        warm_rate = _measure_dispatch(cached_env, calls)
        ratio = warm_rate / cold_rate

        table = ResultTable("CACHE — full RPC dispatch (codec + routing + checks)",
                            ["mode", "calls/s"])
        table.add_row("uncached (paper)", format_rate(cold_rate))
        table.add_row("cached (warm)", format_rate(warm_rate))
        with capsys.disabled():
            print("\n" + table.render())
            print(f"  dispatch speedup: {ratio:.2f}x "
                  "(codec work dilutes the check-path win)\n")

        # Codec/transport dominate, so only guard against a regression; the
        # ≥3x criterion applies to the check path measured above.
        assert ratio >= 0.9
    finally:
        uncached_env.close()
        cached_env.close()


def test_paper_mode_unchanged(smoke):
    """cache_enabled=False produces an identical, cache-free server."""

    uncached_env, dn = _make_env(cache_enabled=False)
    cached_env, _ = _make_env(cache_enabled=True)
    try:
        assert uncached_env.server.caches.names() == []
        assert uncached_env.server.sessions._cache is None
        assert uncached_env.server.acl._cache is None

        plain_client = uncached_env.client_factory(login=True)()
        cached_client = cached_env.client_factory(login=True)()
        try:
            assert (sorted(plain_client.call("system.list_methods"))
                    == sorted(cached_client.call("system.list_methods")))
            assert plain_client.call("system.echo", [1, "two"]) == [1, "two"]
        finally:
            plain_client.close()
            cached_client.close()
    finally:
        uncached_env.close()
        cached_env.close()
