"""REPLICA — catalogue lookup throughput and parallel-transfer scaling.

The replica layer turns N Clarens servers into one data fabric, so its two
hot paths get the benchmark treatment:

* **catalogue lookups** — every replica-aware read starts with an LFN
  resolution (catalogue entry + broker ranking); measured in lookups/s over
  a populated catalogue, single-threaded and with reader contention;
* **parallel transfers** — the engine's worker pool must actually overlap
  transfers whose cost is dominated by per-file latency (staging delays,
  network round trips); measured as wall-clock speedup of 4 workers over 1
  on a latency-bound storage element.

This file is auto-collected by the tier-1 suite (see
``benchmarks/conftest.py``), so its default sizes are CI-cheap; ``--smoke``
shrinks them further and ``--paper-scale`` grows the catalogue population.
"""

from __future__ import annotations

import hashlib
import threading
import time

from repro.bench.results import ComparisonRow, ResultTable, format_rate
from repro.database import Database
from repro.fileservice.vfs import VirtualFileSystem
from repro.replica.broker import ReplicaBroker
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.model import TransferState
from repro.replica.storage import VFSStorageElement
from repro.replica.transfer import TransferEngine

#: Minimum acceptable 4-worker speedup on latency-bound transfers.  Four
#: workers over sleep-dominated copies should approach 4x; 1.8x leaves head
#: room for noisy CI machines while still proving real overlap.
MIN_PARALLEL_SPEEDUP = 1.8

#: Per-transfer latency injected into the throttled destination element.
TRANSFER_LATENCY_S = 0.02


class ThrottledSE(VFSStorageElement):
    """A storage element with a fixed per-write latency (a slow WAN link)."""

    def write_stream(self, pfn, chunks):
        time.sleep(TRANSFER_LATENCY_S)
        return super().write_stream(pfn, chunks)


def _make_se(tmp_path, name: str, cls=VFSStorageElement) -> VFSStorageElement:
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    return cls(name, VirtualFileSystem(root))


def _populate(catalogue: ReplicaCatalogue, se_names: list[str], n: int) -> None:
    checksum = hashlib.md5(b"x").hexdigest()
    for i in range(n):
        lfn = f"/lfn/cms/run{i % 97:03d}/file{i:06d}.dat"
        for se in se_names:
            catalogue.register(lfn, se, lfn, size=1, checksum=checksum)


def test_catalogue_lookup_throughput(smoke, paper_scale, capsys, tmp_path):
    """Locating an LFN through catalogue + broker stays a memory-speed path."""

    n_lfns = 300 if smoke else (20_000 if paper_scale else 2_000)
    lookups = 2_000 if smoke else 20_000
    catalogue = ReplicaCatalogue(Database())
    elements = {name: _make_se(tmp_path, name) for name in ("se-a", "se-b", "se-c")}
    _populate(catalogue, list(elements), n_lfns)
    broker = ReplicaBroker(catalogue, elements, local_se="se-a")
    lfns = catalogue.lfns()

    def measure(threads: int) -> float:
        per_thread = lookups // threads
        barrier = threading.Barrier(threads + 1)

        def worker(base: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                broker.resolve(lfns[(base + i * 7) % len(lfns)])

        pool = [threading.Thread(target=worker, args=(t * 131,))
                for t in range(threads)]
        for t in pool:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in pool:
            t.join()
        return (per_thread * threads) / (time.perf_counter() - start)

    single = measure(1)
    contended = measure(4)

    table = ResultTable(
        f"REPLICA — broker lookups over {n_lfns} LFNs x {len(elements)} replicas",
        ["threads", "lookups/s"])
    table.add_row("1", format_rate(single))
    table.add_row("4", format_rate(contended))
    with capsys.disabled():
        print("\n" + table.render() + "\n")

    assert single > 1_000, f"catalogue lookups unexpectedly slow: {single:.0f}/s"
    # Striped LFN locks: contention must not collapse throughput.
    assert contended > single * 0.5


def test_parallel_transfer_scaling(smoke, capsys, tmp_path):
    """4 transfer workers overlap latency-bound copies (≥{:.1f}x one worker).
    """.format(MIN_PARALLEL_SPEEDUP)

    n_files = 8 if smoke else 16
    data = b"event payload " * 512

    def run_with_workers(workers: int, label: str) -> tuple[float, int]:
        catalogue = ReplicaCatalogue(Database())
        src = _make_se(tmp_path, f"src-{label}")
        dst = _make_se(tmp_path, f"dst-{label}", cls=ThrottledSE)
        checksum = hashlib.md5(data).hexdigest()
        for i in range(n_files):
            lfn = f"/lfn/batch/file{i:04d}.dat"
            src.vfs.write(lfn, data)
            catalogue.register(lfn, src.name, lfn, size=len(data),
                               checksum=checksum)
        engine = TransferEngine(catalogue, {src.name: src, dst.name: dst},
                                workers=workers, retry_delay=0.001)
        engine.start()
        try:
            start = time.perf_counter()
            requests = [engine.submit(f"/lfn/batch/file{i:04d}.dat", dst.name)
                        for i in range(n_files)]
            done = [engine.wait(r.transfer_id, timeout=60.0) for r in requests]
            elapsed = time.perf_counter() - start
        finally:
            engine.stop()
        assert all(r.state is TransferState.DONE for r in done)
        assert dst.read("/lfn/batch/file0000.dat") == data
        return elapsed, sum(r.bytes_copied for r in done)

    serial_s, serial_bytes = run_with_workers(1, "serial")
    parallel_s, parallel_bytes = run_with_workers(4, "parallel")
    speedup = serial_s / parallel_s

    table = ResultTable(
        f"REPLICA — {n_files} transfers over a {TRANSFER_LATENCY_S * 1e3:.0f}ms"
        " latency element",
        ["workers", "wall s", "transfers/s"])
    table.add_row("1", f"{serial_s:.3f}", format_rate(n_files / serial_s))
    table.add_row("4", f"{parallel_s:.3f}", format_rate(n_files / parallel_s))
    comparison = ComparisonRow(
        experiment_id="REPLICA",
        description="parallel transfer-engine scaling",
        paper_value="SRM future-work: robust transfer between mass stores",
        measured_value=f"{speedup:.1f}x with 4 workers",
        shape_holds=speedup >= MIN_PARALLEL_SPEEDUP,
        notes="checksum verified end-to-end on every copy",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    assert serial_bytes == parallel_bytes == n_files * len(data)
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"4 workers only {speedup:.2f}x faster than 1 over "
        f"{n_files} latency-bound transfers")
