"""FABRIC — gossip relay and catalogue anti-entropy overhead.

The ``repro.fabric`` substrate must be cheap enough to run continuously: a
sync round over N logical files is a digest call plus one batched fetch, and
a gossip flush is one ``fabric.publish`` per peer regardless of how many
messages are queued.  This benchmark builds a real two-site fabric (separate
monitoring buses, authenticated peer channels) and measures both paths, plus
the steady-state no-op round that runs when nothing changed.

Acceptance bars (smoke-safe ratios, not absolute numbers): every LFN lands
in one round, the no-op round fetches nothing, and both throughputs clear a
floor generous enough for any CI host.
"""

from __future__ import annotations

from repro.bench.pipelinebench import measure_fabric_overhead
from repro.bench.results import ComparisonRow, ResultTable, format_rate

N_LFNS = 150
N_MESSAGES = 300
MIN_SYNC_LFNS_PER_S = 50.0
MIN_GOSSIP_MSGS_PER_S = 200.0


def test_fabric_sync_and_gossip_overhead(benchmark, smoke, capsys):
    """One anti-entropy round over N LFNs plus an N-message gossip flush."""

    lfns = 40 if smoke else N_LFNS
    messages = 80 if smoke else N_MESSAGES
    result = benchmark.pedantic(
        measure_fabric_overhead,
        kwargs={"lfns": lfns, "gossip_messages": messages},
        rounds=1, iterations=1)
    benchmark.extra_info.update(result)

    table = ResultTable(f"fabric overhead ({result['lfns']} LFNs, "
                        f"{result['gossip_messages']} gossip messages)",
                        ["path", "seconds", "rate"])
    table.add_row("first sync round", round(result["first_round_s"], 4),
                  f"{result['sync_lfns_per_second']:.0f} lfns/s")
    table.add_row("no-op sync round", round(result["noop_round_s"], 4),
                  "version-vector hit")
    table.add_row("gossip relay", round(result["gossip_s"], 4),
                  f"{result['gossip_messages_per_second']:.0f} msgs/s")
    comparison = ComparisonRow(
        experiment_id="FABRIC",
        description="peering substrate: anti-entropy + gossip overhead",
        paper_value="n/a (scenario opened by the fabric refactor)",
        measured_value=f"{result['sync_lfns_per_second']:.0f} lfns/s sync, "
                       f"{format_rate(result['gossip_messages_per_second'])} "
                       f"gossip",
        shape_holds=(result["imported"] == result["lfns"]
                     and result["noop_changed"] == 0),
        notes=f"bars: one-round convergence, no-op rounds fetch nothing, "
              f">= {MIN_SYNC_LFNS_PER_S:.0f} lfns/s, "
              f">= {MIN_GOSSIP_MSGS_PER_S:.0f} msgs/s",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    assert result["imported"] == result["lfns"], (
        "anti-entropy did not converge in one round")
    assert result["gossip_relayed"] == result["gossip_messages"], (
        "gossip dropped messages on a healthy link")
    assert result["noop_changed"] == 0, (
        "version vector failed to suppress refetching unchanged entries")
    assert result["sync_lfns_per_second"] >= MIN_SYNC_LFNS_PER_S
    assert result["gossip_messages_per_second"] >= MIN_GOSSIP_MSGS_PER_S
