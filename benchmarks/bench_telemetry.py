"""TELEM — tracing + metrics overhead on the Figure-4 hot path.

The telemetry layer rides the paper's measured request path: with
``telemetry_enabled`` every dispatch mints a trace context, records a span
into the ring buffer and feeds the request counter and latency histogram.
The issue budget says all of that together must cost < 5% of Figure-4
throughput on a quiet host.  This benchmark runs the same concurrent
``system.echo`` load against a paper-mode server and a telemetry-enabled
one (rounds interleaved, best-of per mode) and reports the delta.

The assertion bar here is deliberately loose (25%) so a noisy shared CI
host cannot flake the suite; ``scripts/bench_trend.py`` records the real
number into ``BENCH_pipeline.json`` where the trend is judged.
"""

from __future__ import annotations

from repro.bench.pipelinebench import (measure_federation_scrape,
                                       measure_telemetry_overhead)
from repro.bench.results import ComparisonRow, ResultTable, format_rate

CALLS_PER_BATCH = 150
ROUNDS = 3
MAX_OVERHEAD_PCT = 25.0


def test_telemetry_overhead(benchmark, smoke, capsys):
    """Figure-4 probe with telemetry off vs on; overhead must stay bounded."""

    kwargs = {"calls_per_batch": 40 if smoke else CALLS_PER_BATCH,
              "rounds": 2 if smoke else ROUNDS}
    result = benchmark.pedantic(measure_telemetry_overhead, kwargs=kwargs,
                                rounds=1, iterations=1)
    benchmark.extra_info.update(result)

    table = ResultTable("telemetry overhead (concurrent system.echo, "
                        f"{result['n_clients']} clients x "
                        f"{result['calls_per_batch']} calls)",
                        ["mode", "calls/s"])
    table.add_row("paper mode", round(result["baseline_calls_per_second"], 1))
    table.add_row("tracing+metrics",
                  round(result["telemetry_calls_per_second"], 1))
    comparison = ComparisonRow(
        experiment_id="TELEM",
        description="tracing + metrics enabled on the fig4 hot path",
        paper_value="n/a (observability layer added by this repro)",
        measured_value=f"{result['overhead_pct']:.1f}% overhead "
                       f"({format_rate(result['telemetry_calls_per_second'])})",
        shape_holds=result["overhead_pct"] <= MAX_OVERHEAD_PCT,
        notes=f"budget: < 5% on a quiet host; CI bar: {MAX_OVERHEAD_PCT:.0f}%; "
              f"{result['spans_recorded']} spans recorded",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    assert result["errors"] == 0, f"load client saw {result['errors']} errors"
    assert result["spans_recorded"] > 0, "telemetry server recorded no spans"
    assert result["exposition_bytes"] > 0, "metrics exposition came back empty"
    assert result["overhead_pct"] <= MAX_OVERHEAD_PCT, (
        f"telemetry overhead {result['overhead_pct']:.1f}% exceeds the "
        f"{MAX_OVERHEAD_PCT:.0f}% CI bar")


def test_federation_scrape(benchmark, smoke, capsys):
    """Fabric-wide metrics scrape: fan-out cost and cache effectiveness."""

    kwargs = {"warm_requests": 40 if smoke else 200,
              "rounds": 2 if smoke else 5}
    result = benchmark.pedantic(measure_federation_scrape, kwargs=kwargs,
                                rounds=1, iterations=1)
    benchmark.extra_info.update(result)

    table = ResultTable(f"federated metrics scrape "
                        f"({result['servers']}-site loopback fabric)",
                        ["path", "ms"])
    table.add_row("local /metrics", round(result["local_scrape_ms"], 3))
    table.add_row("federated (cold fan-out)",
                  round(result["cold_federated_ms"], 3))
    table.add_row("federated (cached)",
                  round(result["cached_federated_ms"], 3))
    comparison = ComparisonRow(
        experiment_id="TELEM-FED",
        description="one-scrape fabric-wide metrics federation",
        paper_value="n/a (observability layer added by this repro)",
        measured_value=f"{result['cold_federated_ms']:.2f}ms cold, "
                       f"{result['cached_federated_ms']:.3f}ms cached",
        shape_holds=result["cached_over_local"] < result["cold_over_local"]
                    or result["cold_over_local"] <= 1.0,
        notes=f"cold is {result['cold_over_local']:.1f}x a local scrape; "
              f"{result['federated_exposition_bytes']} exposition bytes",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    assert result["federated_exposition_bytes"] > \
        result["local_exposition_bytes"], \
        "federated exposition is not larger than the local one"
    # The cache must shortcut the fan-out: a cached render may never be
    # slower than the cold one it memoised.
    assert result["cached_federated_ms"] <= result["cold_federated_ms"]
