"""MCALL — ``system.multicall`` batching vs sequential dispatch.

The paper's per-request cost is dominated by fixed work: codec handling plus
"two access control checks involving access to several databases".  Batching
N calls into one ``system.multicall`` request pays decode, session check and
admission once, and the method-ACL check once per *distinct* method — so a
batch of 100 ``system.echo`` calls should complete several times faster than
100 sequential dispatches over the same loopback transport.  The acceptance
bar asserted here is ≥ 3x.
"""

from __future__ import annotations

from repro.bench.pipelinebench import measure_multicall_speedup
from repro.bench.results import ComparisonRow, ResultTable, format_rate

N_CALLS = 100
MIN_SPEEDUP = 3.0


def test_multicall_batching_speedup(benchmark, smoke, capsys):
    """One batch of 100 echoes via multicall vs 100 sequential dispatches."""

    calls = 30 if smoke else N_CALLS
    result = benchmark.pedantic(measure_multicall_speedup,
                                kwargs={"calls": calls}, rounds=1, iterations=1)
    benchmark.extra_info.update(result)

    table = ResultTable("system.multicall batching (system.echo x "
                        f"{result['calls']})",
                        ["path", "seconds", "calls/s"])
    table.add_row("sequential", round(result["sequential_s"], 4),
                  round(result["sequential_calls_per_second"], 1))
    table.add_row("multicall", round(result["multicall_s"], 4),
                  round(result["multicall_calls_per_second"], 1))
    comparison = ComparisonRow(
        experiment_id="MCALL",
        description="batched RPC amortizes decode + the two access checks",
        paper_value="n/a (scenario opened by the pipeline refactor)",
        measured_value=f"{result['speedup']:.1f}x "
                       f"({format_rate(result['multicall_calls_per_second'])})",
        shape_holds=result["speedup"] >= MIN_SPEEDUP,
        notes=f"bar: batch of {result['calls']} >= {MIN_SPEEDUP:.0f}x faster",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    assert result["speedup"] >= MIN_SPEEDUP, (
        f"multicall speedup {result['speedup']:.2f}x is below the "
        f"{MIN_SPEEDUP:.0f}x acceptance bar")
