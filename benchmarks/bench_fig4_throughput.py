"""FIG4 — Figure 4: requests/second versus number of asynchronous clients.

Paper setup: a single client process opens N unencrypted connections
(N = 1..79) to the server and calls ``system.list_methods`` as rapidly as
possible in batches of 1000 calls; every request passes two access-control
checks (session + method ACL), the method list is read from the database
(no caching) and the >30 method names are serialized as an XML-RPC array.
The paper reports an average of ≈1450 requests/second on a dual 2.8 GHz Xeon.

This benchmark reproduces the sweep on the loopback transport.  Absolute
numbers reflect the host machine; the *shape* to check is that throughput
rises from 1 client to a plateau and stays roughly flat out to 79 clients
(the server, not the client count, is the bottleneck), with no errors.
"""

from __future__ import annotations

import pytest

from repro.bench.results import ComparisonRow, ResultTable, format_rate
from repro.bench.sweep import summarize_sweep, sweep_client_counts
from repro.client.asyncclient import AsyncLoadClient, PipelinedLoadClient
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer

#: Sub-sampled client grid (full 1..79 with --paper-scale).
CLIENT_GRID = (1, 2, 4, 8, 16, 32, 64, 79)
PAPER_MEAN_CALLS_PER_SECOND = 1450.0


@pytest.mark.parametrize("n_clients", CLIENT_GRID)
def test_fig4_throughput_vs_clients(benchmark, bench_env, paper_scale, n_clients):
    """One Figure-4 point: a batch of list_methods calls over N connections."""

    calls = 1000 if paper_scale else 200
    factory = bench_env.client_factory(encrypted=False, login=True)
    load = AsyncLoadClient(factory, n_clients=n_clients)
    with load:
        result = benchmark.pedantic(load.run_batch, args=(calls,), rounds=3, iterations=1)
    benchmark.extra_info["n_clients"] = n_clients
    benchmark.extra_info["calls_per_second"] = result.calls_per_second
    assert result.errors == 0
    assert result.calls == calls


def test_fig4_full_sweep_summary(benchmark, bench_env, paper_scale, capsys):
    """Run the whole sweep and print the Figure 4 series + paper comparison."""

    calls = 1000 if paper_scale else 150
    grid = tuple(range(1, 80)) if paper_scale else CLIENT_GRID
    records = benchmark.pedantic(
        sweep_client_counts, args=(bench_env.client_factory(),),
        kwargs={"client_counts": grid, "calls_per_batch": calls, "batches_per_point": 1},
        rounds=1, iterations=1)
    summary = summarize_sweep(records)

    table = ResultTable("Figure 4 — requests/second vs asynchronous clients",
                        ["clients", "calls/s"])
    for n_clients, rate in summary["per_client_count"].items():
        table.add_row(n_clients, round(rate, 1))
    comparison = ComparisonRow(
        experiment_id="FIG4",
        description="mean requests/second over the client sweep",
        paper_value=f"≈{PAPER_MEAN_CALLS_PER_SECOND:.0f} calls/s (dual Xeon, 2005)",
        measured_value=format_rate(summary["overall_mean_calls_per_second"]),
        shape_holds=_shape_holds(summary["per_client_count"]),
        notes="throughput plateaus with client count; zero request errors",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    assert summary["total_errors"] == 0
    assert _shape_holds(summary["per_client_count"])


@pytest.mark.parametrize("transport", ["threaded", "async"])
def test_fig4_socket_transport(benchmark, paper_scale, transport):
    """The Figure-4 workload over real sockets, one run per frontend.

    Both frontends are driven by the same event-loop pipelined client, so
    the A/B isolates the server transport.  The no-collapse shape assertion
    applies to the async frontend only: the threaded frontend's collapse
    under many concurrent connections is exactly what this A/B documents.
    """

    calls = 2000 if paper_scale else 400
    grid = (1, 8, 64) if paper_scale else (1, 8)
    server, _ca = ClarensServer.with_test_pki(
        ServerConfig(server_transport=transport))
    frontend = server.frontend()
    per_point: dict[int, float] = {}
    errors = 0
    try:
        with frontend:
            def sweep():
                nonlocal errors
                for n_clients in grid:
                    load = PipelinedLoadClient(
                        frontend.url, server.config.rpc_path(),
                        n_clients=n_clients)
                    load.run_batch(100)  # warm-up
                    result = load.run_batch(calls)
                    per_point[n_clients] = result.calls_per_second
                    errors += result.errors

            benchmark.pedantic(sweep, rounds=1, iterations=1)
    finally:
        server.close()
    benchmark.extra_info["per_client_count"] = {
        str(k): round(v, 1) for k, v in per_point.items()}
    assert errors == 0
    if transport == "async":
        assert _shape_holds(per_point)


def _shape_holds(per_point: dict[int, float]) -> bool:
    """The qualitative Figure 4 shape: no collapse at high client counts.

    The paper's curve is roughly flat across 1..79 clients.  We accept the
    shape when the highest-concurrency point retains at least a third of the
    peak throughput (a collapse would indicate the framework serializes badly).
    """

    if not per_point:
        return False
    peak = max(per_point.values())
    highest_clients = per_point[max(per_point)]
    return highest_clients >= peak / 3.0
