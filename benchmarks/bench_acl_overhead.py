"""ABL-ACL — ablation of the per-request access-control work.

The paper's measurement "passed through two access control checks involving
access to several databases … No caching was performed on the server, with
each request incurring a database lookup for all registered methods".  This
ablation quantifies those choices:

* 0 / 1 / 2 access checks per request (none, session-only, session+ACL);
* method-list caching on vs off for ``system.list_methods``.

The expected shape: each additional check costs throughput, and caching the
method list recovers a measurable fraction — which is exactly why the paper
points out it ran with no caching (its number is a conservative one).
"""

from __future__ import annotations

import pytest

from repro.bench.results import ResultTable
from repro.bench.workloads import make_benchmark_environment
from repro.client.asyncclient import AsyncLoadClient

N_CLIENTS = 4


def _throughput(env, calls: int) -> float:
    with AsyncLoadClient(env.client_factory(), n_clients=N_CLIENTS) as load:
        result = load.run_batch(calls)
    assert result.errors == 0
    return result.calls_per_second


@pytest.mark.parametrize("checks", [0, 1, 2], ids=["no-checks", "session-only", "session+acl"])
def test_dispatch_with_n_access_checks(benchmark, checks):
    env = make_benchmark_environment(access_checks=checks, with_tls=False)
    try:
        client = env.client_factory()()
        benchmark(client.call, "system.list_methods")
        benchmark.extra_info["access_checks"] = checks
    finally:
        env.close()


@pytest.mark.parametrize("cached", [False, True], ids=["db-lookup", "cached"])
def test_method_list_lookup_caching(benchmark, cached):
    env = make_benchmark_environment(access_checks=2, cache_method_list=cached, with_tls=False)
    try:
        client = env.client_factory()()
        client.call("system.list_methods")  # warm the cache when enabled
        benchmark(client.call, "system.list_methods")
        benchmark.extra_info["cache_method_list"] = cached
    finally:
        env.close()


def test_ablation_summary_table(benchmark, paper_scale, capsys):
    calls = 600 if paper_scale else 200

    def measure() -> list:
        rows = []
        for checks in (0, 1, 2):
            for cached in (False, True):
                env = make_benchmark_environment(access_checks=checks, cache_method_list=cached,
                                                 with_tls=False)
                try:
                    rows.append((checks, cached, _throughput(env, calls)))
                finally:
                    env.close()
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = ResultTable("Access-control / caching ablation (system.list_methods)",
                        ["access checks", "method-list cache", "calls/s", "vs paper setup"])
    paper_setup_rate = next(r for c, cached, r in rows if c == 2 and not cached)
    for checks, cached, rate in rows:
        table.add_row(checks, "on" if cached else "off", round(rate, 1),
                      f"{rate / paper_setup_rate:.2f}x")
    with capsys.disabled():
        print("\n" + table.render())
        print("[ABL-ACL] paper setup = 2 checks, no caching; the paper notes its figure "
              "is conservative for exactly this reason.\n")

    by_key = {(c, cached): r for c, cached, r in rows}
    # Removing checks should not make things slower (allowing 10% noise).
    assert by_key[(0, False)] >= by_key[(2, False)] * 0.9
    # Caching the method list should not hurt.
    assert by_key[(2, True)] >= by_key[(2, False)] * 0.9
