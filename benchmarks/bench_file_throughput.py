"""TXT-SC03 — file-serving throughput: the zero-copy GET path vs chunked RPC reads.

Section 1 of the paper notes that Clarens servers generated 3.2 Gb/s of
disk-to-disk CMS event streams during the SuperComputing 2003 bandwidth
challenge; section 2.3 explains why: HTTP GET responses hand the file to the
web server's zero-copy ``sendfile()`` path, while ``file.read`` RPC calls pay
per-chunk serialization.

The reproduction serves a synthetic detector-event file both ways and checks
the shape: the GET/sendfile path sustains a large multiple of the RPC path's
throughput, and absolute GET throughput is in the "saturates a fast NIC"
regime rather than the "kilobytes per second" regime.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.results import ComparisonRow, ResultTable
from repro.bench.workloads import make_event_file
from repro.client.files import download_file, download_file_rpc

FILE_SIZE = 8 << 20  # 8 MiB of synthetic events
RPC_CHUNK = 256 << 10


@pytest.fixture(scope="module")
def event_file(bench_env):
    path = make_event_file(bench_env.server.file_root, size_bytes=FILE_SIZE,
                           name="sc2003_events.dat")
    return "/" + path.name


@pytest.fixture(scope="module")
def file_client(bench_env):
    return bench_env.client_factory()()


def test_get_sendfile_download(benchmark, bench_env, event_file, file_client):
    data = benchmark(download_file, file_client, event_file)
    assert len(data) == FILE_SIZE
    benchmark.extra_info["path"] = "http-get-sendfile"
    benchmark.extra_info["mb_per_s"] = FILE_SIZE / 1e6 / benchmark.stats.stats.mean


def test_rpc_chunked_download(benchmark, bench_env, event_file, file_client):
    data = benchmark(download_file_rpc, file_client, event_file, chunk_size=RPC_CHUNK)
    assert len(data) == FILE_SIZE
    benchmark.extra_info["path"] = "rpc-file.read"
    benchmark.extra_info["mb_per_s"] = FILE_SIZE / 1e6 / benchmark.stats.stats.mean


def test_file_read_small_random_reads(benchmark, bench_env, event_file, file_client):
    """The interactive-analysis pattern: many small offset reads into one file."""

    offsets = [i * 37_991 % (FILE_SIZE - 4096) for i in range(32)]

    def read_batch():
        for offset in offsets:
            file_client.call("file.read", event_file, offset, 4096)

    benchmark(read_batch)


def test_throughput_comparison_table(benchmark, bench_env, event_file, file_client,
                                     paper_scale, capsys):
    repeats = 5 if paper_scale else 2

    def measure(func) -> float:
        start = time.perf_counter()
        for _ in range(repeats):
            data = func()
            assert len(data) == FILE_SIZE
        return FILE_SIZE * repeats / (time.perf_counter() - start)

    def measure_both():
        return (measure(lambda: download_file(file_client, event_file)),
                measure(lambda: download_file_rpc(file_client, event_file,
                                                  chunk_size=RPC_CHUNK)))

    get_bps, rpc_bps = benchmark.pedantic(measure_both, rounds=1, iterations=1)

    table = ResultTable("File serving throughput (8 MiB synthetic event file)",
                        ["path", "MB/s", "Gb/s"])
    table.add_row("HTTP GET (sendfile)", round(get_bps / 1e6, 1), round(get_bps * 8 / 1e9, 2))
    table.add_row("file.read RPC (256 KiB chunks)", round(rpc_bps / 1e6, 1),
                  round(rpc_bps * 8 / 1e9, 2))
    comparison = ComparisonRow(
        experiment_id="TXT-SC03",
        description="zero-copy GET path vs chunked RPC reads",
        paper_value="3.2 Gb/s disk-to-disk streams at SC2003 (GET/sendfile path)",
        measured_value=f"GET {get_bps * 8 / 1e9:.2f} Gb/s vs RPC {rpc_bps * 8 / 1e9:.2f} Gb/s "
                       f"(GET {get_bps / rpc_bps:.1f}x faster)",
        shape_holds=get_bps > rpc_bps,
        notes="loopback, single stream; SC2003 used many parallel streams and real NICs",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    assert get_bps > rpc_bps
    # The GET path must be in the high-throughput regime (well above 100 MB/s
    # on any modern machine when no real network is involved).
    assert get_bps > 50e6
