"""TXT-GT3 — Clarens versus the Globus Toolkit 3 container (and a plain baseline).

Paper (footnote 4 + section 5): invoking a trivial method 100 times across a
100 Mb/s LAN with GT 3.0 / GT 3.9.1 gave 1–5 calls/second, versus Clarens'
≈1450 calls/second — a gap of roughly three orders of magnitude attributed to
GT3's per-call container, SOAP/WS-Security and grid-mapfile processing.

The GT3 comparator here is a behavioural model (see ``repro.baselines.globus``),
so the check is the *ordering and rough magnitude of the gap*, not 2005's
absolute numbers: plain baseline ≥ Clarens ≫ GT 3.9.1 ≥ GT 3.0.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.globus import GlobusGT3Server
from repro.baselines.plain import PlainRPCServer
from repro.bench.results import ComparisonRow, ResultTable, format_rate
from repro.client.client import ClarensClient

TRIVIAL_CALLS = 100  # the paper's "a trivial method 100 times"


def _rate(func, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        func()
    return calls / (time.perf_counter() - start)


@pytest.fixture(scope="module")
def gt3_servers():
    return {
        "3.0": GlobusGT3Server(gt3_version="3.0", gridmap_size=500),
        "3.9.1": GlobusGT3Server(gt3_version="3.9.1", gridmap_size=500),
    }


def test_clarens_trivial_method(benchmark, bench_env):
    client = bench_env.client_factory()()
    benchmark(client.call, "system.list_methods")
    benchmark.extra_info["system"] = "clarens"


def test_plain_baseline_trivial_method(benchmark):
    server = PlainRPCServer()
    client = ClarensClient.for_loopback(server.loopback())
    benchmark(client.call, "system.list_methods")
    benchmark.extra_info["system"] = "plain-rpc"


@pytest.mark.parametrize("version", ["3.0", "3.9.1"])
def test_gt3_trivial_method(benchmark, gt3_servers, version):
    server = gt3_servers[version]
    server.call("counter.getValue")  # ignore the first invocation, as the paper did
    benchmark(server.call, "counter.getValue")
    benchmark.extra_info["system"] = f"gt3-{version}"


def test_comparison_table(benchmark, bench_env, gt3_servers, paper_scale, capsys):
    calls = TRIVIAL_CALLS if paper_scale else 30
    clarens_client = bench_env.client_factory()()
    plain_client = ClarensClient.for_loopback(PlainRPCServer().loopback())
    for server in gt3_servers.values():
        server.call("counter.getValue")

    def measure() -> dict:
        return {
            "plain RPC (no security)": _rate(
                lambda: plain_client.call("system.list_methods"), calls),
            "Clarens (2 ACL checks)": _rate(
                lambda: clarens_client.call("system.list_methods"), calls),
            "Globus GT 3.9.1 (model)": _rate(
                lambda: gt3_servers["3.9.1"].call("counter.getValue"), max(10, calls // 5)),
            "Globus GT 3.0 (model)": _rate(
                lambda: gt3_servers["3.0"].call("counter.getValue"), max(10, calls // 5)),
        }

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)

    clarens_rate = rates["Clarens (2 ACL checks)"]
    gt3_rate = rates["Globus GT 3.0 (model)"]
    table = ResultTable("Trivial-method throughput: Clarens vs baselines",
                        ["system", "calls/s", "vs Clarens"])
    for name, rate in rates.items():
        table.add_row(name, round(rate, 1), f"{rate / clarens_rate:.3f}x")
    comparison = ComparisonRow(
        experiment_id="TXT-GT3",
        description="Clarens vs Globus GT3 calls/second ratio",
        paper_value="≈1450 vs 1–5 calls/s (factor ≈300–1000)",
        measured_value=f"factor ≈{clarens_rate / gt3_rate:.0f} (Clarens {format_rate(clarens_rate)}, "
                       f"GT3.0 {format_rate(gt3_rate)})",
        shape_holds=clarens_rate > 20 * gt3_rate and gt3_rate <= rates["Globus GT 3.9.1 (model)"],
        notes="GT3 numbers come from the behavioural model described in DESIGN.md",
    )
    with capsys.disabled():
        print("\n" + table.render())
        print(comparison.render() + "\n")

    # Ordering: plain >= clarens >> gt3.9.1 >= gt3.0 (small tolerance on the first).
    assert rates["plain RPC (no security)"] >= clarens_rate * 0.5
    assert clarens_rate > 20 * rates["Globus GT 3.9.1 (model)"]
    assert rates["Globus GT 3.9.1 (model)"] >= rates["Globus GT 3.0 (model)"] * 0.8
