#!/usr/bin/env python3
"""Lint the metric names a fully-assembled server registers.

Prometheus naming is a contract with every dashboard and alert rule ever
written against the exposition, so drift is expensive.  This script builds a
telemetry-enabled server with the full service stack (fabric peered, caches
on, admission configured — so every conditional collector registers), walks
the registry's instrument families and scrape-time callbacks, and enforces:

* every name is ``snake_case`` and carries the ``clarens_`` namespace;
* counters end in ``_total``; gauges and histograms do not;
* no non-base units in names (``_ms``/``_kb``/... — seconds and bytes only);
* no duplicate family names across instruments and callbacks;
* label names are ``snake_case`` and never shadow the reserved labels the
  exposition machinery owns (``le`` for histogram buckets, ``server`` for
  federation re-labelling, plus Prometheus's ``quantile``/``job``/
  ``instance`` and the ``__``-prefixed internal space).

Run from the repository root (the test suite wires it in via
``tests/test_metric_names.py``)::

    python scripts/check_metric_names.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Valid family/label identifier: lower snake_case, starts with a letter.
SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Label names the exposition/federation machinery injects itself.
RESERVED_LABELS = {"le", "server", "quantile", "job", "instance"}

#: Non-base unit suffixes; Prometheus convention is seconds and bytes.
BANNED_UNIT_SUFFIXES = ("_ms", "_millis", "_milliseconds", "_us", "_micros",
                       "_ns", "_kb", "_mb", "_gb", "_kib", "_mib",
                       "_minutes", "_hours", "_percent")

NAMESPACE = "clarens_"


def build_registry():
    """A server assembled with everything on, so every collector registers."""

    from repro.core.config import ServerConfig
    from repro.core.server import ClarensServer

    config = ServerConfig(
        server_name="lint", telemetry_enabled=True, cache_enabled=True,
        dispatch_rate_limit=100.0,
        telemetry_alert_rules=[
            "lint: counter(clarens_requests_total) > 1e12"],
    )
    server, _ca = ClarensServer.with_test_pki(config)
    # A registered peer makes the fabric channel/peer collectors non-trivial.
    server.fabric.add_peer("lint-peer", url="http://127.0.0.1:1/",
                           attach_storage=False)
    return server


def collect_metrics(server) -> list[tuple[str, str, tuple[str, ...]]]:
    """Every registered family as ``(name, kind, label names)``.

    Instruments expose their declared label set; callbacks are sampled once
    so their per-series label names can be checked too.
    """

    registry = server.telemetry.registry
    out: list[tuple[str, str, tuple[str, ...]]] = []
    for name, family in sorted(registry._families.items()):
        out.append((name, family.kind, tuple(family.label_names)))
    for name, _help, kind, sample in sorted(registry._callbacks,
                                            key=lambda c: c[0]):
        label_names: set[str] = set()
        try:
            for labels, _value in sample():
                label_names.update(str(k) for k in labels)
        except Exception as exc:  # pragma: no cover - collector bug
            print(f"warning: sampling {name} raised {type(exc).__name__}: "
                  f"{exc}")
        out.append((name, kind, tuple(sorted(label_names))))
    return out


def lint(metrics: list[tuple[str, str, tuple[str, ...]]]) -> list[str]:
    problems: list[str] = []
    seen: dict[str, str] = {}
    for name, kind, labels in metrics:
        if name in seen:
            problems.append(f"{name}: registered twice ({seen[name]} and "
                            f"{kind})")
        seen[name] = kind
        if not SNAKE_RE.match(name):
            problems.append(f"{name}: not lower snake_case")
        if not name.startswith(NAMESPACE):
            problems.append(f"{name}: missing the {NAMESPACE!r} namespace")
        if kind == "counter" and not name.endswith("_total"):
            problems.append(f"{name}: counters must end in _total")
        if kind != "counter" and name.endswith("_total"):
            problems.append(f"{name}: only counters may end in _total "
                            f"(is a {kind})")
        for suffix in BANNED_UNIT_SUFFIXES:
            stem = name[:-len("_total")] if name.endswith("_total") else name
            if stem.endswith(suffix):
                problems.append(f"{name}: non-base unit {suffix!r} "
                                "(use seconds/bytes)")
        for label in labels:
            if not SNAKE_RE.match(label):
                problems.append(f"{name}: label {label!r} not snake_case")
            if label in RESERVED_LABELS or label.startswith("__"):
                problems.append(f"{name}: label {label!r} is reserved")
    return problems


def main() -> int:
    server = build_registry()
    try:
        metrics = collect_metrics(server)
    finally:
        server.close()
    if not metrics:
        print("no metrics registered — assembly is broken")
        return 1
    problems = lint(metrics)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        print(f"{len(problems)} naming problem(s) in "
              f"{len(metrics)} metric families")
        return 1
    print(f"ok: {len(metrics)} metric families pass the naming rules")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
