#!/usr/bin/env python3
"""Run the soak-and-chaos harness against a local socket federation.

Usage, from the repository root::

    python scripts/run_soak.py --smoke           # 3 servers, seconds-scale
    python scripts/run_soak.py --servers 5 --duration 60
    python scripts/run_soak.py --check --smoke   # release gate: non-zero
                                                 # exit on any violation
    REPRO_TEST_SEED=12345 python scripts/run_soak.py --smoke   # replay

The run appends a structured report (ops/s, fault counts, invariant
verdicts, convergence latency) to ``BENCH_pipeline.json``; a failing run
prints the seed and the exact ``REPRO_TEST_SEED=<seed>`` replay line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.chaos import (  # noqa: E402 - path set up above
    SMOKE_OVERRIDES, SoakConfig, SoakHarness, render_report)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--servers", type=int, default=None,
                        help="federation size (default 3)")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of sustained workload (default 6)")
    parser.add_argument("--seed", type=int, default=0,
                        help="run seed (0 = draw one; REPRO_TEST_SEED wins "
                             "over a draw)")
    parser.add_argument("--threads", type=int, default=None,
                        help="workload driver threads (default 3)")
    parser.add_argument("--mix", default=None,
                        help="workload mix, e.g. 'read=5,write=3'")
    parser.add_argument("--faults", default=None,
                        help="fault kinds to enable, e.g. 'kill,link_drop'")
    parser.add_argument("--report", default=None,
                        help="trend file to append the report to")
    parser.add_argument("--transport", choices=("threaded", "async"),
                        default=None,
                        help="socket frontend the federation boots on "
                             "(default threaded)")
    parser.add_argument("--protocol", choices=("xmlrpc", "binary"),
                        default=None,
                        help="wire protocol the workload clients speak "
                             "(default xmlrpc; binary negotiates the compact "
                             "codec and re-negotiates across restarts)")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale 3-server run (the tier-1 shape)")
    parser.add_argument("--check", action="store_true",
                        help="release gate: exit non-zero on any invariant "
                             "violation")
    args = parser.parse_args()

    knobs: dict = {}
    if args.smoke:
        knobs.update(SMOKE_OVERRIDES)
    if args.servers is not None:
        knobs["chaos_servers"] = args.servers
    if args.duration is not None:
        knobs["chaos_duration"] = args.duration
    if args.threads is not None:
        knobs["chaos_workload_threads"] = args.threads
    if args.mix is not None:
        knobs["chaos_workload_mix"] = args.mix
    if args.faults is not None:
        knobs["chaos_fault_kinds"] = args.faults
    if args.report is not None:
        knobs["chaos_report_path"] = args.report
    if args.transport is not None:
        knobs["chaos_transport"] = args.transport
    if args.protocol is not None:
        knobs["chaos_protocol"] = args.protocol
    knobs["chaos_seed"] = args.seed

    config = SoakConfig(**knobs)
    harness = SoakHarness(config)
    print(f"soak: {config.chaos_servers} servers for "
          f"{config.chaos_duration}s, seed {harness.seed}", flush=True)
    entry, ok = harness.run()
    print(render_report(entry))
    if not ok:
        for line in entry["soak"].get("diagnostics", []):
            print(f"  diag: {line}", file=sys.stderr)
        print(f"\nSOAK FAILED — replay this exact run with:\n"
              f"  REPRO_TEST_SEED={harness.seed} "
              f"python scripts/run_soak.py"
              + (" --smoke" if args.smoke else ""), file=sys.stderr)
    if args.check:
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
