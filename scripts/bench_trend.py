#!/usr/bin/env python3
"""Run the smoke benchmarks and append the headline numbers to a trend file.

Runs the pipeline-relevant benchmarks in smoke mode —
``benchmarks/bench_fig4_throughput.py`` (the paper's Figure 4 sweep),
``benchmarks/bench_multicall.py`` (batched RPC speedup),
``benchmarks/bench_fabric.py`` (gossip + catalogue-sync overhead) and
``benchmarks/bench_telemetry.py`` (tracing + metrics cost) — then
measures the headline numbers directly via :mod:`repro.bench.pipelinebench`
and appends one dated entry to ``BENCH_pipeline.json`` at the repository
root, so the performance trajectory accumulates run over run.

Usage, from the repository root::

    python scripts/bench_trend.py            # pytest gate + measure + append
    python scripts/bench_trend.py --no-gate  # measure + append only

Absolute numbers reflect the host machine; the trend file records them next
to a host fingerprint so cross-machine points are distinguishable.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TREND_FILE = REPO_ROOT / "BENCH_pipeline.json"
SMOKE_BENCHMARKS = [
    "benchmarks/bench_fig4_throughput.py",
    "benchmarks/bench_multicall.py",
    "benchmarks/bench_fabric.py",
    "benchmarks/bench_telemetry.py",
    "benchmarks/bench_protocols.py",
]

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.pipelinebench import (  # noqa: E402 - path set up above
    measure_codec_round_trips, measure_fabric_overhead,
    measure_federation_scrape, measure_fig4_protocols,
    measure_fig4_socket_ab, measure_fig4_throughput,
    measure_multicall_speedup, measure_telemetry_overhead)


def run_pytest_gate() -> int:
    """Run the smoke benchmarks under pytest; returns the exit status."""

    command = [sys.executable, "-m", "pytest", "-q", "--smoke",
               "--benchmark-disable", *SMOKE_BENCHMARKS]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    print("$", " ".join(command), flush=True)
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def measure() -> dict:
    multicall = measure_multicall_speedup(calls=100)
    fig4 = measure_fig4_throughput()
    socket_ab = measure_fig4_socket_ab()
    protocols_ab = measure_fig4_protocols()
    codec_us = measure_codec_round_trips()
    fabric = measure_fabric_overhead()
    telemetry = measure_telemetry_overhead()
    federation = measure_federation_scrape()
    return {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "multicall": {
            "calls": multicall["calls"],
            "speedup": round(multicall["speedup"], 2),
            "sequential_calls_per_second":
                round(multicall["sequential_calls_per_second"], 1),
            "multicall_calls_per_second":
                round(multicall["multicall_calls_per_second"], 1),
        },
        "fig4": {
            "mean_calls_per_second": round(fig4["mean_calls_per_second"], 1),
            "per_client_count": {str(k): round(v, 1)
                                 for k, v in fig4["per_client_count"].items()},
            "errors": fig4["errors"],
        },
        # Socket-level A/B of the two frontends, same pipelined client.
        "fig4_threaded": {
            "per_client_count": {str(k): round(v, 1)
                                 for k, v in socket_ab["threaded"].items()},
        },
        "fig4_async": {
            "per_client_count": {str(k): round(v, 1)
                                 for k, v in socket_ab["async"].items()},
            "speedup_vs_threaded": {
                str(k): round(v, 2)
                for k, v in socket_ab["async_over_threaded"].items()},
            "errors": socket_ab["errors"],
            # At 8 clients the async frontend's fixed per-batch executor
            # round-trip roughly offsets the threaded frontend's still-mild
            # convoy, so that point swings around parity run to run; the
            # robust signal is the 64-client collapse of the threaded
            # frontend (see docs/architecture.md, "Socket transports").
            "note": "async pays one executor hop per batch, so at mid "
                    "concurrency it sits within noise of threaded "
                    "(0.9-1.7x across runs); it wins >10x at 64 clients "
                    "once the thread convoy collapses the threaded frontend",
        },
        # Codec A/B on the async frontend: the negotiated binary wire path
        # vs XML-RPC, same server, same pipelined client.
        "fig4_binary": {
            "per_client_count": {str(k): round(v, 1)
                                 for k, v in protocols_ab["binary"].items()},
            "speedup_vs_xmlrpc": {
                str(k): round(v, 2)
                for k, v in protocols_ab["binary_over_xmlrpc"].items()},
            "errors": protocols_ab["errors"],
        },
        "protocols": {
            name: {"round_trip_us": round(stats["round_trip_us"], 2),
                   "request_bytes": stats["request_bytes"],
                   "response_bytes": stats["response_bytes"]}
            for name, stats in codec_us["codecs"].items()
        },
        "fabric": {
            "lfns": fabric["lfns"],
            "sync_lfns_per_second": round(fabric["sync_lfns_per_second"], 1),
            "noop_round_ms": round(fabric["noop_round_s"] * 1000.0, 3),
            "gossip_messages_per_second":
                round(fabric["gossip_messages_per_second"], 1),
        },
        "telemetry": {
            "baseline_calls_per_second":
                round(telemetry["baseline_calls_per_second"], 1),
            "telemetry_calls_per_second":
                round(telemetry["telemetry_calls_per_second"], 1),
            "overhead_pct": round(telemetry["overhead_pct"], 2),
            "spans_recorded": telemetry["spans_recorded"],
        },
        "federation": {
            "servers": federation["servers"],
            "local_scrape_ms": round(federation["local_scrape_ms"], 3),
            "cold_federated_ms": round(federation["cold_federated_ms"], 3),
            "cached_federated_ms":
                round(federation["cached_federated_ms"], 3),
            "cold_over_local": round(federation["cold_over_local"], 2),
            "federated_exposition_bytes":
                federation["federated_exposition_bytes"],
        },
    }


def append_trend(entry: dict, *, path: Path | None = None) -> list[dict]:
    trend_file = Path(path) if path is not None else TREND_FILE
    runs: list[dict] = []
    if trend_file.exists():
        try:
            existing = json.loads(trend_file.read_text())
        except (ValueError, OSError):
            print(f"warning: {trend_file.name} was unreadable; starting fresh")
        else:
            # Tolerate a hand-edited or partial file: "runs" may be missing,
            # null, or not a list — any of those starts the history fresh
            # rather than crashing the recorder.
            found = existing.get("runs") if isinstance(existing, dict) else None
            if isinstance(found, list):
                runs = found
            else:
                print(f"warning: {trend_file.name} had no usable runs list; "
                      "starting fresh")
    runs.append(entry)
    trend_file.write_text(json.dumps({
        "description": "Pipeline benchmark trend; one entry per "
                       "scripts/bench_trend.py run.",
        "runs": runs,
    }, indent=2) + "\n")
    return runs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-gate", action="store_true",
                        help="skip the pytest smoke gate, only measure+append")
    args = parser.parse_args()

    if not args.no_gate:
        status = run_pytest_gate()
        if status != 0:
            print("smoke benchmarks failed; not recording a trend point")
            return status

    entry = measure()
    runs = append_trend(entry)
    ab = entry["fig4_async"]["speedup_vs_threaded"]
    wire = entry["fig4_binary"]["speedup_vs_xmlrpc"]
    print(f"multicall speedup: {entry['multicall']['speedup']}x, "
          f"fig4 mean: {entry['fig4']['mean_calls_per_second']} calls/s, "
          f"async/threaded: "
          + "/".join(f"{v}x@{k}" for k, v in ab.items()) + ", "
          f"binary/xmlrpc: "
          + "/".join(f"{v}x@{k}" for k, v in wire.items()) + ", "
          f"fabric sync: {entry['fabric']['sync_lfns_per_second']} lfns/s, "
          f"telemetry overhead: {entry['telemetry']['overhead_pct']}%, "
          f"federated scrape: {entry['federation']['cold_federated_ms']}ms")
    print(f"wrote {TREND_FILE} ({len(runs)} run(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
