#!/usr/bin/env python3
"""Generate ``docs/config.md`` from the ``ServerConfig`` dataclass.

The reference table is derived from the single source of truth —
``src/repro/core/config.py`` — by parsing the dataclass body: each field
contributes its name, annotation, default expression, and the ``#:`` comment
block immediately above it.  A tier-1 test (``tests/test_docs.py``) asserts
the committed ``docs/config.md`` matches :func:`render` exactly, so adding a
knob without regenerating the docs fails CI.

Run from the repository root::

    python scripts/gen_config_docs.py
"""

from __future__ import annotations

import ast
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG_SOURCE = REPO_ROOT / "src" / "repro" / "core" / "config.py"
CHAOS_SOURCE = REPO_ROOT / "src" / "repro" / "chaos" / "config.py"
OUTPUT = REPO_ROOT / "docs" / "config.md"

HEADER = """\
# Server configuration reference

Every knob accepted by `repro.core.config.ServerConfig` (and therefore by
`[server]` sections of INI files and `ServerConfig.from_mapping` dicts).

> **Generated file — do not edit.**  Regenerate with
> `python scripts/gen_config_docs.py`; the tier-1 test
> `tests/test_docs.py` fails when this table drifts from the dataclass.

| Knob | Type | Default | Effect |
|------|------|---------|--------|
"""

CHAOS_HEADER = """\

## Soak & chaos harness (`repro.chaos.config.SoakConfig`)

Knobs for the `repro.chaos` soak-and-chaos harness, settable as
`SoakConfig(...)` overrides or through the `scripts/run_soak.py` CLI
flags.  See `docs/operations.md` for running soaks and reading reports.

| Knob | Type | Default | Effect |
|------|------|---------|--------|
"""


def _render_default(node: ast.expr) -> str:
    """The default expression as the docs show it.

    ``field(default_factory=X)`` renders as the empty instance (``[]``/``{}``)
    rather than the factory call, matching what a constructed config holds.
    """

    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "field"):
        for keyword in node.keywords:
            if keyword.arg == "default_factory":
                factory = ast.unparse(keyword.value)
                return {"list": "[]", "dict": "{}"}.get(factory, f"{factory}()")
    return ast.unparse(node)


def extract_fields(source: str | None = None,
                   class_name: str = "ServerConfig") -> list[dict[str, str]]:
    """(name, type, default, doc) for every ``class_name`` field, in order."""

    source = source if source is not None else CONFIG_SOURCE.read_text()
    lines = source.splitlines()
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            class_def = node
            break
    else:
        raise RuntimeError(f"{class_name} class not found in config source")

    fields: list[dict[str, str]] = []
    for statement in class_def.body:
        if not isinstance(statement, ast.AnnAssign) or statement.value is None:
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        # Collect the contiguous block of ``#:`` comment lines above the field.
        doc_lines: list[str] = []
        row = statement.lineno - 2            # line above, 0-indexed
        while row >= 0 and lines[row].strip().startswith("#:"):
            doc_lines.append(lines[row].strip()[2:].strip())
            row -= 1
        doc_lines.reverse()
        fields.append({
            "name": statement.target.id,
            "type": ast.unparse(statement.annotation),
            "default": _render_default(statement.value),
            "doc": " ".join(doc_lines),
        })
    return fields


def _table_rows(fields: list[dict[str, str]]) -> str:
    rows = []
    for entry in fields:
        # GFM splits cells on every unescaped pipe, code spans included.
        type_ = entry["type"].replace("|", "\\|")
        default = entry["default"].replace("|", "\\|")
        doc = entry["doc"].replace("|", "\\|")
        rows.append(f"| `{entry['name']}` | `{type_}` "
                    f"| `{default}` | {doc} |")
    return "\n".join(rows) + "\n"


def render() -> str:
    """The full markdown document for ``docs/config.md``."""

    server = _table_rows(extract_fields())
    chaos = _table_rows(extract_fields(CHAOS_SOURCE.read_text(),
                                       "SoakConfig"))
    return HEADER + server + CHAOS_HEADER + chaos


def main() -> None:
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(render())
    knobs = (len(extract_fields())
             + len(extract_fields(CHAOS_SOURCE.read_text(), "SoakConfig")))
    print(f"wrote {OUTPUT} ({knobs} knobs)")


if __name__ == "__main__":
    main()
