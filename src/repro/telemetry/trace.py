"""Trace context propagation and per-server span recording.

A *trace* is one logical operation — a client RPC, a multicall fan-out, a
replication chain — identified by a ``trace_id`` shared by every server it
touches.  Each unit of work inside it is a *span* (``span_id``) pointing at
the span that caused it (``parent_id``), so the request's path across a
federation reconstructs from the union of the per-server span logs.

The context rides the request envelope in one HTTP header
(``X-Clarens-Trace: <trace_id>;<span_id>``) attached by
:class:`repro.client.client.ClarensClient` whenever an ambient trace is
active, and is only *parsed* by servers that enabled telemetry — paper-mode
deployments ignore it entirely, so old clients and old servers interoperate
unchanged.

Within a process the active context is ambient (a :class:`contextvars
.ContextVar`): the pipeline activates it around the service method, which
means anything the method does on the same thread — publish a bus event,
call a peer through a pooled :class:`~repro.fabric.channel.PeerChannel`,
submit a transfer — inherits it without plumbing arguments through every
layer.  Worker threads do not inherit context vars; the transfer engine
therefore carries the serialised context inside the
:class:`~repro.replica.model.TransferRequest` record and re-activates it
per attempt.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "Span",
    "SpanRecorder",
    "current_trace",
    "use_trace",
]

#: HTTP header carrying ``<trace_id>;<span_id>`` between servers.
TRACE_HEADER = "X-Clarens-Trace"


def _new_id() -> str:
    """A 16-hex-digit random identifier (64 bits, like W3C span ids)."""

    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The immutable identity of the current unit of work."""

    trace_id: str
    span_id: str
    parent_id: str = ""

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a fresh root context (no parent)."""

        return cls(trace_id=_new_id(), span_id=_new_id())

    def child(self) -> "TraceContext":
        """A new span within the same trace, parented on this one."""

        return TraceContext(trace_id=self.trace_id, span_id=_new_id(),
                            parent_id=self.span_id)

    def to_header(self) -> str:
        return f"{self.trace_id};{self.span_id}"

    @classmethod
    def from_header(cls, value: str) -> "TraceContext | None":
        """Parse a ``trace_id;span_id`` header into a *child* context.

        The received span becomes the parent: the server mints its own span
        id for the work it is about to do.  Malformed or empty values yield
        ``None`` — a garbage header degrades to an untraced request, never
        a fault.
        """

        if not value:
            return None
        trace_id, _, span_id = value.partition(";")
        trace_id = trace_id.strip()
        span_id = span_id.strip()
        if not trace_id or not span_id:
            return None
        if len(trace_id) > 64 or len(span_id) > 64:
            return None
        if not all(c in "0123456789abcdefABCDEF" for c in trace_id + span_id):
            return None
        return cls(trace_id=trace_id.lower(), span_id=_new_id(),
                   parent_id=span_id.lower())


_current: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None)


def current_trace() -> TraceContext | None:
    """The ambient trace context of the calling thread/task, if any."""

    return _current.get()


@contextlib.contextmanager
def use_trace(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Activate ``ctx`` as the ambient trace for the dynamic extent."""

    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


@dataclass
class Span:
    """One recorded unit of work on one server."""

    trace_id: str
    span_id: str
    parent_id: str = ""
    server: str = ""
    method: str = ""
    identity: str = ""
    protocol: str = ""
    status: str = "ok"            # "ok" | "fault"
    fault_code: int = 0
    fault_string: str = ""
    started: float = field(default_factory=time.time)
    duration_s: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "server": self.server,
            "method": self.method,
            "identity": self.identity,
            "protocol": self.protocol,
            "status": self.status,
            "fault_code": self.fault_code,
            "fault_string": self.fault_string,
            "started": self.started,
            "duration_s": self.duration_s,
            "stage_seconds": dict(self.stage_seconds),
        }


class SpanRecorder:
    """A bounded in-memory ring of the most recent spans on this server.

    The buffer is deliberately small and lossy — it answers "what did this
    trace do here recently", not "give me every request since boot".  A
    deque with ``maxlen`` gives O(1) appends; queries copy under the lock.
    """

    def __init__(self, capacity: int = 2048) -> None:
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=max(1, int(capacity)))
        self._recorded = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1

    def by_trace(self, trace_id: str) -> list[Span]:
        """All retained spans of one trace, oldest first."""

        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    def recent(self, limit: int = 100) -> list[Span]:
        """The most recent ``limit`` spans, oldest first."""

        limit = max(0, int(limit))
        with self._lock:
            spans = list(self._spans)
        return spans[-limit:] if limit else []

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"recorded": self._recorded, "retained": len(self._spans),
                    "capacity": self._spans.maxlen}
