"""Fabric-wide observability: tracing, metrics, and export surfaces.

The paper's deployment model is a many-server analysis grid monitored by
MonALISA-style farm stations: measure everything cheaply, ship the numbers
to one place.  :mod:`repro.telemetry` reproduces that posture on the grown
codebase:

* :mod:`repro.telemetry.trace` — a trace context (``trace_id``/``span_id``/
  parent) minted or accepted per request, carried across servers in an HTTP
  header, propagated through multicall entries, fabric channels, and
  transfer jobs, and recorded as bounded per-server span logs.
* :mod:`repro.telemetry.metrics` — a registry of sharded counters, gauges,
  and log-bucketed histograms with Prometheus-style text exposition.
* :mod:`repro.telemetry.bridge` — turns the existing ``MessageBus`` event
  streams and cache/dispatch/admission statistics into named metrics.
* :mod:`repro.telemetry.slowlog` — one structured log line per over-budget
  request, with per-stage latency attribution and the trace id.
* :mod:`repro.telemetry.collector` — cross-server trace assembly: fan out
  ``system.trace`` over the fabric, merge, and build one span tree.
* :mod:`repro.telemetry.federation` — the cached ``/metrics/federation``
  exposition carrying every fabric member's series, ``server``-labelled.
* :mod:`repro.telemetry.health` — subsystem probes composed into ``ok`` /
  ``degraded`` / ``critical``, ``GET /healthz``, and the gossiped fleet view.
* :mod:`repro.telemetry.alerts` — declarative threshold rules evaluated on a
  background beat, firing deduplicated ``telemetry.alert.*`` bus events.
* :mod:`repro.telemetry.runtime` — :class:`ServerTelemetry`, the per-server
  assembly the server wires in when ``telemetry_enabled`` is set.

Everything is off by default so the out-of-the-box server still matches the
paper's uninstrumented measurements.
"""

from repro.telemetry.trace import (
    TRACE_HEADER,
    Span,
    SpanRecorder,
    TraceContext,
    current_trace,
    use_trace,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slowlog import SlowRequestLog
from repro.telemetry.bridge import (
    EventBridge,
    register_cache_collectors,
    register_server_collectors,
)
from repro.telemetry.alerts import ALERT_TOPIC, AlertEngine, AlertRule, AlertRuleError
from repro.telemetry.collector import TraceCollector, assemble_tree, fanout_peers
from repro.telemetry.federation import MetricsFederation, merge_expositions
from repro.telemetry.health import (
    HEALTH_TOPIC,
    STATUS_CRITICAL,
    STATUS_DEGRADED,
    STATUS_OK,
    HealthModel,
)
from repro.telemetry.runtime import ServerTelemetry

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "Span",
    "SpanRecorder",
    "current_trace",
    "use_trace",
    "MetricsRegistry",
    "SlowRequestLog",
    "EventBridge",
    "register_cache_collectors",
    "register_server_collectors",
    "ALERT_TOPIC",
    "AlertEngine",
    "AlertRule",
    "AlertRuleError",
    "TraceCollector",
    "assemble_tree",
    "fanout_peers",
    "MetricsFederation",
    "merge_expositions",
    "HEALTH_TOPIC",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_CRITICAL",
    "HealthModel",
    "ServerTelemetry",
]
