"""The slow-request log: one structured line per over-budget request.

ROADMAP direction 2 asks for per-stage latency *budgets* enforced via the
stats breakdown; the slow log is the observable half of that.  When a
request's total duration exceeds ``telemetry_slow_ms`` the completed span —
which already carries the per-stage timing attribution — is appended to a
bounded ring and emitted as one parseable ``key=value`` log line, so an
operator can answer "what was slow, where did the time go, and what trace
was it part of" from the server log alone.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from typing import Any

from repro.telemetry.trace import Span

__all__ = ["SlowRequestLog"]

log = logging.getLogger("repro.telemetry.slow")


class SlowRequestLog:
    """Retains and logs requests slower than ``threshold_ms``."""

    def __init__(self, threshold_ms: float, capacity: int = 256,
                 logger: logging.Logger | None = None) -> None:
        self.threshold_ms = float(threshold_ms)
        self._log = logger or log
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(
            maxlen=max(1, int(capacity)))
        self._observed = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_ms > 0

    def observe(self, span: Span) -> bool:
        """Record ``span`` if it blew the budget; returns True if it did."""

        if not self.enabled:
            return False
        total_ms = span.duration_s * 1000.0
        if total_ms < self.threshold_ms:
            return False
        entry = span.to_record()
        entry["total_ms"] = total_ms
        with self._lock:
            self._entries.append(entry)
            self._observed += 1
        stages = " ".join(
            f"stage.{name}={seconds * 1000.0:.3f}ms"
            for name, seconds in sorted(span.stage_seconds.items()))
        self._log.warning(
            "slow-request trace=%s span=%s method=%s identity=%s status=%s "
            "total=%.3fms budget=%.1fms %s",
            span.trace_id or "-", span.span_id or "-", span.method,
            span.identity, span.status, total_ms, self.threshold_ms, stages)
        return True

    def entries(self) -> list[dict[str, Any]]:
        """Retained slow-request records, oldest first."""

        with self._lock:
            return [dict(e) for e in self._entries]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"observed": self._observed,
                    "retained": len(self._entries),
                    "threshold_ms": self.threshold_ms}
