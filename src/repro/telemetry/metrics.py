"""A unified metrics registry with Prometheus-style text exposition.

Three instrument kinds cover everything the server measures:

* **counters** — monotonically increasing totals (requests served, events
  published).  Hot-path counters are *sharded*: each cell stripes its value
  across ``shards`` independently-locked slots assigned round-robin per
  thread (the same idiom as ``ShardedDispatchStats`` — glibc thread idents
  are 64-byte aligned, so hashing the ident would collapse onto one shard),
  and reads sum the stripes.
* **gauges** — point-in-time values (queue depth, session count).
* **histograms** — log-bucketed (powers of two) latency/size distributions
  with cumulative buckets, ``_sum`` and ``_count``, Prometheus-compatible.

Besides directly-written instruments the registry accepts *collect-time
callbacks*: a function returning ``[(labels, value), ...]`` sampled lazily
on every scrape, which is how existing statistics surfaces (dispatch stats,
cache registry, admission, transfer engine, fabric) are exported without
double bookkeeping.

:meth:`MetricsRegistry.render` emits the text exposition format
(``text/plain; version=0.0.4``) that Prometheus and its ecosystem scrape.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Iterable, Sequence

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram"]

#: Default histogram boundaries: powers of two from 2^-14 (~61 µs) up to
#: 2^6 (64 s) — wide enough for both RPC latencies and transfer durations.
DEFAULT_BUCKETS = tuple(2.0 ** exp for exp in range(-14, 7))


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 2 ** 53:
        return str(int(as_float))
    return repr(as_float)


def _format_series(name: str, labels: dict[str, Any], value: float) -> str:
    if labels:
        body = ",".join(f'{k}="{_escape_label(v)}"'
                        for k, v in sorted(labels.items()))
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _ShardPicker:
    """Round-robin thread→shard assignment shared by all sharded cells."""

    def __init__(self, shards: int) -> None:
        self.shards = max(1, int(shards))
        self._local = threading.local()
        self._assign = itertools.count()

    def index(self) -> int:
        idx = getattr(self._local, "idx", None)
        if idx is None:
            idx = next(self._assign) % self.shards
            self._local.idx = idx
        return idx


class _CounterCell:
    """One labelled counter series, striped across shard locks."""

    __slots__ = ("_picker", "_locks", "_values")

    def __init__(self, picker: _ShardPicker) -> None:
        self._picker = picker
        self._locks = [threading.Lock() for _ in range(picker.shards)]
        self._values = [0.0] * picker.shards

    def inc(self, amount: float = 1.0) -> None:
        idx = self._picker.index()
        with self._locks[idx]:
            self._values[idx] += amount

    def value(self) -> float:
        total = 0.0
        for idx, lock in enumerate(self._locks):
            with lock:
                total += self._values[idx]
        return total


class _GaugeCell:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def value(self) -> float:
        with self._lock:
            return self._value


class _HistogramCell:
    """One labelled histogram series, striped across shard locks."""

    __slots__ = ("_picker", "_bounds", "_locks", "_buckets", "_sums",
                 "_counts")

    def __init__(self, picker: _ShardPicker,
                 bounds: Sequence[float]) -> None:
        self._picker = picker
        self._bounds = tuple(bounds)
        self._locks = [threading.Lock() for _ in range(picker.shards)]
        self._buckets = [[0] * len(self._bounds)
                         for _ in range(picker.shards)]
        self._sums = [0.0] * picker.shards
        self._counts = [0] * picker.shards

    def observe(self, value: float) -> None:
        # Linear scan is fine: ~21 default buckets, and latencies land in
        # the first few.  A bisect would cost more in call overhead.
        slot = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                slot = i
                break
        idx = self._picker.index()
        with self._locks[idx]:
            if slot < len(self._bounds):
                self._buckets[idx][slot] += 1
            self._sums[idx] += value
            self._counts[idx] += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """Merged per-bucket counts (non-cumulative), sum, and count."""

        merged = [0] * len(self._bounds)
        total_sum = 0.0
        total_count = 0
        for idx, lock in enumerate(self._locks):
            with lock:
                for i, n in enumerate(self._buckets[idx]):
                    merged[i] += n
                total_sum += self._sums[idx]
                total_count += self._counts[idx]
        return merged, total_sum, total_count

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds


class _Family:
    """A named metric with a fixed label-name set and per-labels cells."""

    def __init__(self, name: str, help_text: str, kind: str,
                 label_names: tuple[str, ...],
                 make_cell: Callable[[], Any]) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self._make_cell = make_cell
        self._lock = threading.Lock()
        self._cells: dict[tuple[str, ...], Any] = {}

    def labels(self, **labels: Any) -> Any:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        cell = self._cells.get(key)
        if cell is None:
            with self._lock:
                cell = self._cells.get(key)
                if cell is None:
                    cell = self._make_cell()
                    self._cells[key] = cell
        return cell

    def cells(self) -> list[tuple[dict[str, str], Any]]:
        with self._lock:
            items = list(self._cells.items())
        return [(dict(zip(self.label_names, key)), cell)
                for key, cell in items]


class Counter(_Family):
    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.labels(**labels).inc(amount)


class Gauge(_Family):
    def set(self, value: float, **labels: Any) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.labels(**labels).inc(amount)


class Histogram(_Family):
    def observe(self, value: float, **labels: Any) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """All instruments of one server, renderable as text exposition."""

    def __init__(self, shards: int = 4) -> None:
        self._picker = _ShardPicker(shards)
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._callbacks: list[tuple[str, str, str,
                                    Callable[[], Iterable[tuple[dict, float]]]]] = []

    # -- instrument factories ------------------------------------------

    def _family(self, name: str, help_text: str, kind: str,
                label_names: Sequence[str],
                factory: Callable[..., _Family],
                make_cell: Callable[[], Any]) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = factory(name, help_text, kind, tuple(label_names),
                                 make_cell)
                self._families[name] = family
            elif family.kind != kind or family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name} re-registered with a different "
                    f"kind/labels ({family.kind}{family.label_names} vs "
                    f"{kind}{tuple(label_names)})")
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._family(name, help_text, "counter", labels, Counter,
                            lambda: _CounterCell(self._picker))

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._family(name, help_text, "gauge", labels, Gauge,
                            lambda: _GaugeCell())

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        bounds = tuple(sorted(float(b) for b in buckets))
        return self._family(name, help_text, "histogram", labels, Histogram,
                            lambda: _HistogramCell(self._picker, bounds))

    def register_callback(self, name: str, help_text: str, kind: str,
                          sample: Callable[[], Iterable[tuple[dict, float]]],
                          ) -> None:
        """Export a lazily-sampled metric: ``sample()`` runs per scrape.

        ``kind`` is ``"gauge"`` or ``"counter"``; ``sample`` returns an
        iterable of ``(labels_dict, value)`` pairs.
        """

        if kind not in ("gauge", "counter"):
            raise ValueError(f"callback metrics must be gauge or counter, "
                             f"not {kind!r}")
        with self._lock:
            if name in self._families or any(c[0] == name
                                             for c in self._callbacks):
                raise ValueError(f"metric {name} already registered")
            self._callbacks.append((name, help_text, kind, sample))

    # -- exposition ----------------------------------------------------

    def collect(self) -> dict[str, Any]:
        """A structured snapshot (the ``system.metrics`` RPC payload)."""

        out: dict[str, Any] = {}
        with self._lock:
            families = list(self._families.values())
            callbacks = list(self._callbacks)
        for family in families:
            series = []
            for labels, cell in family.cells():
                if family.kind == "histogram":
                    buckets, total_sum, count = cell.snapshot()
                    series.append({"labels": labels, "sum": total_sum,
                                   "count": count})
                else:
                    series.append({"labels": labels, "value": cell.value()})
            out[family.name] = {"type": family.kind, "series": series}
        for name, _help, kind, sample in callbacks:
            try:
                samples = list(sample())
            except Exception:
                continue
            out[name] = {"type": kind,
                         "series": [{"labels": dict(labels), "value": value}
                                    for labels, value in samples]}
        return out

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""

        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(),
                              key=lambda f: f.name)
            callbacks = sorted(self._callbacks, key=lambda c: c[0])
        for family in families:
            cells = family.cells()
            if not cells:
                continue
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, cell in cells:
                if family.kind == "histogram":
                    buckets, total_sum, count = cell.snapshot()
                    cumulative = 0
                    for bound, n in zip(cell.bounds, buckets):
                        cumulative += n
                        lines.append(_format_series(
                            f"{family.name}_bucket",
                            {**labels, "le": _format_value(bound)},
                            cumulative))
                    lines.append(_format_series(
                        f"{family.name}_bucket", {**labels, "le": "+Inf"},
                        count))
                    lines.append(_format_series(f"{family.name}_sum",
                                                labels, total_sum))
                    lines.append(_format_series(f"{family.name}_count",
                                                labels, count))
                else:
                    lines.append(_format_series(family.name, labels,
                                                cell.value()))
        for name, help_text, kind, sample in callbacks:
            try:
                samples = list(sample())
            except Exception:
                continue
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            if not samples:
                # A registered surface with no series yet still advertises
                # itself so scrapers see the family exists.
                continue
            for labels, value in samples:
                lines.append(_format_series(name, dict(labels), value))
        return "\n".join(lines) + "\n" if lines else ""
