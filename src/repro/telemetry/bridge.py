"""Bridges between the existing observability surfaces and the registry.

Two mechanisms feed the :class:`~repro.telemetry.metrics.MetricsRegistry`
without any subsystem having to know telemetry exists:

* :class:`EventBridge` subscribes to the server's :class:`~repro.monitoring
  .bus.MessageBus` and counts every publication into
  ``clarens_bus_events_total{event=...}`` — the event label is the topic
  truncated to its first two dotted segments, which keeps cardinality
  bounded even for tag-bearing topics like ``cache.invalidate.<tag>``.
  Replica transfer lifecycle topics additionally land in
  ``clarens_replica_transfer_events_total{event=...}`` so heal/quarantine
  rates are first-class series.

* :func:`register_server_collectors` registers collect-time callbacks that
  sample the statistics surfaces the codebase already maintains — dispatch
  stats, the cache registry, admission, the transfer engine, the fabric —
  on every scrape.  No double bookkeeping: the scrape *is* the snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.monitoring.bus import Message, MessageBus
from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.registry import CacheRegistry
    from repro.core.server import ClarensServer

__all__ = ["EventBridge", "register_cache_collectors",
           "register_server_collectors"]


def _event_label(topic: str) -> str:
    """Topic → bounded label: the first two dotted segments."""

    parts = topic.split(".")
    return ".".join(parts[:2]) if len(parts) > 1 else topic


class EventBridge:
    """Counts every MessageBus publication into named metrics."""

    def __init__(self, bus: MessageBus, registry: MetricsRegistry) -> None:
        self._bus = bus
        self._events = registry.counter(
            "clarens_bus_events_total",
            "Monitoring-bus publications by event family.",
            labels=("event",))
        self._transfer_events = registry.counter(
            "clarens_replica_transfer_events_total",
            "Replica transfer lifecycle events (queued/done/failed/"
            "quarantine/...).",
            labels=("event",))
        self._sub_id = bus.subscribe("*", self._on_message)

    def _on_message(self, message: Message) -> None:
        try:
            self._events.inc(event=_event_label(message.topic))
            if message.topic.startswith("replica.transfer."):
                suffix = message.topic[len("replica.transfer."):]
                self._transfer_events.inc(event=suffix.split(".", 1)[0])
        except Exception:  # noqa: BLE001 - telemetry must never kill delivery
            pass

    def close(self) -> None:
        self._bus.unsubscribe(self._sub_id)


def register_cache_collectors(caches: "CacheRegistry",
                              registry: MetricsRegistry) -> bool:
    """Export the cache registry's stats as scrape-time metrics.

    Shared between :func:`register_server_collectors` and
    :class:`~repro.monitoring.cachemetrics.CacheStatsReporter` — idempotent,
    so whichever wires up first wins and the other is a no-op.  Returns
    whether this call registered the families.
    """

    def cache_counters():
        snap = caches.stats_snapshot()
        out = []
        for name, stats in snap["caches"].items():
            for kind in ("hits", "misses", "evictions", "expirations",
                         "invalidations"):
                out.append(({"cache": name, "kind": kind}, stats[kind]))
        return out

    def cache_sizes():
        snap = caches.stats_snapshot()
        return [({"cache": name}, stats["size"])
                for name, stats in snap["caches"].items()]

    try:
        registry.register_callback(
            "clarens_cache_operations_total",
            "Cache lookups and maintenance by cache and kind.", "counter",
            cache_counters)
    except ValueError:
        return False
    registry.register_callback(
        "clarens_cache_size", "Live entries per cache.", "gauge",
        cache_sizes)
    return True


def register_server_collectors(server: "ClarensServer",
                               registry: MetricsRegistry) -> None:
    """Export the server's existing stats surfaces as scrape-time metrics.

    Every callback samples lazily, tolerates missing subsystems (no fabric,
    no admission, caching off), and never raises into the scrape.
    """

    pipeline = server.pipeline

    # -- dispatch ----------------------------------------------------------
    def dispatch_counters():
        snap = pipeline.stats.snapshot()
        return [({"kind": "requests"}, snap["requests"]),
                ({"kind": "faults"}, snap["faults"]),
                ({"kind": "anonymous"}, snap["anonymous_requests"]),
                ({"kind": "throttled"}, snap["throttled"])]

    registry.register_callback(
        "clarens_dispatch_total",
        "Dispatched requests by outcome kind.", "counter", dispatch_counters)

    def stage_seconds():
        snap = pipeline.stats.snapshot()
        return [({"stage": name}, stage["seconds"])
                for name, stage in snap["stages"].items()]

    registry.register_callback(
        "clarens_dispatch_stage_seconds_total",
        "Cumulative wall-clock seconds spent per pipeline stage.",
        "counter", stage_seconds)

    def stage_calls():
        snap = pipeline.stats.snapshot()
        return [({"stage": name}, stage["calls"])
                for name, stage in snap["stages"].items()]

    registry.register_callback(
        "clarens_dispatch_stage_calls_total",
        "Pipeline stage executions.", "counter", stage_calls)

    # -- caches ------------------------------------------------------------
    register_cache_collectors(server.caches, registry)

    # -- sessions ----------------------------------------------------------
    registry.register_callback(
        "clarens_sessions_active", "Sessions currently in the session DB.",
        "gauge", lambda: [({}, server.sessions.count())])

    # -- monitoring bus ----------------------------------------------------
    def bus_counters():
        snap = server.message_bus.stats()
        return [({"kind": kind}, snap[kind])
                for kind in ("published", "delivered", "dropped")]

    registry.register_callback(
        "clarens_bus_messages_total",
        "MessageBus publications/deliveries/drops.", "counter", bus_counters)

    # -- admission (present only when configured) --------------------------
    def admission_counters():
        controller = pipeline.admission
        if controller is None:
            return []
        snap = controller.stats(top_k=0)
        return [({"kind": kind}, snap[kind])
                for kind in ("admitted", "throttled", "exempted")]

    registry.register_callback(
        "clarens_admission_total",
        "Admission-control decisions by kind.", "counter",
        admission_counters)

    registry.register_callback(
        "clarens_admission_identities",
        "Identities with live admission buckets.", "gauge",
        lambda: ([] if pipeline.admission is None
                 else [({}, pipeline.admission.stats(top_k=0)["identities"])]))

    # -- replica layer -----------------------------------------------------
    def replica_engine():
        service = server.services.get("replica")
        if service is None:
            return None
        return service.engine

    def transfer_counters():
        engine = replica_engine()
        if engine is None:
            return []
        snap = engine.stats()
        return [({"kind": "completed"}, snap["completed"]),
                ({"kind": "failed"}, snap["failed"]),
                ({"kind": "recovered"}, snap["recovered"])]

    registry.register_callback(
        "clarens_replica_transfers_total",
        "Finished replica transfers by outcome.", "counter",
        transfer_counters)

    registry.register_callback(
        "clarens_replica_transfer_bytes_total",
        "Bytes copied by the transfer engine.", "counter",
        lambda: ([] if replica_engine() is None else
                 [({}, replica_engine().stats()["bytes_transferred"])]))

    def transfer_queue():
        engine = replica_engine()
        if engine is None:
            return []
        snap = engine.stats()
        return [({"state": "queued"}, snap["queued"]),
                ({"state": "running"}, snap["running"])]

    registry.register_callback(
        "clarens_replica_transfer_queue",
        "Transfers currently queued or running.", "gauge", transfer_queue)

    # -- fabric (present only when peered) ---------------------------------
    def fabric_peers():
        fabric = server.fabric
        if fabric is None:
            return []
        snap = fabric.registry.stats()
        return [({"state": state}, count)
                for state, count in sorted(snap["by_state"].items())]

    registry.register_callback(
        "clarens_fabric_peers", "Registered fabric peers by health state.",
        "gauge", fabric_peers)

    def gossip_counters():
        fabric = server.fabric
        if fabric is None:
            return []
        snap = fabric.gossip.stats()
        return [({"kind": kind}, snap[kind])
                for kind in ("queued", "sent", "dropped", "send_failures",
                             "received", "applied", "rejected")]

    registry.register_callback(
        "clarens_fabric_gossip_total",
        "GossipBus message counters by kind.", "counter", gossip_counters)

    def channel_counters():
        fabric = server.fabric
        if fabric is None:
            return []
        out = []
        for name, channel in list(fabric.channels.items()):
            snap = channel.stats()
            for kind in ("calls", "faults", "transport_errors",
                         "reconnects"):
                out.append(({"peer": name, "kind": kind}, snap[kind]))
        return out

    registry.register_callback(
        "clarens_fabric_channel_total",
        "PeerChannel RPC counters by peer and kind.", "counter",
        channel_counters)

    registry.register_callback(
        "clarens_fabric_channel_seconds_total",
        "Cumulative seconds spent in peer RPCs, by peer.", "counter",
        lambda: ([] if server.fabric is None else
                 [({"peer": name}, channel.stats().get("call_seconds", 0.0))
                  for name, channel in list(server.fabric.channels.items())]))
