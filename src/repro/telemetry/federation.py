"""Federated metrics: one scrape for the whole fabric.

``GET /metrics`` describes one node.  :class:`MetricsFederation` serves
``GET /metrics/federation``: the local exposition plus every live peer's
(fetched through the authenticated ``fabric.metrics`` RPC in parallel),
each sample re-labelled with ``server="<name>"`` and the families merged so
the output is one valid Prometheus text document — every family's metadata
appears once and its samples stay grouped, as the format requires.

Two properties keep this safe to point a scraper at:

* responses are cached for ``telemetry_federation_ttl`` seconds, and the
  rebuild runs under the cache lock, so N concurrent scrapes cost the
  fabric one fan-out, never N (a scrape cannot stampede the fabric);
* a dead peer degrades the output to *partial* — its absence is recorded in
  a leading ``# federation:`` comment and the remaining servers' series are
  served normally.
"""

from __future__ import annotations

import re
import time
from threading import Lock
from typing import TYPE_CHECKING, Any

from repro.httpd.message import HTTPRequest, HTTPResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import ClarensServer

__all__ = ["MetricsFederation", "merge_expositions",
           "EXPOSITION_CONTENT_TYPE"]

#: The content type Prometheus expects from a text-format scrape target.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``name{labels} value`` — the label block is greedy, which is correct
#: because the value part never contains ``}``.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S.*)$")


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def merge_expositions(sections: list[tuple[str, str]]) -> str:
    """Merge per-server expositions into one, adding ``server`` labels.

    ``sections`` is ``[(server name, exposition text), ...]``.  Families are
    keyed by the name their ``# TYPE`` line declares (histogram samples like
    ``_bucket``/``_sum``/``_count`` stay with their family), HELP/TYPE are
    taken from the first server that declared them, and every sample line
    gains a leading ``server="<name>"`` label.
    """

    families: dict[str, dict[str, Any]] = {}
    order: list[str] = []

    def family(name: str) -> dict[str, Any]:
        entry = families.get(name)
        if entry is None:
            entry = {"help": "", "type": "", "samples": []}
            families[name] = entry
            order.append(name)
        return entry

    for server, text in sections:
        current: dict[str, Any] | None = None
        current_name = ""
        for line in text.splitlines():
            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                if len(parts) >= 3:
                    entry = family(parts[2])
                    entry["help"] = entry["help"] or \
                        (parts[3] if len(parts) > 3 else "")
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ", 3)
                if len(parts) >= 4:
                    current_name = parts[2]
                    current = family(current_name)
                    current["type"] = current["type"] or parts[3]
                continue
            if not line.strip() or line.startswith("#"):
                continue
            match = _SAMPLE_RE.match(line)
            if match is None:
                continue
            name, labels, value = match.groups()
            if current is None or not name.startswith(current_name):
                current_name = name
                current = family(name)
            inner = labels[1:-1] if labels else ""
            merged = f'server="{_escape(server)}"' + \
                (f",{inner}" if inner else "")
            current["samples"].append(f"{name}{{{merged}}} {value}")

    lines: list[str] = []
    for name in order:
        entry = families[name]
        if entry["help"]:
            lines.append(f"# HELP {name} {entry['help']}")
        if entry["type"]:
            lines.append(f"# TYPE {name} {entry['type']}")
        lines.extend(entry["samples"])
    return "\n".join(lines) + "\n" if lines else ""


class MetricsFederation:
    """The cached, fanned-out ``/metrics/federation`` exposition."""

    def __init__(self, server: "ClarensServer", *, ttl: float = 5.0,
                 timeout: float = 5.0) -> None:
        self.server = server
        self.ttl = float(ttl)
        self.timeout = float(timeout)
        self._lock = Lock()
        self._cached: tuple[float, str, dict[str, Any]] | None = None
        self.scrapes = 0
        self.cache_hits = 0
        self.peer_errors = 0

    def render(self, *, force: bool = False) -> tuple[str, dict[str, Any]]:
        """The federated exposition and its metadata, from cache if fresh.

        The rebuild runs under the lock on purpose: concurrent scrapes
        serialise on one fan-out instead of each dialling every peer.
        """

        with self._lock:
            self.scrapes += 1
            now = time.monotonic()
            if (not force and self._cached is not None
                    and now < self._cached[0]):
                self.cache_hits += 1
                return self._cached[1], dict(self._cached[2])
            body, meta = self._build()
            self._cached = (time.monotonic() + self.ttl, body, meta)
            return body, dict(meta)

    def _build(self) -> tuple[str, dict[str, Any]]:
        from repro.telemetry.collector import fanout_peers

        telemetry = self.server.telemetry
        own_name = self.server.config.server_name
        sections: list[tuple[str, str]] = [(own_name,
                                            telemetry.registry.render())]
        unreachable: dict[str, str] = {}
        fabric = self.server.fabric
        channels = dict(fabric.channels) if fabric is not None else {}
        if channels:
            outcomes = fanout_peers(
                channels,
                lambda channel: channel.call("fabric.metrics", retry=False),
                timeout=self.timeout)
            for name, (ok, value) in sorted(outcomes.items()):
                if not ok:
                    unreachable[name] = str(value)
                    self.peer_errors += 1
                    continue
                peer_name = str((value or {}).get("server") or name)
                sections.append((peer_name,
                                 str((value or {}).get("exposition") or "")))
        header = [f"# federation: servers={len(sections)} "
                  f"unreachable={len(unreachable)} origin={own_name}"]
        for name, error in sorted(unreachable.items()):
            header.append(f"# federation: peer {name} unreachable: "
                          + error.replace("\n", " "))
        body = "\n".join(header) + "\n" + merge_expositions(sections)
        meta = {
            "servers": [name for name, _ in sections],
            "unreachable": unreachable,
            "partial": bool(unreachable),
            "rendered_at": time.time(),
        }
        return body, meta

    def handle_get(self, request: HTTPRequest,
                   remainder: str) -> HTTPResponse:
        """``GET /metrics/federation``: the fabric-wide text exposition."""

        body, _meta = self.render()
        return HTTPResponse.ok(body.encode("utf-8"),
                               content_type=EXPOSITION_CONTENT_TYPE)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"scrapes": self.scrapes, "cache_hits": self.cache_hits,
                    "peer_errors": self.peer_errors, "ttl": self.ttl}
