"""The composed health model: subsystem probes, fleet view, ``/healthz``.

One :class:`HealthModel` per telemetry-enabled server turns the statistics
surfaces the codebase already maintains into a judgement — ``ok`` /
``degraded`` / ``critical`` — per subsystem and overall:

* **transfer-queue** — transfers queued+running against depth thresholds;
* **journal** — write-ahead journal entries still in a non-terminal state
  (lag between intent and completion);
* **peers** — fabric peers down: any down degrades, all down is critical;
* **admission** — the throttled fraction of admission decisions
  (saturation, not volume);
* **caches** — the aggregate hit rate against a floor, once enough lookups
  exist to judge.

Locally-firing alert rules fold in on top: a firing ``critical`` rule makes
the node critical (and hence ``GET /healthz`` → 503), a ``warning`` rule
degrades it.  The unauthenticated ``/healthz`` endpoint reports *this*
node; the authenticated ``system.health`` RPC adds the fleet view — health
summaries and alert events gossiped by every telemetry-enabled peer.
"""

from __future__ import annotations

import json
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.httpd.message import HTTPRequest, HTTPResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import ClarensServer
    from repro.monitoring.bus import Message, MessageBus

__all__ = ["HEALTH_TOPIC", "HealthModel",
           "STATUS_OK", "STATUS_DEGRADED", "STATUS_CRITICAL"]

#: Topic prefix for gossiped node-health summaries.
HEALTH_TOPIC = "telemetry.health"

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_CRITICAL = "critical"
_RANK = {STATUS_OK: 0, STATUS_DEGRADED: 1, STATUS_CRITICAL: 2}


def _worst(*statuses: str) -> str:
    return max(statuses, key=lambda s: _RANK.get(s, 0), default=STATUS_OK)


def _grade(value: float, degraded_at: float, critical_at: float) -> str:
    if value >= critical_at:
        return STATUS_CRITICAL
    if value >= degraded_at:
        return STATUS_DEGRADED
    return STATUS_OK


class HealthModel:
    """Composes subsystem probes and the fleet view for one server."""

    #: Queued+running transfers above these depths degrade / criticalise.
    transfer_queue_degraded = 64
    transfer_queue_critical = 512
    #: Non-terminal journal entries (queued/running) above these lag counts.
    journal_lag_degraded = 64
    journal_lag_critical = 512
    #: Fraction of admission decisions throttled before saturation degrades.
    admission_throttled_degraded = 0.25
    admission_throttled_critical = 0.75
    #: Aggregate cache hit-rate floor, judged only past this many lookups.
    cache_hit_floor = 0.10
    cache_min_lookups = 1024
    #: Gossiped summaries older than this are reported as stale.
    fleet_stale_after = 60.0

    def __init__(self, server: "ClarensServer") -> None:
        self.server = server
        self._lock = threading.Lock()
        #: peer server name -> last gossiped summary (never our own).
        self._fleet: dict[str, dict[str, Any]] = {}
        #: (origin server, rule name) -> last fired alert payload; local and
        #: gossiped firings alike, cleared by the matching resolved event.
        self._fleet_alerts: dict[tuple[str, str], dict[str, Any]] = {}
        self._subscriptions: list[int] = []
        self._bus: "MessageBus | None" = None
        self.summaries_published = 0

    # -- wiring ------------------------------------------------------------
    def attach(self, bus: "MessageBus") -> None:
        """Subscribe to health summaries and alert events (local + gossiped)."""

        self._bus = bus
        from repro.telemetry.alerts import ALERT_TOPIC
        self._subscriptions = [
            bus.subscribe(HEALTH_TOPIC, self._on_health),
            bus.subscribe(ALERT_TOPIC, self._on_alert),
        ]

    def close(self) -> None:
        if self._bus is not None:
            for sub_id in self._subscriptions:
                self._bus.unsubscribe(sub_id)
        self._subscriptions = []
        self._bus = None

    def _on_health(self, message: "Message") -> None:
        summary = message.payload or {}
        origin = str(summary.get("server") or message.source or "")
        own = self.server.config.server_name
        # Gossip sources may arrive as "name#pid"; compare the base name.
        if not origin or origin == own or origin.split("#", 1)[0] == own:
            return
        with self._lock:
            self._fleet[origin] = dict(summary, received=time.time())

    def _on_alert(self, message: "Message") -> None:
        payload = message.payload or {}
        key = (str(payload.get("server", "")), str(payload.get("rule", "")))
        with self._lock:
            if message.topic.endswith(".fired"):
                self._fleet_alerts[key] = dict(payload)
            elif message.topic.endswith(".resolved"):
                self._fleet_alerts.pop(key, None)

    # -- probes ------------------------------------------------------------
    def probes(self) -> list[dict[str, Any]]:
        """Evaluate every applicable subsystem probe right now."""

        results: list[dict[str, Any]] = []
        server = self.server

        replica = server.services.get("replica")
        engine = getattr(replica, "engine", None)
        if engine is not None:
            snap = engine.stats()
            depth = int(snap["queued"]) + int(snap["running"])
            results.append({
                "probe": "transfer-queue", "value": depth,
                "status": _grade(depth, self.transfer_queue_degraded,
                                 self.transfer_queue_critical),
                "detail": f"{snap['queued']} queued, "
                          f"{snap['running']} running",
            })
        journal = getattr(replica, "journal", None)
        if journal is not None:
            snap = journal.stats()
            lag = sum(count for state, count in snap["by_state"].items()
                      if state not in ("done", "failed"))
            results.append({
                "probe": "journal", "value": lag,
                "status": _grade(lag, self.journal_lag_degraded,
                                 self.journal_lag_critical),
                "detail": f"{lag} of {snap['entries']} entries in flight",
            })

        fabric = server.fabric
        if fabric is not None and fabric.registry.names():
            by_state = fabric.registry.stats()["by_state"]
            down = int(by_state.get("down", 0))
            reachable = sum(count for state, count in by_state.items()
                            if state != "down")
            if down == 0:
                status = STATUS_OK
            elif reachable > 0:
                status = STATUS_DEGRADED
            else:
                status = STATUS_CRITICAL
            results.append({
                "probe": "peers", "value": down, "status": status,
                "detail": f"{down} down / {down + reachable} registered",
            })

        controller = getattr(server.pipeline, "admission", None)
        if controller is not None:
            snap = controller.stats(top_k=0)
            decisions = int(snap["admitted"]) + int(snap["throttled"])
            fraction = (snap["throttled"] / decisions) if decisions else 0.0
            results.append({
                "probe": "admission", "value": round(fraction, 4),
                "status": _grade(fraction, self.admission_throttled_degraded,
                                 self.admission_throttled_critical),
                "detail": f"{snap['throttled']} of {decisions} throttled",
            })

        if server.config.cache_enabled:
            totals = server.caches.stats_snapshot()["totals"]
            lookups = int(totals["hits"]) + int(totals["misses"])
            hit_rate = float(totals["hit_rate"])
            status = STATUS_OK
            if lookups >= self.cache_min_lookups \
                    and hit_rate < self.cache_hit_floor:
                status = STATUS_DEGRADED
            results.append({
                "probe": "caches", "value": round(hit_rate, 4),
                "status": status,
                "detail": f"hit rate {hit_rate:.1%} over {lookups} lookups",
            })
        return results

    # -- judgements --------------------------------------------------------
    def _local_alerts(self) -> list[dict[str, Any]]:
        telemetry = self.server.telemetry
        engine = getattr(telemetry, "alerts", None)
        return engine.firing() if engine is not None else []

    def local_status(self) -> tuple[str, list[dict[str, Any]],
                                    list[dict[str, Any]]]:
        """(status, probes, firing alerts) for this node only."""

        probes = self.probes()
        alerts = self._local_alerts()
        status = _worst(*(p["status"] for p in probes)) if probes else STATUS_OK
        for alert in alerts:
            status = _worst(status,
                            STATUS_CRITICAL if alert.get("severity")
                            != "warning" else STATUS_DEGRADED)
        return status, probes, alerts

    def summary(self) -> dict[str, Any]:
        """The compact per-node record gossiped to the fleet."""

        status, probes, alerts = self.local_status()
        return {
            "server": self.server.config.server_name,
            "status": status,
            "probes": {p["probe"]: p["status"] for p in probes},
            "alerts_firing": len(alerts),
            "time": time.time(),
        }

    def publish_summary(self) -> dict[str, Any]:
        """Publish this node's summary onto the bus (gossiped fabric-wide)."""

        summary = self.summary()
        if self._bus is not None:
            self._bus.publish(f"{HEALTH_TOPIC}.summary", summary,
                              source=self.server.config.server_name)
            self.summaries_published += 1
        return summary

    def evaluate(self) -> dict[str, Any]:
        """The full ``system.health`` payload: this node plus the fleet."""

        status, probes, alerts = self.local_status()
        now = time.time()
        with self._lock:
            fleet = {name: dict(summary) for name, summary
                     in self._fleet.items()}
            fleet_alerts = [dict(payload) for payload
                            in self._fleet_alerts.values()]
        for summary in fleet.values():
            summary["stale"] = (now - float(summary.get("received", now))
                                > self.fleet_stale_after)
        return {
            "server": self.server.config.server_name,
            "status": status,
            "probes": probes,
            "alerts": {"local": alerts, "fleet": fleet_alerts},
            "fleet": fleet,
            "time": now,
        }

    # -- the unauthenticated endpoint --------------------------------------
    def handle_get(self, request: HTTPRequest, remainder: str) -> HTTPResponse:
        """``GET /healthz``: 200 while serviceable, 503 when critical.

        Degraded still answers 200 — load balancers should not evict a node
        that is merely slow — but the body says so, and a firing critical
        alert or critical probe flips the status code.
        """

        status, probes, alerts = self.local_status()
        body = json.dumps({
            "server": self.server.config.server_name,
            "status": status,
            "probes": {p["probe"]: p["status"] for p in probes},
            "alerts_firing": len(alerts),
        }, sort_keys=True).encode("utf-8")
        http_status = 503 if status == STATUS_CRITICAL else 200
        return HTTPResponse(status=http_status,
                            headers={"Content-Type": "application/json"},
                            body=body)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"fleet_members": len(self._fleet),
                    "fleet_alerts": len(self._fleet_alerts),
                    "summaries_published": self.summaries_published}
