"""Cross-server trace assembly.

PR 6 left federation-wide traces as a manual merge: call ``system.trace``
with the same trace id on every involved server, concatenate, sort.  The
:class:`TraceCollector` automates exactly that — it fans out over the
fabric's pooled :class:`~repro.fabric.channel.PeerChannel` objects in
parallel (one thread per peer, a shared deadline, no retries so a dead peer
costs one connect attempt, not three), tolerates partial results, and
assembles everything it got into one parent/child span tree.

The fan-out authenticates as whatever identity each channel carries —
typically this server's host credential — which the queried peer's
``system.trace`` accepts because registered fabric peers pass the
admin-or-peer fence.  The *assembled* tree stays admin-only
(``system.trace_tree``).
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import ClarensServer
    from repro.fabric.channel import PeerChannel

__all__ = ["TraceCollector", "assemble_tree", "fanout_peers"]

#: Ceiling on spans accepted from one server per collection, mirroring the
#: recorder ring so a confused peer cannot balloon the response.
MAX_SPANS_PER_SERVER = 4096


def fanout_peers(channels: "dict[str, PeerChannel]",
                 call: "Callable[[PeerChannel], Any]", *,
                 timeout: float) -> dict[str, tuple[bool, Any]]:
    """Run ``call(channel)`` against every peer concurrently.

    Returns ``{peer: (True, result) | (False, error string)}``.  ``timeout``
    is a shared deadline: peers that have not answered when it expires are
    reported as timed out (their worker threads are daemons and are simply
    abandoned — PeerChannel pools tolerate that).
    """

    results: dict[str, tuple[bool, Any]] = {}
    lock = threading.Lock()

    def work(name: str, channel: "PeerChannel") -> None:
        try:
            value = call(channel)
        except Exception as exc:  # noqa: BLE001 - partial results by design
            outcome = (False, f"{type(exc).__name__}: {exc}")
        else:
            outcome = (True, value)
        with lock:
            results[name] = outcome

    threads = []
    for name, channel in channels.items():
        thread = threading.Thread(target=work, args=(name, channel),
                                  name=f"telemetry-fanout-{name}", daemon=True)
        thread.start()
        threads.append(thread)
    deadline = time.monotonic() + max(0.0, timeout)
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    with lock:
        out = dict(results)
    for name in channels:
        if name not in out:
            out[name] = (False, f"timed out after {timeout:.1f}s")
    return out


def assemble_tree(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Merge span records into a forest of parent/child nodes.

    Spans are keyed by ``span_id`` (unique within a trace; duplicates from
    overlapping collections are dropped), children are attached under their
    ``parent_id`` and everything is ordered by start time.  A span whose
    parent was not retained anywhere — evicted from a ring, or recorded on
    an unreachable server — becomes a root flagged ``missing_parent`` so a
    partial tree is visibly partial rather than silently re-rooted.
    """

    nodes: dict[str, dict[str, Any]] = {}
    ordered: list[dict[str, Any]] = []
    for record in sorted(records, key=lambda r: float(r.get("started") or 0.0)):
        span_id = str(record.get("span_id") or "")
        if span_id and span_id in nodes:
            continue
        node = dict(record)
        node["children"] = []
        if span_id:
            nodes[span_id] = node
        ordered.append(node)
    roots: list[dict[str, Any]] = []
    for node in ordered:
        parent = nodes.get(str(node.get("parent_id") or ""))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            node["missing_parent"] = bool(node.get("parent_id"))
            roots.append(node)
    return roots


class TraceCollector:
    """Gathers one trace's spans from the whole fabric and builds the tree."""

    def __init__(self, server: "ClarensServer", *,
                 timeout: float = 5.0) -> None:
        self.server = server
        self.timeout = float(timeout)
        self.collections = 0
        self.peer_errors = 0

    def collect(self, trace_id: str, *,
                timeout: float | None = None) -> dict[str, Any]:
        """Fan out, merge, and assemble the span tree for ``trace_id``.

        Unreachable peers make the result *partial*, never an error: the
        ``unreachable`` map says who is missing and why, and ``partial``
        flags the tree as potentially incomplete.
        """

        trace_id = str(trace_id)
        telemetry = self.server.telemetry
        if telemetry is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("telemetry is not enabled on this server")
        budget = self.timeout if timeout is None else float(timeout)
        own_name = self.server.config.server_name
        spans = [dict(record, server=record.get("server") or own_name)
                 for record in telemetry.trace_records(trace_id=trace_id)]
        servers = {own_name}
        unreachable: dict[str, str] = {}

        fabric = self.server.fabric
        channels = dict(fabric.channels) if fabric is not None else {}
        if channels:
            outcomes = fanout_peers(
                channels,
                lambda channel: channel.call("system.trace", trace_id,
                                             retry=False),
                timeout=budget)
            seen = {(s.get("server"), s.get("span_id")) for s in spans}
            for name, (ok, value) in sorted(outcomes.items()):
                if not ok:
                    unreachable[name] = str(value)
                    self.peer_errors += 1
                    continue
                peer_name = str((value or {}).get("server") or name)
                servers.add(peer_name)
                for record in list((value or {}).get("spans")
                                   or [])[:MAX_SPANS_PER_SERVER]:
                    record = dict(record,
                                  server=record.get("server") or peer_name)
                    key = (record.get("server"), record.get("span_id"))
                    if key in seen:
                        continue
                    seen.add(key)
                    spans.append(record)
        self.collections += 1
        spans.sort(key=lambda s: float(s.get("started") or 0.0))
        return {
            "trace_id": trace_id,
            "span_count": len(spans),
            "spans": spans,
            "tree": assemble_tree(spans),
            "servers": sorted(servers),
            "unreachable": unreachable,
            "partial": bool(unreachable),
        }

    def stats(self) -> dict[str, Any]:
        return {"collections": self.collections,
                "peer_errors": self.peer_errors,
                "timeout": self.timeout}
