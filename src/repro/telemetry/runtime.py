"""Per-server telemetry assembly.

:class:`ServerTelemetry` owns the per-node pieces — span recorder, metrics
registry, slow-request log, event bridge — plus the fabric-wide
observability plane: the cross-server :class:`~repro.telemetry.collector
.TraceCollector`, the :class:`~repro.telemetry.federation
.MetricsFederation` scrape, the :class:`~repro.telemetry.health
.HealthModel` and the :class:`~repro.telemetry.alerts.AlertEngine`.  It
presents the few entry points the rest of the codebase calls:

* the pipeline reports every finished request through :meth:`on_request`;
* the HTTP front door reports traced non-RPC requests (ranged LFN GETs,
  file downloads) through :meth:`record_http`;
* the server mounts :meth:`handle_metrics_get` at ``GET /metrics``,
  :meth:`handle_federation_get` at ``GET /metrics/federation`` and
  :meth:`handle_healthz_get` at ``GET /healthz``.

Constructed only when ``telemetry_enabled`` is set; with the knob off the
server carries ``telemetry = None`` and every call site stays on the
paper-mode path.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.httpd.message import HTTPRequest, HTTPResponse
from repro.telemetry.alerts import AlertEngine, AlertRule
from repro.telemetry.bridge import EventBridge, register_server_collectors
from repro.telemetry.collector import TraceCollector
from repro.telemetry.federation import (EXPOSITION_CONTENT_TYPE,
                                        MetricsFederation)
from repro.telemetry.health import HealthModel
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slowlog import SlowRequestLog
from repro.telemetry.trace import TRACE_HEADER, Span, SpanRecorder, TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ServerConfig
    from repro.core.server import ClarensServer

__all__ = ["ServerTelemetry", "EXPOSITION_CONTENT_TYPE"]


class ServerTelemetry:
    """Tracing + metrics + slow log + fleet observability for one server."""

    def __init__(self, config: "ServerConfig") -> None:
        self.server_name = config.server_name
        self.recorder = SpanRecorder(capacity=config.telemetry_trace_buffer)
        self.registry = MetricsRegistry(shards=config.dispatch_stats_shards)
        self.slow_log = SlowRequestLog(config.telemetry_slow_ms,
                                       capacity=config.telemetry_slow_log_size)
        self.bridge: EventBridge | None = None
        # The fleet-facing pieces need the assembled server (fabric channels,
        # message bus, stats surfaces) and are built in :meth:`attach`.
        self.collector: TraceCollector | None = None
        self.federation: MetricsFederation | None = None
        self.health: HealthModel | None = None
        self.alerts: AlertEngine | None = None
        self._config = config
        self._bus = None
        self._beat_stop = threading.Event()
        self._beat_thread: threading.Thread | None = None
        # The two hot-path instruments written per request; everything else
        # is sampled at scrape time by the collectors.
        self._requests = self.registry.counter(
            "clarens_requests_total", "RPC requests served, by outcome.",
            labels=("status",))
        self._latency = self.registry.histogram(
            "clarens_request_seconds", "End-to-end RPC latency.")

    # -- wiring ------------------------------------------------------------
    def attach(self, server: "ClarensServer") -> None:
        """Subscribe the event bridge, export stats, build the fleet plane."""

        config = self._config
        self._bus = server.message_bus
        self.bridge = EventBridge(server.message_bus, self.registry)
        register_server_collectors(server, self.registry)
        self.collector = TraceCollector(
            server, timeout=config.telemetry_peer_timeout)
        self.federation = MetricsFederation(
            server, ttl=config.telemetry_federation_ttl,
            timeout=config.telemetry_peer_timeout)
        self.alerts = AlertEngine(
            self.registry, server.message_bus, source=self.server_name,
            rules=[AlertRule.parse(spec)
                   for spec in config.telemetry_alert_rules])
        self.health = HealthModel(server)
        self.health.attach(server.message_bus)
        if config.telemetry_alert_interval > 0:
            self._beat_thread = threading.Thread(
                target=self._beat_loop, name="telemetry-beat", daemon=True)
            self._beat_thread.start()

    def _beat_loop(self) -> None:
        """Evaluate alert rules and gossip the health summary periodically."""

        interval = self._config.telemetry_alert_interval
        while not self._beat_stop.wait(timeout=interval):
            try:
                self.beat()
            except Exception:  # pragma: no cover - telemetry must never kill
                pass

    def beat(self) -> None:
        """One observability beat: alert evaluation + health summary gossip.

        The background loop calls this every ``telemetry_alert_interval``
        seconds; tests and deployments with the loop disabled call it
        directly.
        """

        if self.alerts is not None:
            self.alerts.evaluate()
        if self.health is not None:
            self.health.publish_summary()

    def close(self) -> None:
        self._beat_stop.set()
        if self._beat_thread is not None:
            self._beat_thread.join(timeout=5.0)
            self._beat_thread = None
        if self.health is not None:
            self.health.close()
            self.health = None
        if self.bridge is not None:
            self.bridge.close()
            self.bridge = None

    # -- request accounting ------------------------------------------------
    def on_request(self, span: Span) -> None:
        """Account one finished pipeline request (RPC or multicall entry)."""

        self.recorder.record(span)
        self._requests.inc(status=span.status)
        self._latency.observe(span.duration_s)
        if self.slow_log.observe(span) and self._bus is not None:
            # One bus event per slow request: countable by alert rules via
            # clarens_bus_events_total and carrying the trace id, so a slow
            # request links straight into system.trace_tree.
            self._bus.publish("telemetry.slow_request", {
                "server": self.server_name, "method": span.method,
                "total_ms": span.duration_s * 1000.0,
                "trace_id": span.trace_id, "span_id": span.span_id,
            }, source=self.server_name)

    def record_http(self, request: HTTPRequest, status: int,
                    duration_s: float) -> None:
        """Record a span for a traced non-RPC HTTP request.

        Only requests carrying a trace header produce spans here — plain
        browser/file traffic stays out of the ring.  This is what links a
        peer's ranged ``GET file/.lfn/<name>`` reads into the trace of the
        transfer that issued them.
        """

        ctx = TraceContext.from_header(request.headers.get(TRACE_HEADER, ""))
        if ctx is None:
            return
        span = Span(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            server=self.server_name,
            method=f"{request.method} {request.url_path}",
            protocol="http",
            status="ok" if status < 400 else "fault",
            duration_s=duration_s,
        )
        self.recorder.record(span)
        self.slow_log.observe(span)

    # -- export surfaces ---------------------------------------------------
    def handle_metrics_get(self, request: HTTPRequest,
                           remainder: str) -> HTTPResponse:
        """``GET /metrics``: the Prometheus text exposition."""

        body = self.registry.render().encode("utf-8")
        return HTTPResponse.ok(body, content_type=EXPOSITION_CONTENT_TYPE)

    def handle_federation_get(self, request: HTTPRequest,
                              remainder: str) -> HTTPResponse:
        """``GET /metrics/federation``: every fabric member's series."""

        if self.federation is None:  # pragma: no cover - attach not yet run
            return HTTPResponse.error(503, "federation is not ready")
        return self.federation.handle_get(request, remainder)

    def handle_healthz_get(self, request: HTTPRequest,
                           remainder: str) -> HTTPResponse:
        """``GET /healthz``: unauthenticated liveness/health probe."""

        if self.health is None:  # pragma: no cover - attach not yet run
            return HTTPResponse.error(503, "health model is not ready")
        return self.health.handle_get(request, remainder)

    def trace_records(self, trace_id: str = "",
                      limit: int = 100) -> list[dict[str, Any]]:
        """Span records for ``system.trace`` (one trace, or the most recent)."""

        if trace_id:
            spans = self.recorder.by_trace(str(trace_id))
        else:
            spans = self.recorder.recent(limit)
        return [span.to_record() for span in spans]

    def stats(self) -> dict[str, Any]:
        out = {"spans": self.recorder.stats(),
               "slow_requests": self.slow_log.stats()}
        for name in ("collector", "federation", "health", "alerts"):
            component = getattr(self, name)
            if component is not None:
                out[name] = component.stats()
        return out
