"""Per-server telemetry assembly.

:class:`ServerTelemetry` owns the four pieces — span recorder, metrics
registry, slow-request log, event bridge — and presents the few entry
points the rest of the codebase calls:

* the pipeline reports every finished request through :meth:`on_request`;
* the HTTP front door reports traced non-RPC requests (ranged LFN GETs,
  file downloads) through :meth:`record_http`;
* the server mounts :meth:`handle_metrics_get` at ``GET /metrics``.

Constructed only when ``telemetry_enabled`` is set; with the knob off the
server carries ``telemetry = None`` and every call site stays on the
paper-mode path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.httpd.message import HTTPRequest, HTTPResponse
from repro.telemetry.bridge import EventBridge, register_server_collectors
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slowlog import SlowRequestLog
from repro.telemetry.trace import TRACE_HEADER, Span, SpanRecorder, TraceContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ServerConfig
    from repro.core.server import ClarensServer

__all__ = ["ServerTelemetry", "EXPOSITION_CONTENT_TYPE"]

#: The content type Prometheus expects from a text-format scrape target.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ServerTelemetry:
    """Tracing + metrics + slow log for one server."""

    def __init__(self, config: "ServerConfig") -> None:
        self.server_name = config.server_name
        self.recorder = SpanRecorder(capacity=config.telemetry_trace_buffer)
        self.registry = MetricsRegistry(shards=config.dispatch_stats_shards)
        self.slow_log = SlowRequestLog(config.telemetry_slow_ms,
                                       capacity=config.telemetry_slow_log_size)
        self.bridge: EventBridge | None = None
        # The two hot-path instruments written per request; everything else
        # is sampled at scrape time by the collectors.
        self._requests = self.registry.counter(
            "clarens_requests_total", "RPC requests served, by outcome.",
            labels=("status",))
        self._latency = self.registry.histogram(
            "clarens_request_seconds", "End-to-end RPC latency.")

    # -- wiring ------------------------------------------------------------
    def attach(self, server: "ClarensServer") -> None:
        """Subscribe the event bridge and export the server's stats."""

        self.bridge = EventBridge(server.message_bus, self.registry)
        register_server_collectors(server, self.registry)

    def close(self) -> None:
        if self.bridge is not None:
            self.bridge.close()
            self.bridge = None

    # -- request accounting ------------------------------------------------
    def on_request(self, span: Span) -> None:
        """Account one finished pipeline request (RPC or multicall entry)."""

        self.recorder.record(span)
        self._requests.inc(status=span.status)
        self._latency.observe(span.duration_s)
        self.slow_log.observe(span)

    def record_http(self, request: HTTPRequest, status: int,
                    duration_s: float) -> None:
        """Record a span for a traced non-RPC HTTP request.

        Only requests carrying a trace header produce spans here — plain
        browser/file traffic stays out of the ring.  This is what links a
        peer's ranged ``GET file/.lfn/<name>`` reads into the trace of the
        transfer that issued them.
        """

        ctx = TraceContext.from_header(request.headers.get(TRACE_HEADER, ""))
        if ctx is None:
            return
        span = Span(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            server=self.server_name,
            method=f"{request.method} {request.url_path}",
            protocol="http",
            status="ok" if status < 400 else "fault",
            duration_s=duration_s,
        )
        self.recorder.record(span)
        self.slow_log.observe(span)

    # -- export surfaces ---------------------------------------------------
    def handle_metrics_get(self, request: HTTPRequest,
                           remainder: str) -> HTTPResponse:
        """``GET /metrics``: the Prometheus text exposition."""

        body = self.registry.render().encode("utf-8")
        return HTTPResponse.ok(body, content_type=EXPOSITION_CONTENT_TYPE)

    def trace_records(self, trace_id: str = "",
                      limit: int = 100) -> list[dict[str, Any]]:
        """Span records for ``system.trace`` (one trace, or the most recent)."""

        if trace_id:
            spans = self.recorder.by_trace(str(trace_id))
        else:
            spans = self.recorder.recent(limit)
        return [span.to_record() for span in spans]

    def stats(self) -> dict[str, Any]:
        return {"spans": self.recorder.stats(),
                "slow_requests": self.slow_log.stats()}
