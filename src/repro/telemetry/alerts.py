"""Declarative threshold alerting over the metrics registry.

An :class:`AlertRule` is one line of operator intent, parsed from the
``telemetry_alert_rules`` config knob::

    peers-down: gauge(clarens_fabric_peers{state=down}) > 0 for 2s
    fault-storm: counter_rate(clarens_requests_total{status=fault}) > 5 for 10s severity=warning

The grammar is ``name: kind(metric{label=value,...}) op threshold
[for Ns] [severity=warning|critical]`` where ``kind`` selects how the
matching series are read:

* ``gauge`` / ``counter`` — the instantaneous sum of every series of
  ``metric`` whose labels include the given pairs;
* ``counter_rate`` — the per-second increase of that sum between two
  consecutive evaluations (the first evaluation never fires: there is no
  window yet).

The :class:`AlertEngine` evaluates every rule against one
``MetricsRegistry.collect()`` snapshot per beat and runs a small state
machine per rule: *ok* → *pending* (condition holds, duration not yet met)
→ *firing*.  Transitions — and only transitions — publish
``telemetry.alert.fired`` / ``telemetry.alert.resolved`` bus events, which
is the deduplication the fabric relies on: the origin server publishes each
firing exactly once, the gossip bus forwards it to every peer exactly once,
and receivers record it without republishing.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.telemetry.trace import current_trace

__all__ = ["ALERT_TOPIC", "AlertRule", "AlertEngine", "AlertRuleError"]

#: Topic prefix of every alert event; gossiped fabric-wide on telemetry-
#: enabled deployments (see FabricService) so one firing is fleet knowledge.
ALERT_TOPIC = "telemetry.alert"

_RULE_RE = re.compile(
    r"""^\s*(?P<name>[A-Za-z0-9][A-Za-z0-9_.-]*)\s*:\s*
        (?P<kind>counter_rate|counter|gauge)\s*\(\s*
        (?P<metric>[a-zA-Z_:][a-zA-Z0-9_:]*)\s*
        (?:\{(?P<labels>[^}]*)\})?\s*\)\s*
        (?P<op>>=|<=|>|<)\s*
        (?P<threshold>-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)\s*
        (?:for\s+(?P<duration>[0-9]+(?:\.[0-9]+)?)\s*s?)?\s*
        (?:severity\s*=\s*(?P<severity>warning|critical))?\s*$""",
    re.VERBOSE)

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


class AlertRuleError(ValueError):
    """Raised when an alert-rule specification does not parse."""


@dataclass(frozen=True)
class AlertRule:
    """One parsed threshold rule."""

    name: str
    kind: str                      # "gauge" | "counter" | "counter_rate"
    metric: str
    labels: dict[str, str] = field(default_factory=dict)
    op: str = ">"
    threshold: float = 0.0
    for_seconds: float = 0.0
    severity: str = "critical"

    @classmethod
    def parse(cls, spec: str) -> "AlertRule":
        match = _RULE_RE.match(str(spec))
        if match is None:
            raise AlertRuleError(
                f"alert rule {spec!r} is not of the form "
                f"'name: kind(metric{{label=value}}) > N for Ds'")
        labels: dict[str, str] = {}
        for pair in (match.group("labels") or "").split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise AlertRuleError(
                    f"alert rule {spec!r}: bad label filter {pair!r}")
            labels[key.strip()] = value.strip().strip('"')
        return cls(name=match.group("name"), kind=match.group("kind"),
                   metric=match.group("metric"), labels=labels,
                   op=match.group("op"),
                   threshold=float(match.group("threshold")),
                   for_seconds=float(match.group("duration") or 0.0),
                   severity=match.group("severity") or "critical")

    def value_from(self, snapshot: dict[str, Any]) -> float:
        """Sum of every matching series in one ``collect()`` snapshot.

        Histogram families expose ``sum``/``count`` rather than ``value``;
        rules target their ``count`` (observations) — the natural thing to
        rate.  A missing metric reads as 0.0, so a rule on a family that
        only appears under load never fires spuriously at startup.
        """

        family = snapshot.get(self.metric)
        if not family:
            return 0.0
        total = 0.0
        for series in family.get("series", ()):
            series_labels = series.get("labels") or {}
            if any(series_labels.get(k) != v for k, v in self.labels.items()):
                continue
            if "value" in series:
                total += float(series["value"])
            elif "count" in series:
                total += float(series["count"])
        return total

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def to_record(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "metric": self.metric,
                "labels": dict(self.labels), "op": self.op,
                "threshold": self.threshold,
                "for_seconds": self.for_seconds, "severity": self.severity}


class _RuleState:
    __slots__ = ("since", "firing", "value", "fired", "last_sample")

    def __init__(self) -> None:
        self.since: float | None = None       # when the breach started
        self.firing = False
        self.value = 0.0
        self.fired = 0
        self.last_sample: tuple[float, float] | None = None  # counter_rate


class AlertEngine:
    """Evaluates alert rules and publishes deduplicated transitions."""

    def __init__(self, registry, bus, *, source: str = "",
                 rules: "list[AlertRule] | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.registry = registry
        self.bus = bus
        self.source = source
        self.rules: list[AlertRule] = list(rules or [])
        self._clock = clock
        self._lock = threading.Lock()
        self._states = {rule.name: _RuleState() for rule in self.rules}
        self.evaluations = 0
        self.fired_total = 0
        self.resolved_total = 0

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """Run every rule once; returns the transitions this pass produced."""

        if now is None:
            now = self._clock()
        snapshot = self.registry.collect()
        transitions: list[tuple[str, AlertRule, float]] = []
        with self._lock:
            self.evaluations += 1
            for rule in self.rules:
                state = self._states[rule.name]
                value = rule.value_from(snapshot)
                if rule.kind == "counter_rate":
                    previous = state.last_sample
                    state.last_sample = (now, value)
                    if previous is None or now <= previous[0]:
                        state.value = 0.0
                        continue
                    value = (value - previous[1]) / (now - previous[0])
                state.value = value
                if rule.breached(value):
                    if state.since is None:
                        state.since = now
                    if (not state.firing
                            and now - state.since >= rule.for_seconds):
                        state.firing = True
                        state.fired += 1
                        self.fired_total += 1
                        transitions.append(("fired", rule, value))
                else:
                    state.since = None
                    if state.firing:
                        state.firing = False
                        self.resolved_total += 1
                        transitions.append(("resolved", rule, value))
        # Publish outside the lock: bus callbacks run synchronously and may
        # themselves inspect the engine (the health model does).
        events = []
        for event, rule, value in transitions:
            payload: dict[str, Any] = {
                "rule": rule.name, "metric": rule.metric,
                "value": value, "threshold": rule.threshold,
                "op": rule.op, "severity": rule.severity,
                "server": self.source, "time": time.time(),
            }
            trace = current_trace()
            if trace is not None:
                # A rule evaluated inside a traced request (a forced
                # system.health beat, an admin poke) links the firing back
                # into system.trace_tree.
                payload["trace_id"] = trace.trace_id
            self.bus.publish(f"{ALERT_TOPIC}.{event}", payload,
                             source=self.source)
            events.append(dict(payload, event=event))
        return events

    def firing(self) -> list[dict[str, Any]]:
        """The locally-firing alerts, as records."""

        with self._lock:
            return [dict(rule.to_record(), value=state.value,
                         server=self.source)
                    for rule in self.rules
                    for state in (self._states[rule.name],)
                    if state.firing]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "rules": len(self.rules),
                "evaluations": self.evaluations,
                "fired": self.fired_total,
                "resolved": self.resolved_total,
                "firing": sum(1 for s in self._states.values() if s.firing),
            }
