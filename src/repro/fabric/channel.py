"""Pooled, authenticated RPC sessions to one fabric peer.

Before this module every cross-server component owned a bare
:class:`~repro.client.client.ClarensClient` and re-implemented (or skipped)
failure handling.  A :class:`PeerChannel` centralises that plumbing:

* **pooling** — concurrent callers each check a client session out of a
  small pool instead of serialising on one connection (the transfer engine's
  worker threads all read through the same peer);
* **reconnect with backoff** — a transport failure discards the broken
  session and retries on a freshly built one (the ``factory`` re-dials and
  re-authenticates), with exponential backoff between attempts;
* **fault transparency** — remote *faults* are semantic answers, not
  transport problems: they propagate immediately and are never retried;
* **health reporting** — successes and exhausted retries feed the
  :class:`~repro.fabric.registry.PeerRegistry`, which publishes
  ``fabric.peer.up``/``fabric.peer.down`` transitions.

Non-idempotent calls (chunked ``file.write`` appends, for example) must pass
``retry=False``: the channel then surfaces the first transport failure to the
caller, whose own recovery (the transfer engine re-runs the whole copy)
provides exactly-once semantics the channel cannot.

Distributed tracing needs no plumbing here: pooled clients rebuild their
headers per request, so whatever ambient trace context is active on the
*calling* thread (see :mod:`repro.telemetry.trace`) rides every pooled
session's ``X-Clarens-Trace`` header automatically.  The channel only adds
accounting — cumulative :attr:`call_seconds` per peer, exported as the
``clarens_fabric_channel_seconds_total`` metric.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.client.errors import ClientError
from repro.core.faults import FAULTS
from repro.protocols.errors import Fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.client.client import ClarensClient
    from repro.fabric.registry import PeerRegistry
    from repro.httpd.message import HTTPResponse

__all__ = ["PeerChannel", "PeerChannelError"]


class PeerChannelError(ClientError):
    """Transport to the peer failed (after the channel's retries, if any)."""


class PeerChannel:
    """A pool of authenticated client sessions to one peer, with retry."""

    def __init__(self, name: str, factory: "Callable[[], ClarensClient]", *,
                 registry: "PeerRegistry | None" = None,
                 max_attempts: int = 3, backoff: float = 0.05,
                 pool_size: int = 2, owns_clients: bool = True,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not name:
            raise ValueError("peer channel name must be non-empty")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if backoff < 0:
            raise ValueError("backoff cannot be negative")
        self.name = name
        self.factory = factory
        self.registry = registry
        self.max_attempts = int(max_attempts)
        self.backoff = float(backoff)
        self.pool_size = max(1, int(pool_size))
        self.owns_clients = owns_clients
        self._sleep = sleep
        self._lock = threading.Lock()
        self._pool: list["ClarensClient"] = []
        self._dn = ""
        self.calls = 0
        self.faults = 0
        self.transport_errors = 0
        self.reconnects = 0
        #: Cumulative wall-clock seconds spent in peer operations (including
        #: retries and faults) — the per-peer latency series for telemetry.
        self.call_seconds = 0.0
        self._closed = False

    @classmethod
    def for_client(cls, client: "ClarensClient", *, name: str = "peer",
                   **kwargs: Any) -> "PeerChannel":
        """Wrap one existing (already authenticated) client session.

        The channel does not own the client: transport failures are retried
        on the *same* session (its transport may recover on re-dial) and
        :meth:`close` leaves it open for the caller.
        """

        kwargs.setdefault("owns_clients", False)
        kwargs.setdefault("pool_size", 1)
        channel = cls(name, lambda: client, **kwargs)
        return channel

    # -- session pool --------------------------------------------------------
    def _acquire(self) -> "ClarensClient":
        with self._lock:
            if self._pool:
                return self._pool.pop()
        client = self.factory()
        with self._lock:
            self.reconnects += 1
            self._dn = getattr(client, "dn", None) or self._dn
        return client

    def _release(self, client: "ClarensClient") -> None:
        with self._lock:
            if not self._closed and len(self._pool) < self.pool_size:
                self._pool.append(client)
                return
        self._dispose(client)

    def _discard(self, client: "ClarensClient") -> None:
        """Drop a session whose transport just failed."""

        if self.owns_clients:
            self._dispose(client)
        else:
            # A borrowed client cannot be rebuilt; keep it for the retry.
            self._release(client)

    def _dispose(self, client: "ClarensClient") -> None:
        if not self.owns_clients:
            return
        try:
            client.close()
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass

    # -- health plumbing -----------------------------------------------------
    def _note_success(self) -> None:
        if self.registry is not None:
            self.registry.mark_up(self.name)

    def _note_down(self, error: str) -> None:
        if self.registry is not None:
            self.registry.mark_down(self.name, error)

    # -- the RPC surface -----------------------------------------------------
    def call(self, method: str, *params: Any, retry: bool = True) -> Any:
        """Invoke ``method`` on the peer; reconnect/backoff on transport loss.

        Remote faults raise :class:`~repro.protocols.errors.Fault`
        immediately (the peer answered — retrying cannot change its mind);
        transport failures raise :class:`PeerChannelError` once the retry
        budget (1 with ``retry=False``) is exhausted.
        """

        return self._attempt(lambda client: client.call(method, *params),
                             what=method, retry=retry, count_call=True)

    def http_get(self, path: str, *, query: str = "",
                 retry: bool = True) -> "HTTPResponse":
        """Raw GET against the peer's file endpoint (ranged reads etc.)."""

        return self._attempt(lambda client: client.http_get(path, query=query),
                             what=f"GET {path}", retry=retry, count_call=False)

    def probe(self) -> bool:
        """Liveness check (``system.ping``); never raises."""

        try:
            return self.call("system.ping") == "pong"
        except (Fault, ClientError):
            return False

    def _attempt(self, operation, *, what: str, retry: bool,
                 count_call: bool) -> Any:
        started = time.perf_counter()
        try:
            return self._attempt_inner(operation, what=what, retry=retry,
                                       count_call=count_call)
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self.call_seconds += elapsed

    def _attempt_inner(self, operation, *, what: str, retry: bool,
                       count_call: bool) -> Any:
        attempts = self.max_attempts if retry else 1
        last: BaseException | None = None
        for attempt in range(attempts):
            if attempt and self.backoff:
                self._sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                client = self._acquire()
            except Exception as exc:  # noqa: BLE001 - factory = dialing the peer
                with self._lock:
                    self.transport_errors += 1
                last = exc
                continue
            try:
                FAULTS.fire("fabric.channel.call", peer=self.name, what=what,
                            attempt=attempt)
                result = operation(client)
            except Fault:
                # The peer answered: the session is healthy, the call is not.
                self._release(client)
                with self._lock:
                    self.faults += 1
                self._note_success()
                raise
            except Exception as exc:  # noqa: BLE001 - transport-shaped
                # Exception, not BaseException: KeyboardInterrupt/SystemExit
                # must propagate, not burn retries and mark the peer down.
                self._discard(client)
                with self._lock:
                    self.transport_errors += 1
                last = exc
                continue
            self._release(client)
            if count_call:
                with self._lock:
                    self.calls += 1
            self._note_success()
            return result
        error = f"{self.name}: {what} failed after {attempts} attempt(s): {last}"
        self._note_down(str(last))
        raise PeerChannelError(error) from last

    # -- introspection / lifecycle -------------------------------------------
    @property
    def dn(self) -> str:
        """The DN the pooled sessions authenticate with (best known)."""

        with self._lock:
            if self._dn:
                return self._dn
            for client in self._pool:
                found = getattr(client, "dn", None)
                if found:
                    self._dn = found
                    return found
        return ""

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "peer": self.name,
                "calls": self.calls,
                "faults": self.faults,
                "transport_errors": self.transport_errors,
                "reconnects": self.reconnects,
                "call_seconds": self.call_seconds,
                "pooled_sessions": len(self._pool),
            }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for client in pool:
            self._dispose(client)
