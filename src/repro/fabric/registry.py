"""Peer identity and health: the roster of a Clarens fabric.

The paper's deployment story is N Clarens servers cooperating as one grid;
before :mod:`repro.fabric` every cross-server feature kept its own ad-hoc
notion of "the other server" (a private client here, a shared in-process bus
there).  The :class:`PeerRegistry` makes *peer* a first-class object: one
:class:`PeerInfo` row per remote server, holding its name (which doubles as
the storage-element name the replica layer uses for it), its endpoint URL,
the DN its channel authenticates with (the identity ``fabric.publish`` and
the catalogue-sync RPCs trust), and a live health state maintained by the
:class:`~repro.fabric.channel.PeerChannel` that talks to it.

Health transitions publish ``fabric.peer.up`` / ``fabric.peer.down`` events
on the monitoring bus — exactly once per transition, so operators can alert
on them without debouncing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.bus import MessageBus

__all__ = ["PeerInfo", "PeerRegistry", "PEER_STATE_UNKNOWN", "PEER_STATE_UP",
           "PEER_STATE_DOWN"]

PEER_STATE_UNKNOWN = "unknown"
PEER_STATE_UP = "up"
PEER_STATE_DOWN = "down"


@dataclass
class PeerInfo:
    """One remote Clarens server in the fabric."""

    name: str
    url: str = ""
    #: The DN the peer's channel logs in with; ``fabric.publish`` and the
    #: catalogue-sync RPCs accept calls from registered peer DNs (or admins).
    dn: str = ""
    state: str = PEER_STATE_UNKNOWN
    failures: int = 0
    successes: int = 0
    last_seen: float = 0.0
    last_error: str = ""
    added: float = field(default_factory=time.time)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "url": self.url,
            "dn": self.dn,
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "last_seen": self.last_seen,
            "last_error": self.last_error,
            "added": self.added,
        }


class PeerRegistry:
    """The named peers of one server, with health tracked per peer."""

    def __init__(self, *, bus: "MessageBus | None" = None, source: str = "") -> None:
        self.bus = bus
        self.source = source
        self._lock = threading.Lock()
        self._peers: dict[str, PeerInfo] = {}
        #: Cached, immutable trusted-DN set.  ``trusted_dns`` sits on the
        #: request hot path (the admission exemption checks it per request),
        #: so it must not take the lock or allocate; the cache is rebuilt on
        #: membership changes only.
        self._trusted: frozenset[str] = frozenset()

    # -- membership ----------------------------------------------------------
    def add(self, name: str, *, url: str = "", dn: str = "") -> PeerInfo:
        if not name:
            raise ValueError("peer name must be non-empty")
        if name == self.source:
            raise ValueError(f"a server cannot peer with itself ({name!r})")
        with self._lock:
            if name in self._peers:
                raise ValueError(f"peer {name!r} is already registered")
            peer = self._peers[name] = PeerInfo(name=name, url=url, dn=dn)
            self._rebuild_trusted()
        return peer

    def remove(self, name: str) -> bool:
        with self._lock:
            removed = self._peers.pop(name, None) is not None
            if removed:
                self._rebuild_trusted()
            return removed

    def _rebuild_trusted(self) -> None:
        """Refresh the cached DN set (lock held)."""

        self._trusted = frozenset(p.dn for p in self._peers.values() if p.dn)

    def get(self, name: str) -> PeerInfo | None:
        with self._lock:
            return self._peers.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._peers)

    def peers(self) -> list[PeerInfo]:
        with self._lock:
            return [self._peers[name] for name in sorted(self._peers)]

    def trusted_dns(self) -> frozenset[str]:
        """The DNs registered peers authenticate with (empty DNs excluded).

        Lock-free and allocation-free: returns the cached immutable set, so
        per-request callers (the admission exemption) pay one attribute read.
        """

        return self._trusted

    def __len__(self) -> int:
        with self._lock:
            return len(self._peers)

    # -- health --------------------------------------------------------------
    def mark_up(self, name: str) -> None:
        self._transition(name, PEER_STATE_UP, "")

    def mark_down(self, name: str, error: str = "") -> None:
        self._transition(name, PEER_STATE_DOWN, error)

    def _transition(self, name: str, state: str, error: str) -> None:
        with self._lock:
            peer = self._peers.get(name)
            if peer is None:
                return
            changed = peer.state != state
            peer.state = state
            if state == PEER_STATE_UP:
                peer.successes += 1
                peer.last_seen = time.time()
                peer.last_error = ""
            else:
                peer.failures += 1
                peer.last_error = error
        # Publish outside the lock: bus subscribers may re-enter the registry.
        if changed and self.bus is not None:
            try:
                self.bus.publish(f"fabric.peer.{state}", {
                    "peer": name,
                    "error": error,
                }, source=self.source)
            except Exception:  # noqa: BLE001 - monitoring must never kill us
                pass

    # -- introspection -------------------------------------------------------
    def describe(self) -> list[dict[str, Any]]:
        return [peer.describe() for peer in self.peers()]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {}
            for peer in self._peers.values():
                states[peer.state] = states.get(peer.state, 0) + 1
            return {"peers": len(self._peers), "by_state": states}
