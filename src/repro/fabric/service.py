"""The ``fabric`` service: one authenticated peering substrate.

:class:`FabricService` assembles the fabric primitives for one server — the
:class:`~repro.fabric.registry.PeerRegistry`, one
:class:`~repro.fabric.channel.PeerChannel` per peer, the
:class:`~repro.fabric.gossip.GossipBus`, the
:class:`~repro.fabric.sync.CatalogueSync` anti-entropy loop and the
:class:`~repro.fabric.admission.FabricAdmission` extension — and publishes
the ``fabric.*`` RPC surface peers talk to:

* ``fabric.peers`` / ``fabric.status`` — introspection (authenticated);
* ``fabric.publish`` — a peer delivers a gossip batch (peer/admin only);
* ``fabric.catalogue_digest`` / ``fabric.catalogue_entries`` — the
  anti-entropy exchange (peer/admin only).

The peer-only fence accepts a caller whose DN is either a server admin or a
DN some registered peer authenticates with (``PeerRegistry.trusted_dns``),
*in addition to* the standard session + method-ACL checks every RPC pays —
a regular authenticated user cannot inject gossip or walk the catalogue
wholesale.

Adding a peer (programmatically via :meth:`FabricService.add_peer`, or from
the ``fabric_peers`` config list at startup) does three things: registers it,
wires its channel into gossip + catalogue sync, and attaches a
:class:`~repro.replica.storage.RemoteStorageElement` named after the peer to
the replica service — which is why a catalogue entry imported by sync (whose
replicas the serving peer exported under its own server name) is immediately
readable through the local broker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.cache.distributed import INVALIDATION_TOPIC
from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, ClarensError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.fabric.admission import SHED_TOPIC, FabricAdmission
from repro.fabric.channel import PeerChannel
from repro.fabric.gossip import GossipBus
from repro.fabric.registry import PeerInfo, PeerRegistry
from repro.fabric.sync import MAX_ENTRIES_PER_CALL, CatalogueSync
from repro.replica.model import ReplicaNotFoundError
from repro.replica.storage import RemoteStorageElement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.client.client import ClarensClient

__all__ = ["FabricService"]


class FabricService(ClarensService):
    """Peer registry, gossip, catalogue sync and fabric RPCs for one server."""

    service_name = "fabric"

    def __init__(self, server) -> None:
        super().__init__(server)
        config = server.config
        bus = server.message_bus
        self.registry = PeerRegistry(bus=bus, source=config.server_name)
        self.channels: dict[str, PeerChannel] = {}
        self.gossip = GossipBus(bus, source=config.server_name,
                                interval=config.fabric_gossip_interval,
                                registry=self.registry)
        # The standard gossiped topics: cache invalidations cross real server
        # boundaries, and shed adverts make admission fabric-wide.  Deployments
        # may add more via server.fabric.gossip.add_topic(...).
        self.gossip.add_topic(INVALIDATION_TOPIC)
        self.gossip.add_topic(SHED_TOPIC)
        if server.telemetry is not None:
            # The observability plane rides the same substrate: alert
            # firings/resolutions and node-health summaries gossip to every
            # peer, giving each node the fleet view without extra RPCs.
            from repro.telemetry.alerts import ALERT_TOPIC
            from repro.telemetry.health import HEALTH_TOPIC
            self.gossip.add_topic(ALERT_TOPIC)
            self.gossip.add_topic(HEALTH_TOPIC)
        replica = server.services.get("replica")
        self.sync = None
        if replica is not None:
            self.sync = CatalogueSync(replica.catalogue,
                                      local_se=config.replica_local_se,
                                      source=config.server_name, bus=bus,
                                      interval=config.fabric_catalogue_sync)
        controller = getattr(server.pipeline, "admission", None)
        self.fabric_admission = None
        if controller is not None:
            self.fabric_admission = FabricAdmission(
                controller, bus, source=config.server_name,
                share=config.fabric_admission_share)
            # Fabric traffic is infrastructure: its volume is set by the
            # gossip/sync intervals, not by a client's behaviour, and a
            # throttled channel would mark a healthy peer down.  Registered
            # peer DNs therefore bypass the local admission limits.
            controller.add_exemption(
                lambda identity: identity in self.registry.trusted_dns())
        server.fabric = self

    # -- lifecycle -----------------------------------------------------------
    def on_start(self) -> None:
        for spec in self.server.config.fabric_peers:
            # ``name=url|dn`` — the DN rides behind ``|`` because DNs are
            # full of ``=``; it is the identity the peer calls us with, and
            # without it the peer fence only admits that peer's traffic if
            # its DN is a server admin.
            name, _, rest = str(spec).partition("=")
            url, _, dn = rest.partition("|")
            name, url, dn = name.strip(), url.strip(), dn.strip()
            if name and name not in self.channels:
                self.add_peer(name, url=url, dn=dn)
        self.gossip.start()
        if self.sync is not None:
            self.sync.start()

    def on_stop(self) -> None:
        if self.sync is not None:
            self.sync.stop()
        self.gossip.stop()
        if self.fabric_admission is not None:
            self.fabric_admission.close()
        for channel in self.channels.values():
            channel.close()
        self.channels.clear()

    # -- topology ------------------------------------------------------------
    def add_peer(self, name: str, *, channel: PeerChannel | None = None,
                 factory: "Callable[[], ClarensClient] | None" = None,
                 url: str = "", dn: str = "",
                 attach_storage: bool = True) -> PeerInfo:
        """Register a peer and wire it into gossip, sync and the replica map.

        Exactly one of ``channel``, ``factory`` or ``url`` provides the
        transport: an existing channel, a callable building authenticated
        clients (tests and examples pass loopback factories), or a plain
        HTTP URL (the ``fabric_peers`` config path; such channels dial
        anonymously unless a deployment swaps in a credentialed factory).

        ``dn`` is the identity the peer *calls us* with — the DN its own
        outbound channel authenticates as — which is what the peer fence on
        ``fabric.publish``/``fabric.catalogue_*`` trusts.  It is not
        derivable from our outbound channel (that is *our* credential), so
        leave it empty only when the peer will authenticate as a server
        admin instead.
        """

        if channel is None:
            if factory is None:
                if not url:
                    raise ValueError(
                        f"peer {name!r} needs a channel, factory or url")
                factory = self._url_factory(url)
            channel = PeerChannel(name, factory, registry=self.registry)
        else:
            channel.registry = channel.registry or self.registry
        peer = self.registry.add(name, url=url, dn=dn)
        self.channels[name] = channel
        self.gossip.attach(name, channel)
        if self.sync is not None:
            self.sync.attach(name, channel)
        if attach_storage:
            replica = self.server.services.get("replica")
            if replica is not None:
                element = replica.elements.get(name)
                if element is None or isinstance(element, RemoteStorageElement):
                    # First attach, or a peer removed earlier left its
                    # element behind (disabled, bound to a closed channel):
                    # (re)bind a fresh element so re-adding revives it.  A
                    # non-remote element colliding with the peer name is
                    # left alone.
                    replica.add_storage_element(
                        RemoteStorageElement(name, channel),
                        replace=element is not None)
        return peer

    def _url_factory(self, url: str) -> "Callable[[], ClarensClient]":
        from repro.client.client import ClarensClient

        prefix = self.server.config.url_prefix
        credential = self.server.credential

        def factory() -> "ClarensClient":
            # Fabric channels negotiate the binary codec: peer traffic
            # (gossip, catalogue sync, remote storage reads) upgrades when
            # the other side enables it and falls back to XML-RPC against
            # older or paper-mode peers.
            client = ClarensClient.for_url(url, url_prefix=prefix,
                                           negotiate=True)
            if credential is not None:
                # Config-driven peers authenticate with this server's host
                # credential — the natural machine identity; register its DN
                # as the trusted peer DN on the other side.  Without a
                # credential the channel dials anonymously and only
                # anonymous methods will succeed.
                client.login_with_credential(credential)
            return client

        return factory

    def remove_peer(self, name: str) -> bool:
        """Detach a peer from gossip/sync and close its channel.

        The peer's storage element (if any) is marked unavailable rather
        than deleted — in-flight transfers fail over exactly as they would
        for a dead disk, and re-adding the peer revives it.
        """

        channel = self.channels.pop(name, None)
        self.gossip.detach(name)
        if self.sync is not None:
            self.sync.detach(name)
        removed = self.registry.remove(name)
        if channel is not None:
            channel.close()
        replica = self.server.services.get("replica")
        if replica is not None:
            element = replica.elements.get(name)
            if isinstance(element, RemoteStorageElement):
                element.available = False
        return removed or channel is not None

    # -- the peer fence ------------------------------------------------------
    def _require_peer(self, ctx: CallContext) -> str:
        """The caller must be a server admin or a registered peer identity."""

        dn = ctx.require_dn()
        if self.server.vo.is_admin(dn) or dn in self.registry.trusted_dns():
            return dn
        raise AccessDeniedError(
            f"{dn} is neither a server administrator nor a registered "
            f"fabric peer")

    # -- RPC surface ---------------------------------------------------------
    @rpc_method()
    def peers(self, ctx: CallContext) -> list[dict[str, Any]]:
        """The peer roster: identity, endpoint, health, channel counters."""

        ctx.require_dn()
        described = []
        for info in self.registry.describe():
            channel = self.channels.get(info["name"])
            info["channel"] = channel.stats() if channel is not None else None
            described.append(info)
        return described

    @rpc_method()
    def status(self, ctx: CallContext) -> dict[str, Any]:
        """One snapshot of every fabric component's counters."""

        ctx.require_dn()
        return {
            "registry": self.registry.stats(),
            "gossip": self.gossip.stats(),
            "catalogue_sync": (self.sync.stats()
                               if self.sync is not None else None),
            "admission": (self.fabric_admission.stats()
                          if self.fabric_admission is not None else None),
        }

    @rpc_method()
    def publish(self, ctx: CallContext, messages: list) -> int:
        """Accept a gossip batch from a peer; returns how many were applied.

        Only topics this server gossips itself are accepted (allow-list
        enforced per message), and only peers/admins may deliver.
        """

        self._require_peer(ctx)
        if not isinstance(messages, (list, tuple)):
            raise ClarensError("fabric.publish expects an array of messages")
        return self.gossip.receive(list(messages), from_peer=ctx.dn or "")

    @rpc_method()
    def catalogue_digest(self, ctx: CallContext) -> dict[str, int]:
        """LFN → version for this server's whole catalogue (peers/admins)."""

        self._require_peer(ctx)
        replica = self._replica()
        return replica.catalogue.digest()

    @rpc_method()
    def catalogue_entries(self, ctx: CallContext,
                          lfns: list) -> list[dict[str, Any]]:
        """Exported catalogue rows for up to 512 LFNs (peers/admins).

        Rows are *fabric-normalised*: this server's local element is renamed
        to its server name (with the LFN as the pfn — that is the path a
        peer's RemoteStorageElement for us can actually read), replicas on
        known peer elements pass through untouched, and purely local
        elements (the mass store) are omitted.  Entries with nothing
        fabric-visible are omitted entirely.
        """

        self._require_peer(ctx)
        if not isinstance(lfns, (list, tuple)):
            raise ClarensError(
                "fabric.catalogue_entries expects an array of LFNs")
        replica = self._replica()
        peer_names = set(self.registry.names())   # once per RPC, not per row
        exported: list[dict[str, Any]] = []
        for lfn in list(lfns)[:MAX_ENTRIES_PER_CALL]:
            try:
                entry = replica.catalogue.entry(str(lfn))
            except ReplicaNotFoundError:
                continue
            normalised = self._export_entry(entry, peer_names)
            if normalised is not None:
                exported.append(normalised)
        return exported

    def _replica(self):
        replica = self.server.services.get("replica")
        if replica is None:
            raise NotFoundError("the replica service is not enabled here")
        return replica

    def _export_entry(self, entry: dict[str, Any],
                      peer_names: set[str]) -> dict[str, Any] | None:
        local_se = self.server.config.replica_local_se
        own_name = self.server.config.server_name
        replicas: dict[str, Any] = {}
        for se, record in entry["replicas"].items():
            if se == local_se:
                out = dict(record)
                out["storage_element"] = own_name
                out["pfn"] = entry["lfn"]
                replicas[own_name] = out
            elif se in peer_names:
                replicas[se] = dict(record)
            # Anything else (mass store, deployment-private elements) means
            # nothing to a peer and is not exported.
        if not replicas:
            return None
        return {
            "lfn": entry["lfn"],
            "version": int(entry["version"]),
            "size": int(entry["size"]),
            "checksum": entry["checksum"],
            "replicas": replicas,
        }

    @rpc_method()
    def metrics(self, ctx: CallContext) -> dict[str, Any]:
        """This server's own metrics exposition, for federation (peers/admins).

        Returns the *local* registry only — never a recursive federated
        scrape, so a cycle of peers federating each other terminates.
        Faults with NotFound when telemetry is disabled on this server.
        """

        self._require_peer(ctx)
        telemetry = self.server.telemetry
        if telemetry is None:
            raise NotFoundError("telemetry is not enabled on this server")
        return {"server": self.server.config.server_name,
                "exposition": telemetry.registry.render()}

    @rpc_method()
    def sync_now(self, ctx: CallContext) -> dict[str, Any]:
        """Run one catalogue anti-entropy round immediately (admins only)."""

        self.server.require_admin(ctx)
        if self.sync is None:
            raise NotFoundError("catalogue sync is not enabled here")
        return self.sync.sync_once()
