"""``repro.fabric`` — the authenticated peering substrate.

The source paper's deployment is N Clarens servers cooperating as one grid
fabric; this package gives the reproduction a first-class notion of *peer*
that every cross-server feature shares instead of growing private plumbing:

* :class:`~repro.fabric.registry.PeerRegistry` — peer identity, endpoint and
  health, with ``fabric.peer.up``/``fabric.peer.down`` bus events;
* :class:`~repro.fabric.channel.PeerChannel` — pooled authenticated client
  sessions with reconnect/backoff (what
  :class:`~repro.replica.storage.RemoteStorageElement` now rides);
* :class:`~repro.fabric.gossip.GossipBus` — allow-listed local MessageBus
  topics fanned out to peers over the ``fabric.publish`` RPC (cache
  invalidations and admission shed adverts cross real server boundaries);
* :class:`~repro.fabric.sync.CatalogueSync` — anti-entropy reconciliation of
  the replica catalogue via per-LFN version vectors (quarantine wins);
* :class:`~repro.fabric.admission.FabricAdmission` — per-identity shed rates
  advertised fabric-wide, so a client throttled on one server is
  pre-throttled everywhere within a gossip interval.

The RPC-facing assembly (``fabric.*`` methods, peer wiring into the replica
element map) lives in :class:`repro.fabric.service.FabricService`, imported
lazily by the server like every other service module.
"""

from repro.fabric.admission import SHED_TOPIC, FabricAdmission
from repro.fabric.channel import PeerChannel, PeerChannelError
from repro.fabric.gossip import GOSSIP_RPC, GossipBus
from repro.fabric.registry import (PEER_STATE_DOWN, PEER_STATE_UNKNOWN,
                                   PEER_STATE_UP, PeerInfo, PeerRegistry)
from repro.fabric.sync import CatalogueSync

__all__ = [
    "PeerInfo",
    "PeerRegistry",
    "PEER_STATE_UNKNOWN",
    "PEER_STATE_UP",
    "PEER_STATE_DOWN",
    "PeerChannel",
    "PeerChannelError",
    "GossipBus",
    "GOSSIP_RPC",
    "CatalogueSync",
    "FabricAdmission",
    "SHED_TOPIC",
]
