"""Catalogue anti-entropy: per-LFN version vectors exchanged with peers.

Before the fabric, a server's :class:`~repro.replica.catalogue.ReplicaCatalogue`
learned about a peer's files only when a
:class:`~repro.replica.storage.RemoteStorageElement` *wrote* through it.  The
:class:`CatalogueSync` loop closes that gap: each round it pulls every peer's
catalogue digest (``fabric.catalogue_digest`` — one version number per LFN),
compares it against the version vector it remembers for that peer, fetches
only the changed entries (``fabric.catalogue_entries``), and reconciles them
into the local catalogue.

Reconciliation rules (the serving peer normalises element names first — its
own local element is exported under its *server name*, which is exactly the
name this server's :class:`RemoteStorageElement` for that peer carries, so an
imported replica is immediately readable through the local broker):

* a remote replica on an element we do not know locally is **registered**
  (CAS via ``expected_version`` against the local row — a concurrent local
  mutation turns the import into a conflict that retries next round);
* **quarantine wins**: a replica quarantined remotely but active locally is
  quarantined here too, and the reverse direction never reactivates a local
  quarantine (the peer will import ours on its own pull);
* records naming *our* local element are never created from gossip — we are
  authoritative for our own disk; only the quarantine-wins rule applies;
* canonical size/checksum mismatches are surfaced as ``fabric.sync.conflict``
  events and skipped — a different digest under the same LFN is corruption
  evidence, not something anti-entropy may paper over.

Deletions do not propagate (an absent remote replica means nothing — the
peer may simply not have it yet); explicit drops travel as operations, not
state.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.client.errors import ClientError
from repro.protocols.errors import Fault
from repro.replica.model import (ReplicaConflictError, ReplicaError,
                                 ReplicaNotFoundError, ReplicaState)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.channel import PeerChannel
    from repro.monitoring.bus import MessageBus
    from repro.replica.catalogue import ReplicaCatalogue

__all__ = ["CatalogueSync", "MAX_ENTRIES_PER_CALL"]

DIGEST_RPC = "fabric.catalogue_digest"
ENTRIES_RPC = "fabric.catalogue_entries"

#: Protocol cap on one ``fabric.catalogue_entries`` response.  Lives here
#: (with the RPC names) because *both* sides must agree on it: the server
#: truncates to it, and the sync loop clamps its fetch batches to it — a
#: request larger than the cap would make silently truncated entries
#: indistinguishable from entries with nothing fabric-visible on them.
MAX_ENTRIES_PER_CALL = 512


class CatalogueSync:
    """Anti-entropy reconciliation of the replica catalogue with the peers."""

    def __init__(self, catalogue: "ReplicaCatalogue", *, local_se: str,
                 source: str, bus: "MessageBus | None" = None,
                 interval: float = 0.0, fetch_batch: int = 128) -> None:
        if interval < 0:
            raise ValueError("interval cannot be negative")
        self.catalogue = catalogue
        self.local_se = local_se
        self.source = source
        self.bus = bus
        self.interval = float(interval)
        self.fetch_batch = min(max(1, int(fetch_batch)), MAX_ENTRIES_PER_CALL)
        self._channels: dict[str, PeerChannel] = {}
        #: Per-peer version vector: the last peer-side version merged per LFN.
        self._seen: dict[str, dict[str, int]] = {}
        self._lock = threading.Lock()
        #: Serialises whole rounds: ``fabric.sync_now`` racing the interval
        #: loop must not interleave merges and version-vector writes for the
        #: same peer (spurious CAS conflicts, lost vector updates).
        self._round_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.rounds = 0
        self.entries_imported = 0
        self.replicas_imported = 0
        self.quarantines_applied = 0
        self.conflicts = 0
        self.errors = 0
        self.malformed = 0

    # -- topology ------------------------------------------------------------
    def attach(self, name: str, channel: "PeerChannel") -> None:
        with self._lock:
            self._channels[name] = channel

    def detach(self, name: str) -> None:
        with self._lock:
            self._channels.pop(name, None)
            self._seen.pop(name, None)

    # -- one round -----------------------------------------------------------
    def sync_once(self) -> dict[str, Any]:
        """Reconcile against every peer once; returns per-peer outcomes.

        Rounds are serialised: an operator's ``fabric.sync_now`` issued
        while the background loop is mid-round simply runs after it.
        """

        with self._round_lock:
            with self._lock:
                channels = dict(self._channels)
            outcome: dict[str, Any] = {}
            for name, channel in channels.items():
                try:
                    outcome[name] = self._sync_peer(name, channel)
                except (Fault, ClientError) as exc:
                    self.errors += 1
                    outcome[name] = {"error": str(exc)}
            self.rounds += 1
            return outcome

    def _sync_peer(self, peer: str, channel: "PeerChannel") -> dict[str, Any]:
        raw_digest = channel.call(DIGEST_RPC)
        if not isinstance(raw_digest, dict):
            raise ClientError(f"peer {peer} returned a malformed digest")
        # Validate every peer-supplied shape before touching the catalogue:
        # a version-skewed or confused peer must cost this round some
        # `malformed` counts, never abort the loop or poison local state.
        digest: dict[str, int] = {}
        for lfn, version in raw_digest.items():
            if isinstance(lfn, str) and isinstance(version, int):
                digest[lfn] = version
            else:
                self.malformed += 1
        with self._lock:
            # The outer _seen dict is shared with stats()/detach(); the
            # per-peer inner dict is only ever written by this loop.
            seen = self._seen.setdefault(peer, {})
        # Forget LFNs the peer no longer lists so the vector cannot grow
        # without bound across drops.
        for lfn in list(seen):
            if lfn not in digest:
                del seen[lfn]
        changed = [lfn for lfn, version in digest.items()
                   if seen.get(lfn) != version]
        stats = {"changed": len(changed), "entries": 0, "replicas": 0,
                 "quarantined": 0, "conflicts": 0}
        for start in range(0, len(changed), self.fetch_batch):
            chunk = changed[start:start + self.fetch_batch]
            entries = channel.call(ENTRIES_RPC, chunk)
            if not isinstance(entries, (list, tuple)):
                raise ClientError(f"peer {peer} returned malformed entries")
            returned = set()
            for entry in entries:
                if not isinstance(entry, dict):
                    self.malformed += 1
                    continue
                lfn = entry.get("lfn")
                if not isinstance(lfn, str) or lfn not in digest:
                    self.malformed += 1
                    continue
                returned.add(lfn)
                if self._merge(peer, entry, stats):
                    version = entry.get("version")
                    seen[lfn] = (version if isinstance(version, int)
                                 else digest[lfn])
            # LFNs the peer chose not to export (nothing fabric-visible on
            # them) still count as seen, or they would be refetched forever.
            for lfn in chunk:
                if lfn not in returned:
                    seen[lfn] = digest[lfn]
        if self.bus is not None and (stats["entries"] or stats["quarantined"]
                                     or stats["conflicts"]):
            try:
                self.bus.publish("fabric.sync.round",
                                 {"peer": peer, **stats}, source=self.source)
            except Exception:  # noqa: BLE001 - monitoring must never kill sync
                pass
        return stats

    # -- reconciliation ------------------------------------------------------
    def _merge(self, peer: str, remote: dict[str, Any],
               stats: dict[str, int]) -> bool:
        """Fold one exported peer entry into the local catalogue.

        Returns True when the entry is fully applied (so its peer version may
        be recorded as seen); False leaves it marked dirty for the next round.
        """

        lfn = remote["lfn"]
        replicas = remote.get("replicas", {})
        if not isinstance(replicas, dict):
            self.malformed += 1
            return True                # nothing usable; don't refetch forever
        try:
            size = int(remote.get("size", -1))
        except (TypeError, ValueError):
            self.malformed += 1
            return True
        checksum = str(remote.get("checksum", ""))
        try:
            local_entry = self.catalogue.entry(lfn)
        except ReplicaNotFoundError:
            local_entry = None
        if (local_entry is not None and checksum and local_entry["checksum"]
                and checksum != local_entry["checksum"]):
            # A different canonical digest under the same LFN: corruption
            # evidence, or a tombstone-less delete-and-recreate behind a
            # partition.  Merging either way would clobber somebody's truth,
            # so surface the divergence (once per remote version change —
            # returning True records the peer version as seen) and leave
            # both catalogues alone.
            stats["conflicts"] += 1
            self.conflicts += 1
            self._publish_conflict(
                peer, lfn, "",
                f"canonical checksum {checksum} does not match local "
                f"{local_entry['checksum']}")
            return True
        valid_states = {s.value for s in ReplicaState}
        complete = True
        merged_any = False
        for se, record in sorted(replicas.items()):
            if not isinstance(se, str) or not isinstance(record, dict):
                self.malformed += 1
                continue
            state = str(record.get("state", ""))
            if state == ReplicaState.COPYING.value:
                continue               # transient; the next digest settles it
            if state not in valid_states:
                self.malformed += 1    # unknown state from a newer/odd peer
                continue
            try:
                applied = self._merge_replica(peer, lfn, se, record, size,
                                              checksum, state, stats)
            except ReplicaConflictError as exc:
                stats["conflicts"] += 1
                self.conflicts += 1
                complete = False
                self._publish_conflict(peer, lfn, se, str(exc))
            except (ReplicaError, ValueError, TypeError):
                self.errors += 1
                complete = False
            else:
                merged_any = merged_any or applied
        if merged_any:
            stats["entries"] += 1
            self.entries_imported += 1
        return complete

    def _merge_replica(self, peer: str, lfn: str, se: str,
                       record: dict[str, Any], size: int, checksum: str,
                       state: str, stats: dict[str, int]) -> bool:
        own_element = se == self.source
        local_se = self.local_se if own_element else se
        try:
            entry = self.catalogue.entry(lfn)
        except ReplicaNotFoundError:
            entry = None
        local_record = None if entry is None else entry["replicas"].get(local_se)

        if local_record is None:
            if own_element:
                # Gossip never creates replicas on our own disk: we are the
                # authority for what this server actually stores.
                return False
            self.catalogue.register(
                lfn, local_se, str(record.get("pfn") or lfn),
                size=size, checksum=checksum,
                state=ReplicaState(state) if state else ReplicaState.ACTIVE,
                expected_version=None if entry is None else entry["version"])
            stats["replicas"] += 1
            self.replicas_imported += 1
            return True

        if (state == ReplicaState.QUARANTINED.value
                and local_record["state"] == ReplicaState.ACTIVE.value):
            # Quarantine wins: a peer that saw corruption poisons the copy
            # everywhere; reactivation is an explicit operator verify.
            self.catalogue.set_state(
                lfn, local_se, ReplicaState.QUARANTINED,
                error=f"fabric sync: quarantined on {peer}: "
                      f"{record.get('last_error', '')}")
            stats["quarantined"] += 1
            self.quarantines_applied += 1
            return True
        return False

    def _publish_conflict(self, peer: str, lfn: str, se: str,
                          error: str) -> None:
        if self.bus is None:
            return
        try:
            self.bus.publish("fabric.sync.conflict", {
                "peer": peer, "lfn": lfn, "storage_element": se,
                "error": error,
            }, source=self.source)
        except Exception:  # noqa: BLE001
            pass

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self.interval <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name=f"catalogue-sync-{self.source}",
                                        daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(timeout=self.interval):
            try:
                self.sync_once()
            except Exception:  # pragma: no cover - the loop must never die
                pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            peers = sorted(self._channels)
            vector_size = sum(len(v) for v in self._seen.values())
        return {
            "peers": peers,
            "rounds": self.rounds,
            "entries_imported": self.entries_imported,
            "replicas_imported": self.replicas_imported,
            "quarantines_applied": self.quarantines_applied,
            "conflicts": self.conflicts,
            "errors": self.errors,
            "malformed": self.malformed,
            "version_vector_size": vector_size,
        }
