"""Fabric-wide admission: shed rates advertised on the gossip bus.

Per-identity admission control (PR 4) is strictly per-server: a hot client
throttled on server A could still fire a full burst at servers B..N before
each of them independently noticed.  :class:`FabricAdmission` closes that
window.  It watches the local ``dispatch.throttled`` events the
:class:`~repro.core.admission.AdmissionController` publishes, and — damped
to at most one advert per identity per ``min_advert_interval`` — republishes
them as ``fabric.admission.shed`` adverts.  That topic rides the
:class:`~repro.fabric.gossip.GossipBus`, so within one gossip interval every
peer receives the advert and *pre-throttles* the identity: its token bucket
is clamped down to ``share`` × burst tokens (``fabric_admission_share``,
0 by default = drained to empty), making the very next request pay the same
refill wait it would have paid on the server that shed it.

The advert carries observed facts (identity, reason, retry_after), not
commands; each receiver applies its *own* configured share against its *own*
bucket, so a misconfigured or hostile peer can at worst slow one identity
down to the local refill rate — never lock it out outright.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.admission import AdmissionController
    from repro.monitoring.bus import Message, MessageBus

__all__ = ["FabricAdmission", "SHED_TOPIC"]

#: The gossiped topic carrying per-identity shed adverts.
SHED_TOPIC = "fabric.admission.shed"


class FabricAdmission:
    """Bridges local throttle decisions and fabric-wide pre-throttling."""

    def __init__(self, controller: "AdmissionController", bus: "MessageBus", *,
                 source: str, share: float = 0.0,
                 min_advert_interval: float = 0.25,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not (0.0 <= share <= 1.0):
            raise ValueError("share must be within [0, 1]")
        if min_advert_interval < 0:
            raise ValueError("min_advert_interval cannot be negative")
        self.controller = controller
        self.bus = bus
        self.source = source
        self.share = float(share)
        self.min_advert_interval = float(min_advert_interval)
        self._clock = clock
        self._lock = threading.Lock()
        self._last_advert: dict[str, float] = {}
        self.adverts_sent = 0
        self.sheds_applied = 0
        self._subscriptions = [
            bus.subscribe("dispatch.throttled", self._on_throttled),
            bus.subscribe(SHED_TOPIC, self._on_shed),
        ]

    # -- outbound: local throttle -> shed advert ------------------------------
    def _on_throttled(self, message: "Message") -> None:
        if message.source != self.source:
            return                      # only advertise our own decisions
        identity = message.payload.get("identity")
        if not isinstance(identity, str) or not identity:
            return
        now = self._clock()
        with self._lock:
            last = self._last_advert.get(identity)
            if last is not None and now - last < self.min_advert_interval:
                return
            self._last_advert[identity] = now
            if len(self._last_advert) > 4096:
                cutoff = now - max(self.min_advert_interval, 1.0)
                self._last_advert = {i: t for i, t in
                                     self._last_advert.items() if t >= cutoff}
            self.adverts_sent += 1
        self.bus.publish(SHED_TOPIC, {
            "identity": identity,
            "reason": message.payload.get("reason", ""),
            "retry_after": message.payload.get("retry_after", 0.0),
        }, source=self.source)

    # -- inbound: peer advert -> local pre-throttle ---------------------------
    def _on_shed(self, message: "Message") -> None:
        if message.source == self.source:
            return                      # our own advert, delivered locally
        identity = message.payload.get("identity")
        if not isinstance(identity, str) or not identity:
            return
        if self.controller.apply_shed(identity, self.share,
                                      source=message.source):
            with self._lock:
                self.sheds_applied += 1

    # -- lifecycle / introspection -------------------------------------------
    def close(self) -> None:
        for sub_id in self._subscriptions:
            self.bus.unsubscribe(sub_id)
        self._subscriptions.clear()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "share": self.share,
                "adverts_sent": self.adverts_sent,
                "sheds_applied": self.sheds_applied,
            }
