"""The gossip bus: selected MessageBus topics, fanned out to peers.

A single server's monitoring :class:`~repro.monitoring.bus.MessageBus` is
in-process; historically "multi-server" features cheated by handing several
servers one shared bus object.  The :class:`GossipBus` removes the cheat: it
subscribes to an explicit allow-list of local topic prefixes, queues every
matching local publication into an outbox, and flushes the outbox to each
peer over the authenticated ``fabric.publish`` RPC (one batched call per
peer per flush).  The receiving side republishes each message onto *its*
local bus with the original source, so existing subscribers — the cache
invalidation relay, the fabric admission extension, monitoring consumers —
work across real server boundaries without knowing the transport changed.

Loop prevention is two-layered: a thread-local guard stops a message applied
from a peer from being re-queued by our own subscription (bus delivery is
synchronous), and the receiver drops messages whose source is itself —
gossip is TTL-1 on a full mesh, which is the topology
:class:`~repro.fabric.service.FabricService` builds from ``fabric_peers``.
The topic allow-list is enforced on *receive* as well, so a peer can only
inject topics this server chose to gossip.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.client.errors import ClientError
from repro.core.faults import FAULTS
from repro.protocols.errors import Fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.channel import PeerChannel
    from repro.fabric.registry import PeerRegistry
    from repro.monitoring.bus import Message, MessageBus

__all__ = ["GossipBus", "GOSSIP_RPC"]

#: The RPC the flusher invokes on each peer.
GOSSIP_RPC = "fabric.publish"

#: Outbox entries beyond this are dropped oldest-first (gossip is telemetry,
#: not a durable queue; a wedged peer must not grow memory without bound).
DEFAULT_MAX_OUTBOX = 4096


class GossipBus:
    """Bridges allow-listed local bus topics to every attached peer."""

    def __init__(self, bus: "MessageBus", *, source: str,
                 interval: float = 0.0,
                 registry: "PeerRegistry | None" = None,
                 max_batch: int = 256,
                 max_outbox: int = DEFAULT_MAX_OUTBOX) -> None:
        if not source:
            raise ValueError("gossip source (server name) must be non-empty")
        if interval < 0:
            raise ValueError("interval cannot be negative")
        self.bus = bus
        self.source = source
        self.interval = float(interval)
        self.registry = registry
        self.max_batch = max(1, int(max_batch))
        self.max_outbox = max(self.max_batch, int(max_outbox))
        self._topics: list[str] = []
        self._subscriptions: list[int] = []
        self._channels: dict[str, PeerChannel] = {}
        self._outbox: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.queued = 0
        self.dropped = 0
        self.sent = 0
        self.send_failures = 0
        self.received = 0
        self.applied = 0
        self.rejected = 0

    # -- topology ------------------------------------------------------------
    def add_topic(self, prefix: str) -> None:
        """Gossip every local publication under ``prefix`` to the peers."""

        if not prefix:
            raise ValueError("topic prefix must be non-empty")
        with self._lock:
            if prefix in self._topics:
                return
            self._topics.append(prefix)
        self._subscriptions.append(self.bus.subscribe(prefix, self._on_local))

    def topics(self) -> list[str]:
        with self._lock:
            return list(self._topics)

    def accepts(self, topic: str) -> bool:
        with self._lock:
            prefixes = list(self._topics)
        return any(topic == p or topic.startswith(p + ".") for p in prefixes)

    def attach(self, name: str, channel: "PeerChannel") -> None:
        with self._lock:
            self._channels[name] = channel

    def detach(self, name: str) -> None:
        with self._lock:
            self._channels.pop(name, None)

    # -- outbound: local bus -> outbox -> peers ------------------------------
    def _on_local(self, message: "Message") -> None:
        if getattr(self._local, "applying", False):
            return                      # this message *came from* a peer
        if not self._channels:
            # No peers attached (the default single-server case): queuing
            # would only retain payloads nobody will ever flush.  Config
            # peers attach during on_start, before client traffic, so this
            # drops nothing a real fabric would have delivered.
            return
        entry = {
            "topic": message.topic,
            "payload": dict(message.payload),
            "source": message.source or self.source,
            "timestamp": message.timestamp,
        }
        FAULTS.fire("fabric.gossip.entry", source=self.source, entry=entry)
        with self._lock:
            self._outbox.append(entry)
            self.queued += 1
            overflow = len(self._outbox) - self.max_outbox
            if overflow > 0:
                del self._outbox[:overflow]
                self.dropped += overflow

    def flush(self) -> dict[str, int]:
        """Drain the whole outbox to every peer; returns per-peer counts.

        Messages are sent in ``max_batch``-sized ``fabric.publish`` calls
        until the queue is empty, so one explicit ``flush()`` delivers
        everything queued so far (the deterministic-drive mode tests use).
        A peer that cannot be reached scores ``-1`` (and its channel marks
        it down in the registry); its share of the batch is *not* requeued —
        gossip is best-effort, and anti-entropy (catalogue sync) repairs
        anything that must eventually converge.
        """

        delivered: dict[str, int] = {}
        # Bounded pass count: local publishes racing the drain can extend
        # the queue, but never force an unbounded loop here.
        for _ in range(self.max_outbox // self.max_batch + 2):
            with self._lock:
                channels = dict(self._channels)
                if not channels:
                    # Leave the queue intact (bounded by max_outbox) so
                    # messages survive until a peer attaches instead of
                    # vanishing uncounted.
                    return delivered
                batch, self._outbox = (self._outbox[:self.max_batch],
                                       self._outbox[self.max_batch:])
            if not batch:
                return delivered
            for name, channel in channels.items():
                try:
                    accepted = channel.call(GOSSIP_RPC, batch, retry=False)
                    # The peer's return value is peer-supplied data too: a
                    # malformed reply counts as a failed send, never an
                    # exception that would strand the rest of the batch.
                    delivered[name] = (max(delivered.get(name, 0), 0)
                                       + int(accepted))
                    with self._lock:
                        self.sent += len(batch)
                except (Fault, ClientError, TypeError, ValueError):
                    with self._lock:
                        self.send_failures += 1
                    delivered.setdefault(name, -1)
        return delivered

    # -- inbound: fabric.publish -> local bus --------------------------------
    def receive(self, messages: list[Any], *, from_peer: str = "") -> int:
        """Apply a gossip batch from a peer onto the local bus.

        Only topics on the local allow-list are accepted; anything else is
        counted in ``rejected`` and ignored, so a compromised or confused
        peer cannot inject arbitrary monitoring traffic.
        """

        applied = 0
        rejected = 0
        if not isinstance(messages, (list, tuple)):
            return 0
        for item in messages:
            if not isinstance(item, dict):
                rejected += 1
                continue
            topic = item.get("topic")
            payload = item.get("payload")
            if (not isinstance(topic, str) or not isinstance(payload, dict)
                    or not self.accepts(topic)):
                rejected += 1
                continue
            source = item.get("source") or from_peer
            if (source == self.source
                    or str(source).startswith(self.source + "#")):
                # Our own message reflected back — either published under
                # the server name directly, or under a per-instance
                # "<server>#<pid>-<n>" source as the cache relay does.
                continue
            self._local.applying = True
            try:
                self.bus.publish(topic, payload, source=str(source))
            finally:
                self._local.applying = False
            applied += 1
        with self._lock:  # concurrent peers deliver on separate threads
            self.received += len(messages)
            self.rejected += rejected
            self.applied += applied
        return applied

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start the periodic flusher (no-op when ``interval`` is 0)."""

        if self.interval <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._flush_loop,
                                        name=f"gossip-{self.source}",
                                        daemon=True)
        self._thread.start()

    def _flush_loop(self) -> None:
        while not self._stop.wait(timeout=self.interval):
            try:
                self.flush()
            except Exception:  # pragma: no cover - flusher must never die
                pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for sub_id in self._subscriptions:
            self.bus.unsubscribe(sub_id)
        self._subscriptions.clear()

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "topics": list(self._topics),
                "peers": sorted(self._channels),
                "outbox": len(self._outbox),
                "queued": self.queued,
                "dropped": self.dropped,
                "sent": self.sent,
                "send_failures": self.send_failures,
                "received": self.received,
                "applied": self.applied,
                "rejected": self.rejected,
            }
