"""Read-through memoization.

:func:`cached` wraps a function (or method) so results are served from a
named :class:`~repro.cache.core.TTLLRUCache` in the given registry.  ``None``
results are stored as negative entries, so "not found" answers are cached
too.  The wrapped function exposes its cache as ``wrapper.cache`` for tests
and explicit invalidation.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable

from repro.cache.core import MISSING, NEGATIVE, CacheRegistry, TTLLRUCache

__all__ = ["cached", "default_key"]


def default_key(*args: Any, **kwargs: Any) -> tuple:
    """Positional args plus sorted keyword items (all must be hashable)."""

    return (args, tuple(sorted(kwargs.items())))


def cached(registry: CacheRegistry | None, name: str, *,
           key_fn: Callable[..., Any] | None = None,
           ttl: float | None = None,
           tags: Iterable[str] | Callable[..., Iterable[str]] = (),
           maxsize: int = 1024,
           cache: TTLLRUCache | None = None) -> Callable:
    """Decorator: memoize calls through a registry-named cache.

    ``key_fn`` maps the call arguments to a hashable key (default:
    :func:`default_key`).  ``tags`` is a static iterable of tags or a callable
    of the call arguments returning the tags for that entry.  Pass an existing
    ``cache`` to share one between wrappers; otherwise the cache named
    ``name`` is created in (or fetched from) ``registry``.
    """

    if cache is None:
        if registry is None:
            raise ValueError("cached() needs a registry or an explicit cache")
        cache = registry.get(name) or registry.create(name, maxsize=maxsize, ttl=ttl)

    tags_fn = tags if callable(tags) else None
    static_tags = () if callable(tags) else tuple(tags)

    def decorator(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            key = key_fn(*args, **kwargs) if key_fn is not None else default_key(*args, **kwargs)
            value = cache.get(key)
            if value is NEGATIVE:
                return None
            if value is not MISSING:
                return value
            # Epoch-guarded fill: an invalidation published while func() runs
            # aborts the store instead of caching the pre-invalidation result.
            epoch = cache.epoch
            result = func(*args, **kwargs)
            entry_tags = tuple(tags_fn(*args, **kwargs)) if tags_fn is not None else static_tags
            stored = NEGATIVE if result is None else result
            cache.put_if_epoch(key, stored, epoch=epoch, ttl=ttl, tags=entry_tags)
            return result

        wrapper.cache = cache  # type: ignore[attr-defined]
        return wrapper

    return decorator
