"""Tag-based cache invalidation.

Writers never talk to caches directly: they publish invalidation *tags* onto
an :class:`InvalidationBus` and every cache subscribed to a matching tag
family drops the affected entries.  Tags form a colon-separated hierarchy:

* ``session:<id>``  — one session changed (create/renew/destroy/attribute);
* ``acl:method`` / ``acl:file`` — a method/file ACL was edited;
* ``acl``           — anything ACL-relevant changed (e.g. VO group edits);
* ``discovery``     — the service registry changed;
* ``pki:<dn>``      — a credential's verification status changed.

Publishing a tag reaches a subscription when either is an ancestor of the
other, so publishing ``acl`` flushes a cache subscribed to ``acl:method``,
and publishing ``session:abc`` reaches the cache subscribed to ``session``
(which then drops only the entries tagged ``session:abc``).

The module-level :func:`invalidate_all` flushes every cache subscribed to any
live bus in the process — a big hammer for tests and operational resets.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.core import TTLLRUCache

__all__ = ["InvalidationBus", "tag_matches", "invalidate_all"]

_ALL_BUSES: "weakref.WeakSet[InvalidationBus]" = weakref.WeakSet()


def tag_matches(subscription: str, tag: str) -> bool:
    """Whether a published ``tag`` reaches a ``subscription`` prefix.

    True when the two are equal or one is a colon-hierarchy ancestor of the
    other; ``"*"`` subscribes to everything.
    """

    if subscription == "*" or subscription == tag:
        return True
    return tag.startswith(subscription + ":") or subscription.startswith(tag + ":")


class InvalidationBus:
    """Routes published invalidation tags to subscribed caches."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscriptions: list[tuple[str, "TTLLRUCache"]] = []
        self._listeners: list[Callable[[str], None]] = []
        self.published = 0
        self.entries_invalidated = 0
        _ALL_BUSES.add(self)

    def add_listener(self, listener: Callable[[str], None]) -> None:
        """Observe every published tag (used to relay flushes across servers).

        Listeners run synchronously after the local caches have been flushed;
        they must not raise.
        """

        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[str], None]) -> bool:
        with self._lock:
            try:
                self._listeners.remove(listener)
                return True
            except ValueError:
                return False

    def subscribe(self, tag_prefix: str, cache: "TTLLRUCache") -> None:
        """Subscribe ``cache`` to every tag under ``tag_prefix``."""

        if not tag_prefix:
            raise ValueError("tag_prefix must be non-empty")
        with self._lock:
            if (tag_prefix, cache) not in self._subscriptions:
                self._subscriptions.append((tag_prefix, cache))

    def unsubscribe(self, tag_prefix: str, cache: "TTLLRUCache") -> bool:
        with self._lock:
            try:
                self._subscriptions.remove((tag_prefix, cache))
                return True
            except ValueError:
                return False

    def publish(self, tag: str) -> int:
        """Publish one invalidation tag; returns entries dropped across caches."""

        with self._lock:
            self.published += 1
            targets = [cache for prefix, cache in self._subscriptions
                       if tag_matches(prefix, tag)]
            listeners = list(self._listeners)
        dropped = sum(cache.invalidate_tag(tag) for cache in targets)
        with self._lock:
            self.entries_invalidated += dropped
        for listener in listeners:
            listener(tag)
        return dropped

    def publish_many(self, tags) -> int:
        return sum(self.publish(tag) for tag in tags)

    def invalidate_all(self) -> int:
        """Flush every subscribed cache completely."""

        with self._lock:
            caches = {id(cache): cache for _, cache in self._subscriptions}
        return sum(cache.clear() for cache in caches.values())

    def subscriptions(self) -> list[str]:
        with self._lock:
            return sorted({prefix for prefix, _ in self._subscriptions})


def invalidate_all() -> int:
    """Flush every cache subscribed to any live bus in this process."""

    return sum(bus.invalidate_all() for bus in list(_ALL_BUSES))
