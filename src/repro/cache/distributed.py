"""Cross-server cache invalidation over the monitoring message bus.

A single server keeps its caches coherent through its local
:class:`~repro.cache.invalidation.InvalidationBus`; a multi-server
deployment also needs *other* servers' caches flushed when one server edits
an ACL, destroys a session, or changes a VO group.  The
:class:`CacheInvalidationRelay` bridges the two substrates:

* every tag published on the local invalidation bus is republished onto the
  monitoring :class:`~repro.monitoring.bus.MessageBus` under
  ``cache.invalidate.<tag family>`` (the full colon tag rides in the
  payload, since bus topics are dot-separated);
* every ``cache.invalidate.*`` message from a *different* server is applied
  to the local invalidation bus, flushing the matching cache entries.

The relay owns no transport of its own: it only speaks to the local bus.
Across real server boundaries the ``cache.invalidate`` topic rides the
fabric's :class:`~repro.fabric.gossip.GossipBus` (a standard gossiped
topic), which forwards each flush to every peer over the authenticated
``fabric.publish`` RPC and republishes inbound flushes — original source
preserved — onto the receiving server's local bus, where this relay applies
them.  Tests that wire several servers to one shared bus object exercise
the identical relay logic with the gossip hop short-circuited.

Messages carry the originating relay's id as the bus ``source`` and are
ignored when it matches our own, so a flush never echoes back; a
thread-local re-entrancy guard additionally stops a remotely applied flush
from being republished (bus delivery is synchronous, so a relay loop would
otherwise recurse).
"""

from __future__ import annotations

import itertools
import os
import threading

from repro.cache.invalidation import InvalidationBus
from repro.monitoring.bus import Message, MessageBus

__all__ = ["CacheInvalidationRelay", "INVALIDATION_TOPIC"]

#: Topic family used on the monitoring bus.
INVALIDATION_TOPIC = "cache.invalidate"

#: Process-wide counter making every relay's source unique, so two servers
#: that were both left on the default ``server_name`` and wired to one bus
#: still receive each other's flushes instead of mistaking them for echoes.
_RELAY_IDS = itertools.count(1)


class CacheInvalidationRelay:
    """Bridges a local InvalidationBus and a shared monitoring MessageBus."""

    def __init__(self, invalidation: InvalidationBus, bus: MessageBus, *,
                 source: str, topic_prefix: str = INVALIDATION_TOPIC) -> None:
        if not source:
            raise ValueError("relay source (server name) must be non-empty")
        self.invalidation = invalidation
        self.bus = bus
        self.source = f"{source}#{os.getpid()}-{next(_RELAY_IDS)}"
        self.topic_prefix = topic_prefix
        self.relayed_out = 0
        self.applied_in = 0
        self.ignored_own = 0
        self._local = threading.local()
        invalidation.add_listener(self._on_local_tag)
        self._subscription = bus.subscribe(topic_prefix, self._on_bus_message)

    # -- outbound: local flush -> bus ---------------------------------------
    def _on_local_tag(self, tag: str) -> None:
        if getattr(self._local, "applying", False):
            return                        # this flush *came from* the bus
        family = tag.split(":", 1)[0]
        self.bus.publish(f"{self.topic_prefix}.{family}", {"tag": tag},
                         source=self.source)
        self.relayed_out += 1

    # -- inbound: bus -> local flush ----------------------------------------
    def _on_bus_message(self, message: Message) -> None:
        if message.source == self.source:
            self.ignored_own += 1
            return
        tag = message.payload.get("tag")
        if not isinstance(tag, str) or not tag:
            return
        self._local.applying = True
        try:
            self.invalidation.publish(tag)
        finally:
            self._local.applying = False
        self.applied_in += 1

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Detach from both buses."""

        self.invalidation.remove_listener(self._on_local_tag)
        self.bus.unsubscribe(self._subscription)

    def stats(self) -> dict:
        return {
            "source": self.source,
            "relayed_out": self.relayed_out,
            "applied_in": self.applied_in,
            "ignored_own": self.ignored_own,
        }
