"""The cache primitive and the process-wide cache registry.

:class:`TTLLRUCache` is a thread-safe mapping with three eviction causes,
each counted separately in its :class:`CacheStats`: LRU capacity evictions,
TTL expirations, and explicit invalidations (by key or by tag).  Negative
results ("this session id does not exist") are first-class citizens: callers
store the :data:`NEGATIVE` sentinel so repeated lookups of a missing key are
served from memory instead of re-querying the database.

The key space can be partitioned into ``shards``, each with its own lock,
entry map and tag index, so many-core servers do not serialise every lookup
on one mutex; hit/miss/eviction counters are kept per shard (each mutated
only under its shard's lock) and summed on read, so statistics stay exact.
The default of one shard preserves strict cache-wide LRU ordering; sharded
caches approximate it per shard, which is the standard trade for lock
locality.

Every cache in a process is registered under a unique name in a
:class:`CacheRegistry`, which aggregates statistics for the monitoring
subsystem (``system.cache_stats`` exposes the snapshot over RPC).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

__all__ = ["MISSING", "NEGATIVE", "CacheStats", "TTLLRUCache", "CacheRegistry"]


class _Sentinel:
    """A named singleton marker (repr-friendly, never equal to user values)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self._name}>"


#: Returned by :meth:`TTLLRUCache.get` when the key has no live entry.
MISSING = _Sentinel("MISSING")
#: Stored to cache the *absence* of a value (negative caching).
NEGATIVE = _Sentinel("NEGATIVE")


@dataclass
class CacheStats:
    """Counters for one cache (all monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return (self.hits / lookups) if lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


def _tag_ancestors(tag: str) -> list[str]:
    """Every proper colon-prefix of ``tag``: ``a:b:c`` -> ``["a", "a:b"]``."""

    ancestors = []
    index = tag.find(":")
    while index != -1:
        ancestors.append(tag[:index])
        index = tag.find(":", index + 1)
    return ancestors


class _Entry:
    __slots__ = ("value", "expires", "tags")

    def __init__(self, value: Any, expires: float | None, tags: tuple[str, ...]) -> None:
        self.value = value
        self.expires = expires
        self.tags = tags


class _Shard:
    """One lock's worth of cache state: entries, tag index, and counters."""

    __slots__ = ("lock", "entries", "tag_index", "tag_children", "maxsize", "stats")

    def __init__(self, maxsize: int) -> None:
        self.lock = threading.Lock()
        self.entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self.tag_index: dict[str, set[Hashable]] = {}
        #: Descendant tags registered under each ancestor prefix, so a family
        #: flush (tag "acl" hitting "acl:method") touches only matching tags.
        self.tag_children: dict[str, set[str]] = {}
        self.maxsize = maxsize
        self.stats = CacheStats()


class TTLLRUCache:
    """A thread-safe TTL + LRU cache with tag-based invalidation.

    ``ttl`` is the default time-to-live in seconds applied by :meth:`put`
    (``None`` means entries never expire by age).  ``maxsize`` bounds the
    entry count; the least recently *read or written* entry of a shard is
    evicted first.  ``shards`` splits the key space across independently
    locked buckets (1 — the default — keeps a single lock and exact
    cache-wide LRU order).  Entries may carry string tags (e.g.
    ``session:<id>``, ``acl:method``); :meth:`invalidate_tag` removes every
    entry whose tags match the given tag exactly or fall under it in the
    colon-separated hierarchy.
    """

    def __init__(self, name: str, *, maxsize: int = 1024, ttl: float | None = None,
                 shards: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None for no expiry)")
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.name = str(name)
        self.maxsize = int(maxsize)
        self.ttl = None if ttl is None else float(ttl)
        self._clock = clock
        shards = min(int(shards), self.maxsize)
        per_shard = -(-self.maxsize // shards)  # ceil division
        self._shards = [_Shard(per_shard) for _ in range(shards)]
        #: Bumped on *every* invalidation (key, tag or clear) — including ones
        #: that matched nothing, because the entry being invalidated may be a
        #: concurrent read-through that has not called put yet.  See
        #: :meth:`put_if_epoch`.  Guarded by its own lock, always acquired
        #: *after* a shard lock (never the other way around).
        self._epoch = 0
        self._epoch_lock = threading.Lock()

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard_for(self, key: Hashable) -> _Shard:
        return self._shards[hash(key) % len(self._shards)]

    # -- lookups -------------------------------------------------------------
    def get(self, key: Hashable, default: Any = MISSING) -> Any:
        """The live value for ``key``, or ``default`` (:data:`MISSING`).

        A hit on a negative entry returns :data:`NEGATIVE`; callers translate
        that into their own "known absent" behaviour.
        """

        now = self._clock()
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.stats.misses += 1
                return default
            if entry.expires is not None and now >= entry.expires:
                self._remove_locked(shard, key, entry)
                shard.stats.expirations += 1
                shard.stats.misses += 1
                return default
            shard.entries.move_to_end(key)
            shard.stats.hits += 1
            if entry.value is NEGATIVE:
                shard.stats.negative_hits += 1
            return entry.value

    def __contains__(self, key: object) -> bool:
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                return False
            return entry.expires is None or self._clock() < entry.expires

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._iter_locked())

    def __bool__(self) -> bool:
        # An *empty* cache must still be truthy — "is a cache configured?"
        # checks would otherwise silently disable caching at startup.
        return True

    def _iter_locked(self) -> Iterator[_Shard]:
        """Yield each shard with its lock held for the duration of the yield."""

        for shard in self._shards:
            with shard.lock:
                yield shard

    # -- stores --------------------------------------------------------------
    def put(self, key: Hashable, value: Any, *, ttl: float | None = None,
            tags: tuple[str, ...] = ()) -> None:
        """Store ``value`` under ``key`` (``ttl=None`` uses the cache default)."""

        shard = self._shard_for(key)
        with shard.lock:
            self._put_locked(shard, key, value, ttl, tuple(tags))

    def _put_locked(self, shard: _Shard, key: Hashable, value: Any,
                    ttl: float | None, tags: tuple[str, ...]) -> None:
        effective_ttl = self.ttl if ttl is None else float(ttl)
        expires = None if effective_ttl is None else self._clock() + effective_ttl
        existing = shard.entries.pop(key, None)
        if existing is not None:
            self._unindex_locked(shard, key, existing)
        shard.entries[key] = _Entry(value, expires, tags)
        for tag in tags:
            keys = shard.tag_index.setdefault(tag, set())
            if not keys:
                for ancestor in _tag_ancestors(tag):
                    shard.tag_children.setdefault(ancestor, set()).add(tag)
            keys.add(key)
        shard.stats.stores += 1
        while len(shard.entries) > shard.maxsize:
            old_key, old_entry = shard.entries.popitem(last=False)
            self._unindex_locked(shard, old_key, old_entry)
            shard.stats.evictions += 1

    def put_negative(self, key: Hashable, *, ttl: float | None = None,
                     tags: tuple[str, ...] = ()) -> None:
        """Record that ``key`` has no value (stores the :data:`NEGATIVE` sentinel)."""

        self.put(key, NEGATIVE, ttl=ttl, tags=tags)

    @property
    def epoch(self) -> int:
        """The invalidation epoch (monotonic; bumped by every invalidation)."""

        with self._epoch_lock:
            return self._epoch

    def _bump_epoch(self) -> None:
        with self._epoch_lock:
            self._epoch += 1

    def put_if_epoch(self, key: Hashable, value: Any, *, epoch: int,
                     ttl: float | None = None, tags: tuple[str, ...] = ()) -> bool:
        """Store only if no invalidation happened since ``epoch`` was read.

        Read-through callers capture :attr:`epoch` *before* loading from the
        backing store and use this to publish the result; a writer that
        invalidated in between (destroy racing a validate, ACL edit racing a
        check) bumps the epoch and the stale store is dropped instead of
        resurrecting deleted state.  The epoch is cache-global, so an
        unrelated invalidation also aborts the fill — the cost is one extra
        backing-store read on the next lookup, traded for a race-free
        guarantee without per-key bookkeeping.  Returns whether the value
        was stored.
        """

        # Check and insert under the key's shard lock: a racing key
        # invalidation (same shard lock) either lands before (the store is
        # refused) or after (the tag index finds and drops the fresh entry);
        # a racing tag invalidation bumps the epoch before sweeping any
        # shard, so a fill that read the older epoch is refused — a stale
        # value is never visible.
        shard = self._shard_for(key)
        with shard.lock:
            with self._epoch_lock:
                if self._epoch != epoch:
                    return False
            self._put_locked(shard, key, value, ttl, tuple(tags))
        return True

    # -- invalidation --------------------------------------------------------
    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key``; returns whether an entry was removed."""

        shard = self._shard_for(key)
        with shard.lock:
            self._bump_epoch()
            entry = shard.entries.get(key)
            if entry is None:
                return False
            self._remove_locked(shard, key, entry)
            shard.stats.invalidations += 1
            return True

    def invalidate_tag(self, tag: str) -> int:
        """Drop every entry tagged ``tag`` or tagged under it (``tag:...``)."""

        self._bump_epoch()
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                matching = [tag, *shard.tag_children.get(tag, ())]
                keys: set[Hashable] = set()
                for indexed in matching:
                    keys.update(shard.tag_index.get(indexed, ()))
                for key in keys:
                    entry = shard.entries.get(key)
                    if entry is not None:
                        self._remove_locked(shard, key, entry)
                shard.stats.invalidations += len(keys)
                dropped += len(keys)
        return dropped

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""

        self._bump_epoch()
        count = 0
        for shard in self._shards:
            with shard.lock:
                count += len(shard.entries)
                shard.stats.invalidations += len(shard.entries)
                shard.entries.clear()
                shard.tag_index.clear()
                shard.tag_children.clear()
        return count

    # -- internals -----------------------------------------------------------
    def _remove_locked(self, shard: _Shard, key: Hashable, entry: _Entry) -> None:
        del shard.entries[key]
        self._unindex_locked(shard, key, entry)

    def _unindex_locked(self, shard: _Shard, key: Hashable, entry: _Entry) -> None:
        for tag in entry.tags:
            tagged = shard.tag_index.get(tag)
            if tagged is not None:
                tagged.discard(key)
                if not tagged:
                    del shard.tag_index[tag]
                    for ancestor in _tag_ancestors(tag):
                        children = shard.tag_children.get(ancestor)
                        if children is not None:
                            children.discard(tag)
                            if not children:
                                del shard.tag_children[ancestor]

    # -- introspection -------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Aggregated counters across shards (the live object when unsharded).

        Each per-shard counter is only ever mutated under that shard's lock,
        so the sum is exact — no updates are lost to unsynchronised ``+=``.
        """

        if len(self._shards) == 1:
            return self._shards[0].stats
        total = CacheStats()
        for shard in self._iter_locked():
            stats = shard.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.negative_hits += stats.negative_hits
            total.evictions += stats.evictions
            total.expirations += stats.expirations
            total.invalidations += stats.invalidations
            total.stores += stats.stores
        return total

    def stats_snapshot(self) -> dict:
        snapshot = self.stats.snapshot()
        snapshot["size"] = len(self)
        snapshot["maxsize"] = self.maxsize
        snapshot["ttl"] = self.ttl
        snapshot["shards"] = len(self._shards)
        return snapshot


class CacheRegistry:
    """Names every cache in the process and aggregates their statistics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._caches: dict[str, TTLLRUCache] = {}

    def create(self, name: str, *, maxsize: int = 1024, ttl: float | None = None,
               shards: int = 1,
               clock: Callable[[], float] = time.monotonic) -> TTLLRUCache:
        """Create, register and return a new named cache."""

        cache = TTLLRUCache(name, maxsize=maxsize, ttl=ttl, shards=shards,
                            clock=clock)
        self.register(cache)
        return cache

    def register(self, cache: TTLLRUCache) -> TTLLRUCache:
        with self._lock:
            if cache.name in self._caches:
                raise ValueError(f"a cache named {cache.name!r} is already registered")
            self._caches[cache.name] = cache
        return cache

    def get(self, name: str) -> TTLLRUCache | None:
        with self._lock:
            return self._caches.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._caches)

    def __iter__(self) -> Iterator[TTLLRUCache]:
        with self._lock:
            caches = list(self._caches.values())
        return iter(caches)

    def __len__(self) -> int:
        with self._lock:
            return len(self._caches)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._caches

    def invalidate_all(self) -> int:
        """Flush every registered cache; returns total entries dropped."""

        return sum(cache.clear() for cache in self)

    def stats_snapshot(self) -> dict:
        """Per-cache statistics plus process totals."""

        caches = {cache.name: cache.stats_snapshot() for cache in self}
        totals = {"hits": 0, "misses": 0, "evictions": 0, "expirations": 0,
                  "invalidations": 0, "size": 0}
        for snapshot in caches.values():
            for key in totals:
                totals[key] += snapshot[key]
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = (totals["hits"] / lookups) if lookups else 0.0
        return {"caches": caches, "totals": totals}
