"""Tiered caching for the per-RPC hot path.

The paper's performance test measures exactly the path this package
accelerates: every request performs "two access control checks involving
access to several databases" — a session lookup plus a hierarchical method
ACL evaluation — and the paper explicitly ran with "no caching … on the
server".  That uncached mode remains the default (``ServerConfig.cache_enabled
= False``), so benchmarks still reproduce the paper's numbers; flipping the
flag interposes memory-speed caches in front of the session, ACL, discovery
and PKI database reads, with write-through invalidation so no stale grant is
ever served.

The package has three layers:

* :mod:`repro.cache.core` — the :class:`~repro.cache.core.TTLLRUCache`
  primitive (thread-safe TTL + LRU with per-cache statistics and
  sentinel-based negative caching) and the :class:`~repro.cache.core.CacheRegistry`
  that names every cache in the process;
* :mod:`repro.cache.invalidation` — the tag-based
  :class:`~repro.cache.invalidation.InvalidationBus` writers publish to
  (``session:<id>``, ``acl:method``, ``discovery``, ``pki:<dn>`` …) so a
  single ACL edit flushes only ACL decision entries;
* :mod:`repro.cache.decorators` — the :func:`~repro.cache.decorators.cached`
  wrapper for read-through memoization of functions and methods;
* :mod:`repro.cache.distributed` — the
  :class:`~repro.cache.distributed.CacheInvalidationRelay` that republishes
  local invalidation tags over the monitoring message bus (and applies
  remote ones), keeping multi-server deployments coherent.
"""

from repro.cache.core import MISSING, NEGATIVE, CacheRegistry, CacheStats, TTLLRUCache
from repro.cache.decorators import cached
from repro.cache.distributed import CacheInvalidationRelay
from repro.cache.invalidation import InvalidationBus, invalidate_all

__all__ = [
    "MISSING",
    "NEGATIVE",
    "CacheRegistry",
    "CacheStats",
    "TTLLRUCache",
    "CacheInvalidationRelay",
    "InvalidationBus",
    "cached",
    "invalidate_all",
]
