"""The replica broker: best-replica selection with read failover.

The broker is the consumer-side face of the catalogue, used by the file
service and the client helpers.  Given an LFN it ranks the usable replicas —
prefer the local storage element (no network hop), then the least-loaded
element, with the element name as a deterministic tiebreak — and serves reads
against that order: when a replica fails mid-flight the broker records the
error and transparently retries the *same byte range* on the next candidate,
so a dying storage element costs the caller latency, not a failed read.

Verified reads additionally check the assembled bytes against the catalogue
checksum; a mismatch quarantines the offending replica before failing over,
so corrupt copies are read at most once.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.model import (Replica, ReplicaError, ReplicaState)
from repro.replica.storage import StorageElement

__all__ = ["ReplicaBroker"]


class ReplicaBroker:
    """Resolves logical file names onto the best physical replica."""

    def __init__(self, catalogue: ReplicaCatalogue,
                 elements: Mapping[str, StorageElement], *,
                 local_se: str | None = None) -> None:
        self.catalogue = catalogue
        self.elements = elements
        self.local_se = local_se
        self.failovers = 0
        self.reads = 0

    # -- selection -----------------------------------------------------------
    def candidates(self, lfn: str, *,
                   proxy: bool = True) -> list[tuple[Replica, StorageElement]]:
        """Usable replicas of ``lfn``, best first.

        ``proxy=False`` restricts the ranking to elements whose bytes this
        server reaches directly (never through a peer server).  Reads that
        arrive *from* a peer's remote element must resolve this way: each
        server in a proxy chain consulting its own possibly-stale catalogue
        can otherwise bounce a read around the fabric — and, on a bounded
        request executor, a cycle of servers proxying to each other deadlocks
        the whole fleet until client timeouts unwind it.  Proxying is a
        single hop by construction: the peer either serves bytes it can
        reach itself or fails fast so the first broker's failover moves on.
        """

        ranked: list[tuple[tuple, Replica, StorageElement]] = []
        for replica in self.catalogue.replicas(lfn, state=ReplicaState.ACTIVE):
            element = self.elements.get(replica.storage_element)
            if element is None or not element.available:
                continue
            if not proxy and element.is_remote:
                continue
            rank = (0 if element.name == self.local_se else 1,
                    element.load, element.name)
            ranked.append((rank, replica, element))
        ranked.sort(key=lambda item: item[0])
        return [(replica, element) for _, replica, element in ranked]

    def resolve(self, lfn: str, *,
                proxy: bool = True) -> tuple[Replica, StorageElement]:
        """The best replica of ``lfn``; raises when none is usable."""

        candidates = self.candidates(lfn, proxy=proxy)
        if not candidates:
            raise ReplicaError(f"no usable replica for {lfn}")
        return candidates[0]

    # -- reads ---------------------------------------------------------------
    def read(self, lfn: str, offset: int = 0, length: int = -1, *,
             proxy: bool = True) -> bytes:
        """Read a byte range, failing over across replicas on errors."""

        self.reads += 1
        errors: list[str] = []
        for replica, element in self.candidates(lfn, proxy=proxy):
            try:
                return element.read(replica.pfn, offset, length)
            except ReplicaError as exc:
                self.catalogue.note_error(lfn, replica.storage_element, str(exc))
                errors.append(f"{replica.storage_element}: {exc}")
                self.failovers += 1
        raise ReplicaError(
            f"every replica of {lfn} failed: {'; '.join(errors) or 'none usable'}")

    def read_verified(self, lfn: str) -> bytes:
        """Read the whole file and verify it against the catalogue checksum.

        A replica that serves bytes with the wrong digest is quarantined and
        the read fails over to the next candidate.
        """

        self.reads += 1
        entry = self.catalogue.entry(lfn)
        expected = entry["checksum"]
        errors: list[str] = []
        for replica, element in self.candidates(lfn):
            try:
                data = element.read(replica.pfn)
            except ReplicaError as exc:
                self.catalogue.note_error(lfn, replica.storage_element, str(exc))
                errors.append(f"{replica.storage_element}: {exc}")
                self.failovers += 1
                continue
            digest = hashlib.md5(data).hexdigest()
            if expected and digest != expected:
                self.catalogue.quarantine(
                    lfn, replica.storage_element,
                    error=f"read verification failed: {digest} != {expected}")
                errors.append(f"{replica.storage_element}: checksum mismatch "
                              f"(quarantined)")
                self.failovers += 1
                continue
            return data
        raise ReplicaError(
            f"every replica of {lfn} failed verification: "
            f"{'; '.join(errors) or 'none usable'}")

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        return {"reads": self.reads, "failovers": self.failovers,
                "local_se": self.local_se or ""}
