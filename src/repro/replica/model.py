"""Data model of the replica subsystem.

The grid data model the paper's SRM citation assumes (Shoshani et al.) is a
two-level namespace: a *logical file name* (LFN) identifies the dataset the
physicist asked for, and one or more *physical file names* (PFNs) identify
byte-identical copies of it on concrete storage elements.  The POOL/RLS
catalogues of the 2005 LHC data challenges maintained exactly this mapping;
:mod:`repro.replica` reproduces it on the Clarens substrate.

This module holds the passive records: :class:`Replica` (one physical copy),
:class:`ReplicaState` (its health), and :class:`TransferRequest` (one queued
or running copy operation between storage elements).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = [
    "ReplicaError",
    "ReplicaNotFoundError",
    "ReplicaConflictError",
    "ReplicaState",
    "Replica",
    "TransferState",
    "TransferRequest",
]


class ReplicaError(Exception):
    """Base class for replica-layer failures."""


class ReplicaNotFoundError(ReplicaError):
    """The LFN (or the replica on the named storage element) does not exist."""


class ReplicaConflictError(ReplicaError):
    """A concurrent modification or an inconsistent registration was refused."""


class ReplicaState(str, Enum):
    """Health of one physical replica."""

    #: Registered and believed good; eligible for reads and as a copy source.
    ACTIVE = "active"
    #: A transfer is writing this replica; not yet readable.
    COPYING = "copying"
    #: Failed checksum verification (or repeated reads); never selected until
    #: an operator re-verifies it.
    QUARANTINED = "quarantined"


@dataclass
class Replica:
    """One physical copy of a logical file."""

    lfn: str
    storage_element: str
    pfn: str
    size: int
    checksum: str
    state: ReplicaState = ReplicaState.ACTIVE
    registered_at: float = field(default_factory=time.time)
    last_error: str = ""

    def to_record(self) -> dict[str, Any]:
        return {
            "lfn": self.lfn,
            "storage_element": self.storage_element,
            "pfn": self.pfn,
            "size": self.size,
            "checksum": self.checksum,
            "state": self.state.value,
            "registered_at": self.registered_at,
            "last_error": self.last_error,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Replica":
        return cls(
            lfn=record["lfn"],
            storage_element=record["storage_element"],
            pfn=record["pfn"],
            size=int(record["size"]),
            checksum=record["checksum"],
            state=ReplicaState(record.get("state", ReplicaState.ACTIVE.value)),
            registered_at=float(record.get("registered_at", 0.0)),
            last_error=record.get("last_error", ""),
        )


class TransferState(str, Enum):
    """Lifecycle of one transfer request."""

    QUEUED = "queued"
    RUNNING = "running"
    #: Failed at least once; waiting out the backoff before re-running.
    RETRYING = "retrying"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (TransferState.DONE, TransferState.FAILED,
                        TransferState.CANCELLED)


@dataclass
class TransferRequest:
    """One replicate operation moving an LFN between storage elements."""

    transfer_id: int
    lfn: str
    dst_se: str
    #: The source the caller pinned ("" lets the engine choose per attempt).
    requested_src_se: str = ""
    #: The source the engine actually read from on the last attempt.
    src_se: str = ""
    priority: int = 5              # lower value drains first
    owner_dn: str = ""
    state: TransferState = TransferState.QUEUED
    attempts: int = 0
    max_attempts: int = 3
    bytes_total: int = 0
    bytes_copied: int = 0
    throughput_bps: float = 0.0
    error: str = ""
    #: The serialised trace context (``trace_id;span_id``) of the operation
    #: that submitted this transfer; "" when the submitter was untraced.
    #: Worker threads re-activate it per attempt so a replication chain
    #: (including policy heals triggered by its events) stays one trace.
    trace: str = ""
    created: float = field(default_factory=time.time)
    started: float = 0.0
    finished: float = 0.0

    def to_record(self) -> dict[str, Any]:
        return {
            "transfer_id": self.transfer_id,
            "lfn": self.lfn,
            "src_se": self.src_se,
            "dst_se": self.dst_se,
            "requested_src_se": self.requested_src_se,
            "priority": self.priority,
            "owner_dn": self.owner_dn,
            "state": self.state.value,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "bytes_total": self.bytes_total,
            "bytes_copied": self.bytes_copied,
            "throughput_bps": self.throughput_bps,
            "error": self.error,
            "trace": self.trace,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "TransferRequest":
        """Rebuild a request from a journalled record (the replay path)."""

        return cls(
            transfer_id=int(record["transfer_id"]),
            lfn=record["lfn"],
            dst_se=record["dst_se"],
            requested_src_se=record.get("requested_src_se", ""),
            src_se=record.get("src_se", ""),
            priority=int(record.get("priority", 5)),
            owner_dn=record.get("owner_dn", ""),
            state=TransferState(record.get("state", TransferState.QUEUED.value)),
            attempts=int(record.get("attempts", 0)),
            max_attempts=int(record.get("max_attempts", 3)),
            bytes_total=int(record.get("bytes_total", 0)),
            bytes_copied=int(record.get("bytes_copied", 0)),
            throughput_bps=float(record.get("throughput_bps", 0.0)),
            error=record.get("error", ""),
            trace=record.get("trace", ""),
            created=float(record.get("created", 0.0)),
            started=float(record.get("started", 0.0)),
            finished=float(record.get("finished", 0.0)),
        )
