"""The asynchronous transfer engine.

Replication requests land on a prioritised queue (lower priority value
drains first, FIFO within a priority) and are drained by a configurable pool
of worker threads.  Each transfer:

1. claims the destination slot in the catalogue (a ``COPYING`` replica, so
   two requests cannot write the same copy);
2. streams the bytes from the chosen source element to the destination,
   computing an MD5 over exactly the bytes written;
3. verifies that digest against the catalogue checksum *end to end* — a
   mismatch quarantines the source replica (its bytes are what failed) and
   the retry picks a different source;
4. retries transient failures with exponential backoff until
   ``max_attempts`` is exhausted;
5. publishes queued/started/progress/done/failed events (with byte counts
   and throughput) onto the monitoring
   :class:`~repro.monitoring.bus.MessageBus` under ``replica.transfer.*``;
   quarantining a source additionally publishes
   ``replica.transfer.quarantine`` carrying the attempt count, so policies
   and dashboards can tell a first failure from exhaustion.

With a :class:`~repro.replica.journal.TransferJournal` attached the engine
write-ahead-journals every enqueue/retry and discharges rows on terminal
states; :meth:`TransferEngine.recover` (called by :meth:`start`) replays the
journal after a crash: stale ``COPYING`` claims left by dead workers are
reclaimed (partial destination bytes deleted, completed-but-unactivated
bytes adopted) and the requests re-enter the queue with their attempt
budgets intact.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Iterator, Mapping

from repro.core.faults import FAULTS
from repro.monitoring.bus import MessageBus
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.journal import TransferJournal
from repro.replica.model import (ReplicaConflictError, ReplicaError,
                                 ReplicaNotFoundError, ReplicaState,
                                 TransferRequest, TransferState)
from repro.replica.storage import DEFAULT_CHUNK, StorageElement
from repro.telemetry.trace import TraceContext, current_trace, use_trace

__all__ = ["TransferEngine"]


class TransferEngine:
    """A prioritised, retrying, checksum-verifying replica copier."""

    def __init__(self, catalogue: ReplicaCatalogue,
                 elements: Mapping[str, StorageElement], *,
                 workers: int = 2, max_attempts: int = 3,
                 retry_delay: float = 0.05, chunk_size: int = DEFAULT_CHUNK,
                 progress_bytes: int = 4 << 20,
                 bus: MessageBus | None = None, source: str = "",
                 journal: TransferJournal | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if retry_delay < 0:
            raise ValueError("retry_delay cannot be negative")
        self.catalogue = catalogue
        self.elements = elements
        self.workers = workers
        self.max_attempts = max_attempts
        self.retry_delay = retry_delay
        self.journal = journal
        self.chunk_size = chunk_size
        self.progress_bytes = progress_bytes
        self.bus = bus
        self.source = source
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._recover_lock = threading.Lock()
        self._queue: list[tuple[int, int, int]] = []   # (priority, seq, id)
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._requests: dict[int, TransferRequest] = {}
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self.transfers_completed = 0
        self.transfers_failed = 0
        self.transfers_recovered = 0
        self.bytes_transferred = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        self.recover()
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"replica-transfer-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, *, timeout: float = 5.0) -> None:
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()

    @property
    def running(self) -> bool:
        return bool(self._threads)

    # -- submission ----------------------------------------------------------
    def submit(self, lfn: str, dst_se: str, *, src_se: str = "",
               priority: int = 5, owner_dn: str = "") -> TransferRequest:
        """Queue a replication of ``lfn`` onto ``dst_se``."""

        if dst_se not in self.elements:
            raise ReplicaNotFoundError(f"unknown storage element {dst_se!r}")
        if src_se and src_se not in self.elements:
            raise ReplicaNotFoundError(f"unknown storage element {src_se!r}")
        entry = self.catalogue.entry(lfn)       # raises for unknown LFNs
        # Capture the submitter's ambient trace (a traced RPC, or the worker
        # whose events triggered a policy heal) so the asynchronous copy —
        # and everything it causes — stays part of the same trace.
        ambient = current_trace()
        request = TransferRequest(transfer_id=next(self._ids), lfn=entry["lfn"],
                                  dst_se=dst_se, requested_src_se=src_se,
                                  src_se=src_se,
                                  priority=int(priority), owner_dn=owner_dn,
                                  max_attempts=self.max_attempts,
                                  bytes_total=int(entry["size"]),
                                  trace=ambient.to_header() if ambient else "")
        with self._lock:
            self._requests[request.transfer_id] = request
        # Write-ahead: the journal row lands before the request is poppable,
        # so a crash after this point can never lose the submission.
        self._journal(request)
        # Publish before the request becomes poppable, so consumers always
        # see "queued" strictly before "started"/"done" for a transfer.
        self._publish("queued", request)
        with self._cond:
            heapq.heappush(self._queue, (request.priority, next(self._seq),
                                         request.transfer_id))
            self._cond.notify()
        return request

    def cancel(self, transfer_id: int) -> TransferRequest:
        """Cancel a transfer that is not currently running.

        Covers both QUEUED requests and RETRYING ones waiting out their
        backoff — the retry path re-checks the state before re-queueing.
        """

        request = self.get(transfer_id)
        with self._cond:
            if request.state in (TransferState.QUEUED, TransferState.RETRYING):
                request.state = TransferState.CANCELLED
                request.finished = time.time()
                self._cond.notify_all()
        if request.state is TransferState.CANCELLED:
            self._journal(request)
            self._publish("cancelled", request)
        return request

    # -- durability ----------------------------------------------------------
    def _journal(self, request: TransferRequest) -> None:
        """Journal the request's current state (discharges terminal states)."""

        if self.journal is not None:
            self.journal.record(request)

    def recover(self) -> list[TransferRequest]:
        """Replay journalled transfers left behind by a previous engine.

        Idempotent and callable while running: entries whose id is already
        known are skipped, as are entries whose destination element has not
        been registered yet (they stay journalled so a later ``recover`` —
        the service re-runs one whenever an element is added — can pick them
        up).  Before a request re-enters the queue, any ``COPYING`` claim its
        dead worker left on the destination is reclaimed: completed bytes are
        left for the adoption path, partial bytes are deleted.

        The whole replay is serialised under a dedicated mutex, so two
        concurrent calls (e.g. elements being attached from two threads)
        cannot double-replay a row — and therefore cannot reclaim a claim
        that now belongs to a replayed transfer the other call just queued.
        """

        if self.journal is None:
            return []
        with self._recover_lock:
            return self._recover_locked()

    def _recover_locked(self) -> list[TransferRequest]:
        entries = self.journal.pending()
        if not entries:
            return []
        # Never hand out an id a journalled transfer already owns.
        floor = self.journal.max_transfer_id()
        with self._lock:
            self._ids = itertools.count(max(floor + 1, next(self._ids)))
        recovered: list[TransferRequest] = []
        for row in entries:
            FAULTS.fire("replica.transfer.recover_row",
                        transfer_id=int(row["transfer_id"]), lfn=row["lfn"],
                        dst_se=row["dst_se"], source=self.source)
            with self._lock:
                if int(row["transfer_id"]) in self._requests:
                    continue
            if row["dst_se"] not in self.elements:
                continue                      # element not attached yet
            request = TransferRequest.from_record(row)
            if request.state is TransferState.RUNNING:
                # The crashed attempt never finished; do not double-charge it.
                request.attempts = max(0, request.attempts - 1)
            request.state = TransferState.QUEUED
            request.bytes_copied = 0
            request.throughput_bps = 0.0
            self._reclaim_destination(request)
            with self._lock:
                self._requests[request.transfer_id] = request
            self._journal(request)
            self.transfers_recovered += 1
            recovered.append(request)
            self._publish("recovered", request)
            with self._cond:
                heapq.heappush(self._queue, (request.priority, next(self._seq),
                                             request.transfer_id))
                self._cond.notify()
        return recovered

    def _reclaim_destination(self, request: TransferRequest) -> None:
        """Release a stale ``COPYING`` claim a dead transfer left behind.

        Only called from :meth:`recover`, before the replayed request can
        run, so the claim being reclaimed is guaranteed to belong to the
        journalled (dead) transfer — live transfers of this engine have not
        started yet, and the journal only ever holds this engine's requests.
        Fully-written bytes are kept (the retry's adoption path registers
        them without re-copying); partial bytes are deleted.
        """

        try:
            entry = self.catalogue.entry(request.lfn)
        except ReplicaError:
            return
        record = entry["replicas"].get(request.dst_se)
        if record is None or record["state"] != ReplicaState.COPYING.value:
            return
        FAULTS.fire("replica.transfer.reclaim", stage="begin",
                    transfer_id=request.transfer_id, lfn=request.lfn,
                    dst_se=request.dst_se)
        dst = self.elements.get(request.dst_se)
        try:
            if dst is not None and dst.exists(record["pfn"]):
                expected = entry["checksum"]
                if not expected or dst.checksum(record["pfn"]) != expected:
                    dst.delete(record["pfn"])
        except ReplicaError:
            pass                              # best-effort; the retry re-checks
        FAULTS.fire("replica.transfer.reclaim", stage="drop",
                    transfer_id=request.transfer_id, lfn=request.lfn,
                    dst_se=request.dst_se)
        try:
            self.catalogue.drop(request.lfn, request.dst_se)
        except ReplicaError:
            pass

    # -- inspection ----------------------------------------------------------
    def get(self, transfer_id: int) -> TransferRequest:
        with self._lock:
            request = self._requests.get(int(transfer_id))
        if request is None:
            raise ReplicaNotFoundError(f"no such transfer: {transfer_id}")
        return request

    def transfers(self) -> list[TransferRequest]:
        with self._lock:
            return sorted(self._requests.values(), key=lambda r: r.transfer_id)

    def wait(self, transfer_id: int, *, timeout: float = 30.0) -> TransferRequest:
        """Block until the transfer reaches a terminal state."""

        deadline = self._clock() + timeout
        request = self.get(transfer_id)
        with self._cond:
            while not request.state.terminal:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise ReplicaError(
                        f"transfer {transfer_id} still {request.state.value} "
                        f"after {timeout}s")
                self._cond.wait(timeout=remaining)
        return request

    def stats(self) -> dict:
        with self._lock:
            queued = sum(1 for r in self._requests.values()
                         if r.state is TransferState.QUEUED)
            running = sum(1 for r in self._requests.values()
                          if r.state is TransferState.RUNNING)
        return {
            "workers": self.workers,
            "queued": queued,
            "running": running,
            "completed": self.transfers_completed,
            "failed": self.transfers_failed,
            "recovered": self.transfers_recovered,
            "bytes_transferred": self.bytes_transferred,
        }

    # -- the worker ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            with self._cond:
                while not self._queue and not self._stop.is_set():
                    self._cond.wait(timeout=0.5)
                if self._stop.is_set():
                    return
                _, _, transfer_id = heapq.heappop(self._queue)
                request = self._requests[transfer_id]
                if request.state is not TransferState.QUEUED:
                    continue                      # cancelled while queued
                request.state = TransferState.RUNNING
                request.attempts += 1
                if not request.started:
                    request.started = time.time()
            self._journal(request)
            self._run_transfer(request)

    def _run_transfer(self, request: TransferRequest) -> None:
        # Context vars do not cross thread boundaries: re-activate the
        # submitter's trace for this attempt, so remote reads (which attach
        # the trace header), bus events and any heal they trigger link back
        # to the operation that queued the transfer.
        trace = TraceContext.from_header(request.trace)
        if trace is None:
            self._run_attempt(request)
        else:
            with use_trace(trace):
                self._run_attempt(request)

    def _run_attempt(self, request: TransferRequest) -> None:
        self._publish("started", request)
        try:
            self._copy_once(request)
        except ReplicaError as exc:
            self._handle_failure(request, str(exc))
        except Exception as exc:  # noqa: BLE001 - worker must never die
            self._handle_failure(request, f"{type(exc).__name__}: {exc}")
        else:
            with self._cond:
                request.state = TransferState.DONE
                request.finished = time.time()
                self.transfers_completed += 1
                self.bytes_transferred += request.bytes_copied
                self._cond.notify_all()
            self._journal(request)
            self._publish("done", request)

    def _copy_once(self, request: TransferRequest) -> None:
        entry = self.catalogue.entry(request.lfn)
        dst = self.elements[request.dst_se]
        dst.require_available()
        existing = entry["replicas"].get(request.dst_se)
        if existing is not None:
            if existing["state"] == ReplicaState.ACTIVE.value:
                request.bytes_copied = 0
                request.error = ""
                return                            # already replicated: no-op
            if existing["state"] == ReplicaState.QUARANTINED.value:
                # Never silently overwrite evidence; an operator must drop
                # the quarantined copy before re-replicating onto this SE.
                raise ReplicaError(
                    f"{request.lfn} has a quarantined replica on "
                    f"{request.dst_se}; drop it before replicating")
            # COPYING: another transfer holds the claim.  Retry later — it
            # will either finish (we no-op on ACTIVE) or fail (its cleanup
            # releases the claim and we take it).
            raise ReplicaError(
                f"destination busy: {request.lfn} is being copied onto "
                f"{request.dst_se} by another transfer")
        dst_pfn = request.lfn
        if dst.exists(dst_pfn):
            # The path holds bytes that are not a registered replica (e.g. a
            # catalogue drop that left the physical copy behind, or an
            # unrelated user file).  Adopt them when they are exactly the
            # catalogued bytes; never overwrite or delete foreign data.
            digest = dst.checksum(dst_pfn)
            if entry["checksum"] and digest == entry["checksum"]:
                # Destination-side bookkeeping first: for a remote element
                # this registers the bytes in the *peer's* catalogue (a
                # crashed transfer may have uploaded them without ever
                # registering), and it is idempotent — so a failure here
                # retries the whole adoption instead of leaving this server
                # claiming a replica the peer does not know it holds.
                dst.adopt(dst_pfn, size=int(entry["size"]), checksum=digest)
                try:
                    self.catalogue.register(request.lfn, request.dst_se,
                                            dst_pfn, size=int(entry["size"]),
                                            checksum=digest,
                                            state=ReplicaState.ACTIVE,
                                            if_absent=True)
                except ReplicaConflictError as exc:
                    raise ReplicaError(f"destination busy: {exc}") from exc
                request.bytes_copied = 0
                request.error = ""
                return                            # adopted in place: no copy
            raise ReplicaError(
                f"path {dst_pfn} on {request.dst_se} already holds different "
                f"data (md5 {digest}); refusing to overwrite it")
        src_name = self._pick_source(request, entry)
        request.src_se = src_name
        src = self.elements[src_name]
        src_replica = self.catalogue.replica_on(request.lfn, src_name)

        # Claim the destination slot atomically; a concurrent transfer for
        # the same (lfn, dst) loses this race and retries into the
        # busy/no-op logic above.  The failure cleanup below only ever
        # removes *this* claim — it runs strictly after a successful
        # if_absent registration.
        try:
            self.catalogue.register(request.lfn, request.dst_se, dst_pfn,
                                    size=int(entry["size"]),
                                    checksum=entry["checksum"],
                                    state=ReplicaState.COPYING,
                                    if_absent=True)
        except ReplicaConflictError as exc:
            raise ReplicaError(f"destination busy: {exc}") from exc

        started = self._clock()
        request.bytes_copied = 0
        try:
            with src.transfer_slot(), dst.transfer_slot():
                chunks = self._observed(request, src.open_reader(
                    src_replica.pfn, chunk_size=self.chunk_size))
                written, digest = dst.write_stream(dst_pfn, chunks)
            elapsed = max(self._clock() - started, 1e-9)
            request.throughput_bps = written / elapsed
            expected = entry["checksum"]
            if written != int(entry["size"]) or (expected and digest != expected):
                # End-to-end verification failed: the bytes the source handed
                # over are not the catalogued bytes.  Quarantine the source so
                # the retry (and every future read) avoids it.
                quarantine_error = (f"checksum mismatch during transfer "
                                    f"{request.transfer_id}: got {digest} "
                                    f"({written} bytes), expected {expected} "
                                    f"({entry['size']} bytes)")
                self.catalogue.quarantine(request.lfn, src_name,
                                          error=quarantine_error)
                # The attempt count in the payload lets consumers distinguish
                # a first failure (attempts=1, retry coming) from exhaustion.
                self._publish("quarantine", request,
                              quarantined_se=src_name,
                              quarantine_error=quarantine_error)
                raise ReplicaError(
                    f"checksum mismatch copying {request.lfn} from {src_name}: "
                    f"{digest} != {expected}; source replica quarantined")
            self.catalogue.set_state(request.lfn, request.dst_se,
                                     ReplicaState.ACTIVE)
            request.error = ""
        except Exception:
            # Remove the partial destination copy and its claim.
            try:
                dst.delete(dst_pfn)
            except ReplicaError:
                pass
            try:
                self.catalogue.drop(request.lfn, request.dst_se)
            except ReplicaNotFoundError:
                pass
            raise

    def _pick_source(self, request: TransferRequest, entry: dict) -> str:
        candidates = []
        for se_name, record in entry["replicas"].items():
            if se_name == request.dst_se:
                continue
            if record["state"] != ReplicaState.ACTIVE.value:
                continue
            element = self.elements.get(se_name)
            if element is None or not element.available:
                continue
            candidates.append(element)
        if request.requested_src_se:
            if any(e.name == request.requested_src_se for e in candidates):
                return request.requested_src_se
            raise ReplicaError(
                f"{request.lfn} has no usable replica on requested source "
                f"{request.requested_src_se!r}")
        if not candidates:
            raise ReplicaError(f"{request.lfn} has no usable source replica")
        return min(candidates, key=lambda e: (e.load, e.name)).name

    def _observed(self, request: TransferRequest,
                  chunks: Iterator[bytes]) -> Iterator[bytes]:
        """Pass chunks through, tracking bytes and publishing progress."""

        since_publish = 0
        for chunk in chunks:
            request.bytes_copied += len(chunk)
            since_publish += len(chunk)
            if since_publish >= self.progress_bytes:
                since_publish = 0
                self._publish("progress", request)
            yield chunk

    def _handle_failure(self, request: TransferRequest, error: str) -> None:
        request.error = error
        if request.attempts < request.max_attempts and not self._stop.is_set():
            with self._cond:
                request.state = TransferState.RETRYING
            self._journal(request)
            self._publish("retry", request)
            # Exponential backoff before the attempt re-enters the queue; a
            # stop request cuts the wait short.
            backoff = self.retry_delay * (2 ** (request.attempts - 1))
            if backoff > 0:
                self._stop.wait(backoff)
            with self._cond:
                if request.state is not TransferState.RETRYING:
                    return                # cancelled during the backoff
                if self._stop.is_set():
                    request.state = TransferState.FAILED
                    request.finished = time.time()
                    self.transfers_failed += 1
                    self._cond.notify_all()
                else:
                    request.state = TransferState.QUEUED
                    heapq.heappush(self._queue,
                                   (request.priority, next(self._seq),
                                    request.transfer_id))
                    self._cond.notify()
            if request.state is TransferState.FAILED:
                # A stop mid-backoff fails the attempt for *this* process,
                # but the journal row survives so a restart replays it.
                self._publish("failed", request)
            else:
                self._journal(request)
            return
        with self._cond:
            request.state = TransferState.FAILED
            request.finished = time.time()
            self.transfers_failed += 1
            self._cond.notify_all()
        self._journal(request)
        self._publish("failed", request)

    # -- monitoring ----------------------------------------------------------
    def _publish(self, event: str, request: TransferRequest,
                 **extra: object) -> None:
        if self.bus is None:
            return
        payload = request.to_record()
        payload["event"] = event
        payload.update(extra)
        self.bus.publish(f"replica.transfer.{event}", payload,
                         source=self.source)
