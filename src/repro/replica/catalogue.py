"""The replica catalogue: logical file name → physical replicas.

One :class:`~repro.database.table.Table` row per LFN, holding the file's
canonical size/checksum, a monotonically increasing *version*, and the set of
replicas keyed by storage-element name.  Every mutation happens under a
striped per-LFN lock and bumps the version, so concurrent registrations and
deletions of the same LFN serialise cleanly while different LFNs proceed in
parallel; callers that read an entry, decide, then write back can pass the
version they saw (``expected_version``) and get a
:class:`~repro.replica.model.ReplicaConflictError` instead of silently
clobbering a concurrent change — the optimistic-concurrency contract the RLS
catalogues exposed to grid clients.

With a monitoring :class:`~repro.monitoring.bus.MessageBus` attached, every
transition *into* quarantine publishes a ``replica.quarantine`` event —
regardless of who quarantined the copy (the transfer engine's end-to-end
verification, the broker's verified reads, or an operator's ``replica.verify``)
— which is what the auto-heal policy engine subscribes to.  Events are
published strictly after the stripe lock is released, so synchronous
subscribers may safely re-enter the catalogue.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import TYPE_CHECKING, Any

from repro.database import Database
from repro.replica.model import (Replica, ReplicaConflictError,
                                 ReplicaNotFoundError, ReplicaState)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.bus import MessageBus

__all__ = ["ReplicaCatalogue"]


def _normalize_lfn(lfn: str) -> str:
    cleaned = "/" + str(lfn).strip().strip("/")
    if cleaned == "/" or ".." in cleaned.split("/"):
        raise ReplicaNotFoundError(f"invalid logical file name {lfn!r}")
    return cleaned


class ReplicaCatalogue:
    """Versioned LFN → replica mapping persisted on the database engine."""

    def __init__(self, db: Database, *, table_name: str = "replica_catalogue",
                 lock_stripes: int = 16, bus: "MessageBus | None" = None,
                 source: str = "") -> None:
        self._table = db.table(table_name)
        self._stripes = [threading.Lock() for _ in range(max(1, lock_stripes))]
        self.bus = bus
        self.source = source

    def _lock_for(self, lfn: str) -> threading.Lock:
        return self._stripes[zlib.crc32(lfn.encode()) % len(self._stripes)]

    @staticmethod
    def _copy_entry(record: dict[str, Any]) -> dict[str, Any]:
        """A private copy of a catalogue row.

        ``Table.get`` only copies the outer dict, so the nested replica
        records would otherwise alias the stored state — mutating a returned
        entry (or a mutator's working copy) must never touch the catalogue
        until :meth:`_commit` writes it back.
        """

        entry = dict(record)
        entry["replicas"] = {se: dict(r) for se, r in record["replicas"].items()}
        return entry

    def _load(self, lfn: str) -> dict[str, Any] | None:
        record = self._table.get(lfn, None)
        return None if record is None else self._copy_entry(record)

    # -- reads ---------------------------------------------------------------
    def entry(self, lfn: str) -> dict[str, Any]:
        """The full catalogue row for ``lfn`` (a deep-enough copy)."""

        lfn = _normalize_lfn(lfn)
        record = self._load(lfn)
        if record is None:
            raise ReplicaNotFoundError(f"no catalogue entry for {lfn}")
        return record

    def version(self, lfn: str) -> int:
        return int(self.entry(lfn)["version"])

    def replicas(self, lfn: str, *, state: ReplicaState | None = None) -> list[Replica]:
        """All replicas of ``lfn``, optionally filtered by state."""

        entry = self.entry(lfn)
        found = [Replica.from_record(r) for r in entry["replicas"].values()]
        if state is not None:
            found = [r for r in found if r.state is state]
        return sorted(found, key=lambda r: r.storage_element)

    def replica_on(self, lfn: str, se: str) -> Replica:
        entry = self.entry(lfn)
        record = entry["replicas"].get(se)
        if record is None:
            raise ReplicaNotFoundError(f"{entry['lfn']} has no replica on {se!r}")
        return Replica.from_record(record)

    def exists(self, lfn: str) -> bool:
        try:
            self.entry(lfn)
            return True
        except ReplicaNotFoundError:
            return False

    def lfns(self, prefix: str = "/") -> list[str]:
        prefix = "/" + prefix.strip("/")
        keys = self._table.keys()
        if prefix == "/":
            return sorted(keys)
        return sorted(k for k in keys
                      if k == prefix or k.startswith(prefix.rstrip("/") + "/"))

    def __len__(self) -> int:
        return len(self._table)

    def digest(self) -> dict[str, int]:
        """LFN → version for every entry (the anti-entropy exchange unit).

        One integer per LFN is all a fabric peer needs to decide which
        entries changed since its last sync round; full rows are fetched
        only for those.
        """

        return {entry["lfn"]: int(entry["version"])
                for entry in self._table.all()}

    # -- mutations -----------------------------------------------------------
    def register(self, lfn: str, se: str, pfn: str, *, size: int, checksum: str,
                 state: ReplicaState = ReplicaState.ACTIVE,
                 expected_version: int | None = None,
                 if_absent: bool = False) -> dict[str, Any]:
        """Add (or refresh) the replica of ``lfn`` on ``se``.

        The first registration fixes the LFN's canonical size and checksum;
        later registrations must match them byte-for-byte — a different
        checksum under the same logical name is a corruption signal, not a
        new version of the file.  With ``if_absent`` an existing replica on
        ``se`` raises :class:`ReplicaConflictError` instead of being
        refreshed, which is how the transfer engine claims a destination
        slot exactly once.
        """

        lfn = _normalize_lfn(lfn)
        if not se or not pfn:
            raise ReplicaConflictError("storage element and pfn must be non-empty")
        with self._lock_for(lfn):
            entry = self._load(lfn)
            if entry is None:
                entry = {"lfn": lfn, "version": 0, "size": int(size),
                         "checksum": checksum, "created": time.time(),
                         "replicas": {}}
            self._check_version(entry, expected_version)
            if if_absent and se in entry["replicas"]:
                raise ReplicaConflictError(
                    f"{lfn} already has a replica on {se!r} "
                    f"(state {entry['replicas'][se]['state']})")
            if checksum and entry["checksum"] and checksum != entry["checksum"]:
                raise ReplicaConflictError(
                    f"checksum {checksum} for {lfn} on {se} does not match the "
                    f"catalogue checksum {entry['checksum']}")
            if int(size) != int(entry["size"]):
                raise ReplicaConflictError(
                    f"size {size} for {lfn} on {se} does not match the "
                    f"catalogue size {entry['size']}")
            replica = Replica(lfn=lfn, storage_element=se, pfn=pfn,
                              size=int(size), checksum=checksum or entry["checksum"],
                              state=state)
            entry["replicas"][se] = replica.to_record()
            return self._commit(entry)

    def drop(self, lfn: str, se: str | None = None, *,
             expected_version: int | None = None) -> dict[str, Any] | None:
        """Remove one replica (or, with ``se=None``, the whole entry).

        Returns the updated entry, or ``None`` when the last replica (or the
        entry itself) was removed.  Dropping an already-absent replica raises
        :class:`ReplicaNotFoundError`, so two racing drops cannot both claim
        success.
        """

        lfn = _normalize_lfn(lfn)
        with self._lock_for(lfn):
            entry = self._load(lfn)
            if entry is None:
                raise ReplicaNotFoundError(f"no catalogue entry for {lfn}")
            self._check_version(entry, expected_version)
            if se is None:
                self._table.delete(lfn)
                return None
            if se not in entry["replicas"]:
                raise ReplicaNotFoundError(f"{lfn} has no replica on {se!r}")
            del entry["replicas"][se]
            if not entry["replicas"]:
                self._table.delete(lfn)
                return None
            return self._commit(entry)

    def set_state(self, lfn: str, se: str, state: ReplicaState, *,
                  error: str = "") -> dict[str, Any]:
        """Change one replica's state (quarantine, reactivate, ...)."""

        lfn = _normalize_lfn(lfn)
        with self._lock_for(lfn):
            entry = self._load(lfn)
            if entry is None or se not in entry["replicas"]:
                raise ReplicaNotFoundError(f"{lfn} has no replica on {se!r}")
            record = entry["replicas"][se]
            newly_quarantined = (state is ReplicaState.QUARANTINED
                                 and record["state"] != state.value)
            record["state"] = state.value
            record["last_error"] = error
            entry = self._commit(entry)
        if newly_quarantined and self.bus is not None:
            self.bus.publish("replica.quarantine", {
                "lfn": lfn,
                "storage_element": se,
                "pfn": entry["replicas"][se]["pfn"],
                "error": error,
                "active_replicas": sum(
                    1 for r in entry["replicas"].values()
                    if r["state"] == ReplicaState.ACTIVE.value),
            }, source=self.source)
        return entry

    def note_error(self, lfn: str, se: str, error: str) -> None:
        """Record a read failure without changing the replica's state.

        Best-effort: a vanished entry (concurrent drop) is not an error here.
        """

        lfn = _normalize_lfn(lfn)
        with self._lock_for(lfn):
            entry = self._load(lfn)
            if entry is None or se not in entry["replicas"]:
                return
            entry["replicas"][se]["last_error"] = error
            self._commit(entry)

    def quarantine(self, lfn: str, se: str, *, error: str) -> dict[str, Any]:
        return self.set_state(lfn, se, ReplicaState.QUARANTINED, error=error)

    # -- helpers -------------------------------------------------------------
    def _check_version(self, entry: dict[str, Any], expected: int | None) -> None:
        if expected is not None and int(entry["version"]) != int(expected):
            raise ReplicaConflictError(
                f"{entry['lfn']} was modified concurrently "
                f"(version {entry['version']}, expected {expected})")

    def _commit(self, entry: dict[str, Any]) -> dict[str, Any]:
        entry["version"] = int(entry["version"]) + 1
        entry["updated"] = time.time()
        self._table.put(entry["lfn"], entry)
        return entry

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        entries = self._table.all()
        by_state: dict[str, int] = {}
        per_se: dict[str, int] = {}
        replica_count = 0
        for entry in entries:
            for se, record in entry["replicas"].items():
                replica_count += 1
                by_state[record["state"]] = by_state.get(record["state"], 0) + 1
                per_se[se] = per_se.get(se, 0) + 1
        return {
            "lfns": len(entries),
            "replicas": replica_count,
            "by_state": by_state,
            "per_storage_element": per_se,
        }
