"""Replica-count policies: keep N healthy copies of every governed file.

The paper's fabric assumed operators re-replicated by hand when a copy went
bad.  The policy engine automates that: a :class:`ReplicaPolicy` binds an LFN
prefix to a target copy count, and the engine keeps every governed logical
file at (or healing toward) that many ``ACTIVE`` replicas:

* **event-driven** — it subscribes to ``replica.quarantine`` (published by
  the catalogue whenever *any* path quarantines a copy) and to
  ``replica.transfer.done``/``failed`` on the monitoring bus, re-evaluating
  the affected LFN immediately;
* **scan-driven** — with ``heal_interval > 0`` a background sweep re-checks
  every governed LFN, catching files that became under-replicated without an
  event (a dropped replica, a policy added after the fact, a heal whose
  retry window passed);
* **deadline-driven** — whenever a heal decision is pushed into the future
  by the anti-flap backoff, a per-LFN timer re-evaluates that file the
  moment its backoff window expires, so failed heals retry on schedule even
  when ``heal_interval`` is 0 (previously they waited for the next bus
  event or sweep).  At most one deadline is pending per LFN, so the timers
  cannot amplify flapping.

Healing is *anti-flap* by construction: in-flight heal transfers count
toward the target (so a second quarantine event for the same LFN schedules
nothing while the first heal runs), and consecutive heal failures back off
exponentially per LFN before another attempt is made.  Decisions publish
``replica.policy.*`` events (``heal_scheduled``, ``healed``, ``backoff``,
``unsatisfiable``) so dashboards can watch the fabric repair itself.

Longest-prefix match picks the governing policy, so a deploy can say
"everything under ``/lfn/cms`` gets 2 copies, but ``/lfn/cms/raw`` gets 3".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.monitoring.bus import Message, MessageBus
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.model import ReplicaError, ReplicaState, TransferState
from repro.replica.transfer import TransferEngine

__all__ = ["ReplicaPolicy", "ReplicaPolicyEngine"]

#: Heals ride the normal transfer queue but behind user-requested work.
HEAL_PRIORITY = 7

#: The owner_dn stamped on heal transfers, so they are attributable.
POLICY_OWNER = "replica-policy"


def _normalize_prefix(prefix: str) -> str:
    cleaned = "/" + str(prefix).strip().strip("/")
    if ".." in cleaned.split("/"):
        raise ValueError(f"invalid policy prefix {prefix!r}")
    return cleaned


def _prefix_matches(prefix: str, lfn: str) -> bool:
    if prefix == "/":
        return True
    return lfn == prefix or lfn.startswith(prefix.rstrip("/") + "/")


@dataclass
class ReplicaPolicy:
    """One prefix-scoped target-copy-count rule."""

    prefix: str
    copies: int
    created: float = field(default_factory=time.time)

    def to_record(self) -> dict[str, Any]:
        return {"prefix": self.prefix, "copies": self.copies,
                "created": self.created}


class ReplicaPolicyEngine:
    """Watches the bus and schedules heal transfers toward the copy target."""

    def __init__(self, catalogue: ReplicaCatalogue, engine: TransferEngine, *,
                 bus: MessageBus | None = None, source: str = "",
                 default_copies: int = 0, heal_interval: float = 0.0,
                 heal_backoff: float = 0.25, max_backoff: float = 30.0,
                 heal_priority: int = HEAL_PRIORITY,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if default_copies < 0:
            raise ValueError("default_copies cannot be negative")
        if heal_interval < 0:
            raise ValueError("heal_interval cannot be negative")
        if heal_backoff < 0:
            raise ValueError("heal_backoff cannot be negative")
        self.catalogue = catalogue
        self.engine = engine
        self.bus = bus
        self.source = source
        self.default_copies = int(default_copies)
        self.heal_interval = heal_interval
        self.heal_backoff = heal_backoff
        self.max_backoff = max_backoff
        self.heal_priority = int(heal_priority)
        self._clock = clock
        self._lock = threading.RLock()
        self._policies: dict[str, ReplicaPolicy] = {}
        #: lfn -> ids of in-flight heal transfers for that lfn.
        self._healing: dict[str, set[int]] = {}
        #: lfn -> (earliest next heal time, consecutive failures).
        self._backoff: dict[str, tuple[float, int]] = {}
        self._subscriptions: list[int] = []
        self._stop = threading.Event()
        self._scan_thread: threading.Thread | None = None
        #: lfn -> pending deadline timer (at most one per LFN).
        self._deadlines: dict[str, threading.Timer] = {}
        self.heals_scheduled = 0
        self.heals_completed = 0
        self.heals_failed = 0
        self.deadline_reevals = 0
        self.sweeps = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Subscribe to the bus and start the periodic sweep (when enabled)."""

        # Unconditionally: a stop()/start() cycle with heal_interval == 0
        # must re-enable the deadline timers, not leave them dead.
        self._stop.clear()
        if self.bus is not None and not self._subscriptions:
            self._subscriptions = [
                self.bus.subscribe("replica.quarantine", self._on_quarantine),
                self.bus.subscribe("replica.dropped", self._on_quarantine),
                self.bus.subscribe("replica.transfer.done", self._on_transfer),
                self.bus.subscribe("replica.transfer.failed", self._on_transfer),
            ]
        if self.heal_interval > 0 and self._scan_thread is None:
            self._scan_thread = threading.Thread(
                target=self._scan_loop, name="replica-policy-scan", daemon=True)
            self._scan_thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._scan_thread is not None:
            self._scan_thread.join(timeout=5.0)
            self._scan_thread = None
        if self.bus is not None:
            for sub_id in self._subscriptions:
                self.bus.unsubscribe(sub_id)
            self._subscriptions = []
        with self._lock:
            timers = list(self._deadlines.values())
            self._deadlines.clear()
        for timer in timers:
            timer.cancel()

    # -- policy table --------------------------------------------------------
    def set_policy(self, prefix: str, copies: int) -> ReplicaPolicy:
        """Bind an LFN prefix to a target copy count (longest prefix wins)."""

        copies = int(copies)
        if copies <= 0:
            raise ValueError("copies must be positive (use drop_policy to remove)")
        policy = ReplicaPolicy(prefix=_normalize_prefix(prefix), copies=copies)
        with self._lock:
            self._policies[policy.prefix] = policy
        return policy

    def drop_policy(self, prefix: str) -> bool:
        with self._lock:
            return self._policies.pop(_normalize_prefix(prefix), None) is not None

    def policies(self) -> list[ReplicaPolicy]:
        with self._lock:
            return sorted(self._policies.values(), key=lambda p: p.prefix)

    def target_for(self, lfn: str) -> int:
        """The copy target governing ``lfn`` (0 = not governed)."""

        with self._lock:
            best: ReplicaPolicy | None = None
            for policy in self._policies.values():
                if not _prefix_matches(policy.prefix, lfn):
                    continue
                if best is None or len(policy.prefix) > len(best.prefix):
                    best = policy
            return best.copies if best is not None else self.default_copies

    # -- the heal decision ---------------------------------------------------
    def evaluate(self, lfn: str) -> dict[str, Any]:
        """Re-check one LFN against its policy; schedule heals if short.

        Returns a decision record (``action`` is one of ``none``,
        ``satisfied``, ``pending``, ``deferred``, ``scheduled``,
        ``unsatisfiable``) — also the payload of the event published.
        """

        with self._lock:
            target = self.target_for(lfn)
            if target <= 0:
                # No longer governed: settle any outstanding heal accounting
                # and forget the LFN.
                if lfn in self._healing:
                    self._prune_inflight(lfn)
                    if not self._healing.get(lfn):
                        self._healing.pop(lfn, None)
                self._backoff.pop(lfn, None)
                return {"lfn": lfn, "action": "none", "target": 0}
            try:
                entry = self.catalogue.entry(lfn)
            except ReplicaError:
                # Dropped from the catalogue: nothing left to govern.
                self._healing.pop(lfn, None)
                self._backoff.pop(lfn, None)
                return {"lfn": lfn, "action": "none", "target": target}
            lfn = entry["lfn"]
            active = [se for se, r in entry["replicas"].items()
                      if r["state"] == ReplicaState.ACTIVE.value]
            inflight = self._prune_inflight(lfn)
            decision: dict[str, Any] = {
                "lfn": lfn, "target": target, "active": len(active),
                "in_flight": len(inflight),
            }
            if len(active) >= target:
                self._backoff.pop(lfn, None)
                decision["action"] = "satisfied"
                # The key's presence (even with an empty id set) marks an LFN
                # the engine was healing; reaching the target closes it out.
                if lfn in self._healing and not inflight:
                    del self._healing[lfn]
                    self._publish("healed", decision)
                return decision
            if len(active) + len(inflight) >= target:
                decision["action"] = "pending"
                return decision
            now = self._clock()
            next_allowed, strikes = self._backoff.get(lfn, (0.0, 0))
            if now < next_allowed:
                decision["action"] = "deferred"
                decision["retry_in"] = round(next_allowed - now, 3)
                decision["strikes"] = strikes
                self._schedule_deadline(lfn, next_allowed - now)
                self._publish("backoff", decision)
                return decision
            needed = target - len(active) - len(inflight)
            candidates = self._heal_candidates(entry)
            scheduled: list[dict[str, Any]] = []
            for element in candidates[:needed]:
                try:
                    request = self.engine.submit(
                        lfn, element.name, priority=self.heal_priority,
                        owner_dn=POLICY_OWNER)
                except ReplicaError as exc:
                    decision.setdefault("errors", []).append(str(exc))
                    continue
                self._healing.setdefault(lfn, set()).add(request.transfer_id)
                self.heals_scheduled += 1
                scheduled.append({"dst_se": element.name,
                                  "transfer_id": request.transfer_id})
            decision["scheduled"] = scheduled
            if scheduled:
                decision["action"] = "scheduled"
                self._publish("heal_scheduled", decision)
            else:
                decision["action"] = "unsatisfiable"
                self._publish("unsatisfiable", decision)
            return decision

    def sweep(self) -> int:
        """Evaluate every governed LFN once; returns how many were checked."""

        checked = 0
        for lfn in self.catalogue.lfns():
            if self._stop.is_set():
                break
            if self.target_for(lfn) <= 0:
                continue
            checked += 1
            try:
                self.evaluate(lfn)
            except Exception:  # noqa: BLE001 - the sweep must never die
                pass
        self.sweeps += 1
        return checked

    # -- internals -----------------------------------------------------------
    def _prune_inflight(self, lfn: str) -> set[int]:
        """Settle terminal heal ids and return the still-live set.

        Terminal heals are *accounted here*, under the policy lock, rather
        than in the bus callback: whichever of a concurrent evaluation or the
        ``replica.transfer.*`` callback prunes the id first records the
        outcome, so a failed heal always bumps the anti-flap backoff exactly
        once — there is no window where a sweep can discard a failure
        silently and hot-loop against a broken destination.
        """

        live: set[int] = set()
        for transfer_id in self._healing.get(lfn, set()):
            try:
                state = self.engine.get(transfer_id).state
            except ReplicaError:
                continue                       # engine forgot it: drop the id
            if not state.terminal:
                live.add(transfer_id)
            elif state is TransferState.DONE:
                self.heals_completed += 1
            else:
                self.heals_failed += 1
                self._bump_backoff(lfn)
        if lfn in self._healing:
            self._healing[lfn] = live
        return live

    def _heal_candidates(self, entry: dict[str, Any]) -> list[Any]:
        """Available elements with no replica of the entry, least loaded first.

        Elements already holding a replica in *any* state are excluded: an
        ACTIVE copy needs no heal, a COPYING slot is claimed, and a
        QUARANTINED copy is evidence an operator must drop first — healing
        happens onto fresh elements only.
        """

        occupied = set(entry["replicas"])
        candidates = [element for name, element in self.engine.elements.items()
                      if name not in occupied and element.available]
        candidates.sort(key=lambda e: (e.load, e.name))
        return candidates

    def _bump_backoff(self, lfn: str) -> None:
        _, strikes = self._backoff.get(lfn, (0.0, 0))
        delay = min(self.heal_backoff * (2 ** strikes), self.max_backoff)
        self._backoff[lfn] = (self._clock() + delay, strikes + 1)
        self._schedule_deadline(lfn, delay)

    # -- deadline re-evaluation ----------------------------------------------
    def _schedule_deadline(self, lfn: str, delay: float) -> None:
        """Arm a one-shot re-evaluation of ``lfn`` once its backoff expires.

        Called with the policy lock held.  At most one deadline is pending
        per LFN (re-arming while one is armed is a no-op), so a burst of
        failures produces a single scheduled retry, not a timer storm.
        """

        if self._stop.is_set() or lfn in self._deadlines:
            return
        timer = threading.Timer(max(delay, 0.0) + 0.01, self._deadline_fire,
                                args=(lfn,))
        timer.daemon = True
        self._deadlines[lfn] = timer
        timer.start()

    def _deadline_fire(self, lfn: str) -> None:
        with self._lock:
            self._deadlines.pop(lfn, None)
        if self._stop.is_set():
            return
        self.deadline_reevals += 1
        try:
            self.evaluate(lfn)
        except Exception:  # noqa: BLE001 - timers must never die loudly
            pass

    # -- bus callbacks -------------------------------------------------------
    def _on_quarantine(self, message: Message) -> None:
        try:
            self.evaluate(message.payload["lfn"])
        except Exception:  # noqa: BLE001 - callbacks run inside publishers
            pass

    def _on_transfer(self, message: Message) -> None:
        try:
            lfn = message.payload.get("lfn", "")
            if not lfn:
                return
            with self._lock:
                governed = self.target_for(lfn) > 0 or lfn in self._healing
            if governed:
                # evaluate() prunes the terminal heal (accounting + backoff)
                # and decides whether more copies are needed.
                self.evaluate(lfn)
        except Exception:  # noqa: BLE001 - callbacks run inside publishers
            pass

    def _scan_loop(self) -> None:
        while not self._stop.wait(timeout=self.heal_interval):
            try:
                self.sweep()
            except Exception:  # pragma: no cover - monitoring must never kill
                pass

    # -- monitoring ----------------------------------------------------------
    def _publish(self, event: str, payload: dict[str, Any]) -> None:
        if self.bus is None:
            return
        record = dict(payload)
        record["event"] = event
        self.bus.publish(f"replica.policy.{event}", record, source=self.source)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "policies": len(self._policies),
                "default_copies": self.default_copies,
                "heals_scheduled": self.heals_scheduled,
                "heals_completed": self.heals_completed,
                "heals_failed": self.heals_failed,
                "healing_lfns": sum(1 for ids in self._healing.values() if ids),
                "backoffs": len(self._backoff),
                "pending_deadlines": len(self._deadlines),
                "deadline_reevals": self.deadline_reevals,
                "sweeps": self.sweeps,
            }
