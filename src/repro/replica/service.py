"""The ``replica`` service: RPC access to the replica subsystem.

Methods are published behind the same session + ACL machinery as every other
Clarens module; in addition, the hierarchical *file* ACLs of section 2.3 are
applied to logical file names (an LFN is a path, so ``/lfn/cms/...`` can be
fenced exactly like a directory tree under the virtual file root):
registration, replication and deletion require ``write`` on the LFN, reads
require ``read``.

The service owns the storage-element map.  Every server exposes its own
virtual file root as the local element (``replica_local_se``), plus the mass
store behind the SRM service when that is registered; tests and deployments
add further elements with :meth:`ReplicaService.add_storage_element` (e.g.
an element per remote site in a multi-server fabric).
"""

from __future__ import annotations

from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, ClarensError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.fileservice.vfs import VirtualFileSystem
from repro.replica.broker import ReplicaBroker
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.model import (ReplicaConflictError, ReplicaError,
                                 ReplicaNotFoundError, ReplicaState)
from repro.replica.storage import (MassStoreStorageElement, StorageElement,
                                   VFSStorageElement)
from repro.replica.transfer import TransferEngine

__all__ = ["ReplicaService"]


class ReplicaConflictFault(ClarensError):
    """Concurrent-modification conflicts surface as a service fault."""


def _translate(exc: ReplicaError) -> ClarensError:
    if isinstance(exc, ReplicaNotFoundError):
        return NotFoundError(str(exc))
    if isinstance(exc, ReplicaConflictError):
        return ReplicaConflictFault(str(exc))
    return ClarensError(str(exc))


class ReplicaService(ClarensService):
    """Replica catalogue, transfer queue and broker behind ``replica.*``."""

    service_name = "replica"

    def __init__(self, server) -> None:
        super().__init__(server)
        config = server.config
        self.catalogue = ReplicaCatalogue(server.db)
        self.elements: dict[str, StorageElement] = {}
        local_name = config.replica_local_se
        self.add_storage_element(
            VFSStorageElement(local_name, VirtualFileSystem(server.file_root)))
        srm_service = server.services.get("srm")
        if srm_service is not None:
            self.add_storage_element(
                MassStoreStorageElement("masstore", srm_service.store))
        self.engine = TransferEngine(
            self.catalogue, self.elements,
            workers=config.replica_transfer_workers,
            max_attempts=config.replica_max_attempts,
            retry_delay=config.replica_retry_delay,
            bus=getattr(server, "message_bus", None),
            source=config.server_name)
        self.broker = ReplicaBroker(self.catalogue, self.elements,
                                    local_se=local_name)
        server.replica_broker = self.broker

    # -- assembly ------------------------------------------------------------
    def add_storage_element(self, element: StorageElement) -> StorageElement:
        if element.name in self.elements:
            raise ValueError(f"storage element {element.name!r} already exists")
        self.elements[element.name] = element
        return element

    def on_start(self) -> None:
        self.engine.start()

    def on_stop(self) -> None:
        self.engine.stop()

    # -- ACL helpers ---------------------------------------------------------
    def _check(self, dn: str | None, lfn: str, operation: str) -> None:
        decision = self.server.acl.check_file(dn or "", lfn, operation)
        if not decision.allowed:
            raise AccessDeniedError(
                f"{operation} access to {lfn} denied: {decision.reason}")

    def _element(self, name: str) -> StorageElement:
        element = self.elements.get(name)
        if element is None:
            raise NotFoundError(f"unknown storage element {name!r}")
        return element

    # -- catalogue methods ---------------------------------------------------
    # Published as ``replica.register``; the Python name differs so it does
    # not shadow ClarensService.register (the framework registration hook).
    @rpc_method("register")
    def register_replica(self, ctx: CallContext, lfn: str, se: str, pfn: str,
                         size: int = -1, checksum: str = "") -> dict[str, Any]:
        """Register a physical replica of ``lfn`` on storage element ``se``.

        When size/checksum are omitted they are computed from the element,
        so registering an uploaded file is one call.  The caller needs
        ``write`` on the LFN *and* ``read`` on the physical path — an LFN is
        a new name for the bytes, so binding one to a file the caller cannot
        read would bypass the file ACLs on the real path.
        """

        dn = ctx.require_dn()
        self._check(dn, lfn, "write")
        self._check(dn, pfn, "read")
        element = self._element(se)
        try:
            if size < 0:
                size = element.size(pfn)
            if not checksum:
                checksum = element.checksum(pfn)
            return self.catalogue.register(lfn, se, pfn, size=int(size),
                                           checksum=checksum)
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def locate(self, ctx: CallContext, lfn: str) -> dict[str, Any]:
        """The catalogue entry for ``lfn``, with replicas ranked best-first."""

        self._check(ctx.dn, lfn, "read")
        try:
            entry = self.catalogue.entry(lfn)
            ranked = [{"storage_element": e.name, "pfn": r.pfn, "load": e.load}
                      for r, e in self.broker.candidates(lfn)]
        except ReplicaError as exc:
            raise _translate(exc) from exc
        entry["best"] = ranked
        return entry

    @rpc_method()
    def drop(self, ctx: CallContext, lfn: str, se: str = "",
             version: int = -1) -> bool:
        """Drop one replica (or the whole entry when ``se`` is empty).

        Passing the ``version`` observed by a prior ``locate`` makes the drop
        conditional: a concurrent modification raises a conflict fault
        instead of removing a replica the caller never saw.
        """

        self._check(ctx.require_dn(), lfn, "write")
        try:
            self.catalogue.drop(lfn, se or None,
                                expected_version=None if version < 0 else version)
        except ReplicaError as exc:
            raise _translate(exc) from exc
        return True

    @rpc_method()
    def stat(self, ctx: CallContext, lfn: str) -> dict[str, Any]:
        """The raw catalogue entry (size, checksum, version, replicas)."""

        self._check(ctx.dn, lfn, "read")
        try:
            return self.catalogue.entry(lfn)
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def ls(self, ctx: CallContext, prefix: str = "/") -> list[str]:
        """Logical file names under a prefix."""

        self._check(ctx.dn, prefix, "read")
        return self.catalogue.lfns(prefix)

    # -- transfers -----------------------------------------------------------
    @rpc_method()
    def replicate(self, ctx: CallContext, lfn: str, dst_se: str,
                  src_se: str = "", priority: int = 5) -> dict[str, Any]:
        """Queue an asynchronous replication of ``lfn`` onto ``dst_se``."""

        self._check(ctx.require_dn(), lfn, "write")
        self._element(dst_se)
        try:
            request = self.engine.submit(lfn, dst_se, src_se=src_se,
                                         priority=int(priority),
                                         owner_dn=ctx.dn or "")
        except ReplicaError as exc:
            raise _translate(exc) from exc
        return request.to_record()

    @rpc_method()
    def status(self, ctx: CallContext, transfer_id: int) -> dict[str, Any]:
        """Status of one transfer (state, bytes, throughput, attempts)."""

        ctx.require_dn()
        try:
            return self.engine.get(int(transfer_id)).to_record()
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def transfers(self, ctx: CallContext) -> list[dict[str, Any]]:
        """All transfers known to this server's engine."""

        ctx.require_dn()
        return [r.to_record() for r in self.engine.transfers()]

    @rpc_method()
    def cancel(self, ctx: CallContext, transfer_id: int) -> dict[str, Any]:
        """Cancel a still-queued transfer."""

        ctx.require_dn()
        try:
            return self.engine.cancel(int(transfer_id)).to_record()
        except ReplicaError as exc:
            raise _translate(exc) from exc

    # -- replica-aware reads -------------------------------------------------
    @rpc_method()
    def read(self, ctx: CallContext, lfn: str, offset: int = 0,
             nbytes: int = -1) -> bytes:
        """Read a byte range through the broker (nearest replica, failover)."""

        self._check(ctx.dn, lfn, "read")
        limit = self.server.config.max_read_bytes
        if nbytes < 0 or nbytes > limit:
            nbytes = limit
        try:
            return self.broker.read(lfn, int(offset), int(nbytes))
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def verify(self, ctx: CallContext, lfn: str, se: str) -> dict[str, Any]:
        """Re-checksum the replica on ``se``; quarantines it on mismatch."""

        self._check(ctx.require_dn(), lfn, "read")
        element = self._element(se)
        try:
            replica = self.catalogue.replica_on(lfn, se)
            entry = self.catalogue.entry(lfn)
            digest = element.checksum(replica.pfn)
            if entry["checksum"] and digest != entry["checksum"]:
                return self.catalogue.quarantine(
                    lfn, se, error=f"verify found {digest}, "
                                   f"expected {entry['checksum']}")
            return self.catalogue.set_state(lfn, se, ReplicaState.ACTIVE)
        except ReplicaError as exc:
            raise _translate(exc) from exc

    # -- operations ----------------------------------------------------------
    @rpc_method()
    def elements_info(self, ctx: CallContext) -> list[dict[str, Any]]:
        """The storage elements this server knows (availability + load)."""

        ctx.require_dn()
        return [e.describe() for e in sorted(self.elements.values(),
                                             key=lambda e: e.name)]

    @rpc_method()
    def set_available(self, ctx: CallContext, se: str,
                      available: bool) -> dict[str, Any]:
        """Enable/disable a storage element (administrators only)."""

        self.server.require_admin(ctx)
        element = self._element(se)
        element.available = bool(available)
        return element.describe()

    @rpc_method()
    def stats(self, ctx: CallContext) -> dict[str, Any]:
        """Catalogue, engine and broker counters in one snapshot."""

        ctx.require_dn()
        return {
            "catalogue": self.catalogue.stats(),
            "engine": self.engine.stats(),
            "broker": self.broker.stats(),
        }
