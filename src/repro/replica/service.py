"""The ``replica`` service: RPC access to the replica subsystem.

Methods are published behind the same session + ACL machinery as every other
Clarens module; in addition, the hierarchical *file* ACLs of section 2.3 are
applied to logical file names (an LFN is a path, so ``/lfn/cms/...`` can be
fenced exactly like a directory tree under the virtual file root):
registration, replication and deletion require ``write`` on the LFN, reads
require ``read``.

The service owns the storage-element map.  Every server exposes its own
virtual file root as the local element (``replica_local_se``), plus the mass
store behind the SRM service when that is registered; tests and deployments
add further elements with :meth:`ReplicaService.add_storage_element` (e.g.
a :class:`~repro.replica.storage.RemoteStorageElement` per peer site in a
multi-server fabric).

It also owns the durability pieces: with ``replica_journal_enabled`` the
transfer engine write-ahead-journals onto the server database and replays
incomplete transfers on startup (and again whenever a late storage element
is attached), and the :class:`~repro.replica.policy.ReplicaPolicyEngine`
behind ``replica.set_policy``/``replica.heal`` keeps governed LFNs at their
target copy counts by reacting to quarantine events on the monitoring bus.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, ClarensError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.fileservice.vfs import VirtualFileSystem
from repro.replica.broker import ReplicaBroker
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.journal import TransferJournal
from repro.replica.model import (ReplicaConflictError, ReplicaError,
                                 ReplicaNotFoundError, ReplicaState)
from repro.replica.policy import ReplicaPolicyEngine
from repro.replica.storage import (MassStoreStorageElement, StorageElement,
                                   VFSStorageElement)
from repro.replica.transfer import TransferEngine

__all__ = ["ReplicaService"]


class ReplicaConflictFault(ClarensError):
    """Concurrent-modification conflicts surface as a service fault."""


def _translate(exc: ReplicaError) -> ClarensError:
    if isinstance(exc, ReplicaNotFoundError):
        return NotFoundError(str(exc))
    if isinstance(exc, ReplicaConflictError):
        return ReplicaConflictFault(str(exc))
    return ClarensError(str(exc))


class ReplicaService(ClarensService):
    """Replica catalogue, transfer queue and broker behind ``replica.*``."""

    service_name = "replica"

    def __init__(self, server) -> None:
        super().__init__(server)
        config = server.config
        bus = getattr(server, "message_bus", None)
        self.catalogue = ReplicaCatalogue(server.db, bus=bus,
                                          source=config.server_name)
        self.elements: dict[str, StorageElement] = {}
        local_name = config.replica_local_se
        self.add_storage_element(
            VFSStorageElement(local_name, VirtualFileSystem(server.file_root)))
        srm_service = server.services.get("srm")
        if srm_service is not None:
            self.add_storage_element(
                MassStoreStorageElement("masstore", srm_service.store))
        self.journal = (TransferJournal(server.db)
                        if config.replica_journal_enabled else None)
        self.engine = TransferEngine(
            self.catalogue, self.elements,
            workers=config.replica_transfer_workers,
            max_attempts=config.replica_max_attempts,
            retry_delay=config.replica_retry_delay,
            bus=bus,
            source=config.server_name,
            journal=self.journal)
        self.broker = ReplicaBroker(self.catalogue, self.elements,
                                    local_se=local_name)
        self.policy = ReplicaPolicyEngine(
            self.catalogue, self.engine, bus=bus, source=config.server_name,
            default_copies=config.replica_policy_default_copies,
            heal_interval=config.replica_heal_interval,
            heal_backoff=config.replica_heal_backoff)
        server.replica_broker = self.broker
        server.replica_policy = self.policy

    # -- assembly ------------------------------------------------------------
    def add_storage_element(self, element: StorageElement, *,
                            replace: bool = False) -> StorageElement:
        """Attach an element; ``replace=True`` rebinds an existing name.

        Replacement is how a re-added fabric peer swaps its disabled element
        for one bound to a fresh channel — everything downstream (journal
        replay for late elements, broker/engine lookup) runs the same path.
        """

        if element.name in self.elements and not replace:
            raise ValueError(f"storage element {element.name!r} already exists")
        self.elements[element.name] = element
        # Journalled transfers whose destination was not attached at startup
        # become replayable the moment their element appears.
        engine = getattr(self, "engine", None)
        if engine is not None and engine.journal is not None:
            engine.recover()
        return element

    def on_start(self) -> None:
        self.engine.start()
        self.policy.start()

    def on_stop(self) -> None:
        self.policy.stop()
        self.engine.stop()

    # -- ACL helpers ---------------------------------------------------------
    def _check(self, dn: str | None, lfn: str, operation: str) -> None:
        decision = self.server.acl.check_file(dn or "", lfn, operation)
        if not decision.allowed:
            raise AccessDeniedError(
                f"{operation} access to {lfn} denied: {decision.reason}")

    def _element(self, name: str) -> StorageElement:
        element = self.elements.get(name)
        if element is None:
            raise NotFoundError(f"unknown storage element {name!r}")
        return element

    # -- catalogue methods ---------------------------------------------------
    # Published as ``replica.register``; the Python name differs so it does
    # not shadow ClarensService.register (the framework registration hook).
    @rpc_method("register")
    def register_replica(self, ctx: CallContext, lfn: str, se: str, pfn: str,
                         size: int = -1, checksum: str = "") -> dict[str, Any]:
        """Register a physical replica of ``lfn`` on storage element ``se``.

        When size/checksum are omitted they are computed from the element,
        so registering an uploaded file is one call.  The caller needs
        ``write`` on the LFN *and* ``read`` on the physical path — an LFN is
        a new name for the bytes, so binding one to a file the caller cannot
        read would bypass the file ACLs on the real path.
        """

        dn = ctx.require_dn()
        self._check(dn, lfn, "write")
        self._check(dn, pfn, "read")
        element = self._element(se)
        try:
            if size < 0:
                size = element.size(pfn)
            if not checksum:
                checksum = element.checksum(pfn)
            return self.catalogue.register(lfn, se, pfn, size=int(size),
                                           checksum=checksum)
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def locate(self, ctx: CallContext, lfn: str) -> dict[str, Any]:
        """The catalogue entry for ``lfn``, with replicas ranked best-first."""

        self._check(ctx.dn, lfn, "read")
        try:
            entry = self.catalogue.entry(lfn)
            ranked = [{"storage_element": e.name, "pfn": r.pfn, "load": e.load}
                      for r, e in self.broker.candidates(lfn)]
        except ReplicaError as exc:
            raise _translate(exc) from exc
        entry["best"] = ranked
        return entry

    @rpc_method()
    def drop(self, ctx: CallContext, lfn: str, se: str = "",
             version: int = -1) -> bool:
        """Drop one replica (or the whole entry when ``se`` is empty).

        Passing the ``version`` observed by a prior ``locate`` makes the drop
        conditional: a concurrent modification raises a conflict fault
        instead of removing a replica the caller never saw.
        """

        self._check(ctx.require_dn(), lfn, "write")
        try:
            self.catalogue.drop(lfn, se or None,
                                expected_version=None if version < 0 else version)
        except ReplicaError as exc:
            raise _translate(exc) from exc
        return True

    @rpc_method()
    def stat(self, ctx: CallContext, lfn: str) -> dict[str, Any]:
        """The raw catalogue entry (size, checksum, version, replicas)."""

        self._check(ctx.dn, lfn, "read")
        try:
            return self.catalogue.entry(lfn)
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def ls(self, ctx: CallContext, prefix: str = "/") -> list[str]:
        """Logical file names under a prefix."""

        self._check(ctx.dn, prefix, "read")
        return self.catalogue.lfns(prefix)

    # -- transfers -----------------------------------------------------------
    @rpc_method()
    def replicate(self, ctx: CallContext, lfn: str, dst_se: str,
                  src_se: str = "", priority: int = 5) -> dict[str, Any]:
        """Queue an asynchronous replication of ``lfn`` onto ``dst_se``."""

        self._check(ctx.require_dn(), lfn, "write")
        self._element(dst_se)
        try:
            request = self.engine.submit(lfn, dst_se, src_se=src_se,
                                         priority=int(priority),
                                         owner_dn=ctx.dn or "")
        except ReplicaError as exc:
            raise _translate(exc) from exc
        return request.to_record()

    @rpc_method()
    def status(self, ctx: CallContext, transfer_id: int) -> dict[str, Any]:
        """Status of one transfer (state, bytes, throughput, attempts)."""

        ctx.require_dn()
        try:
            return self.engine.get(int(transfer_id)).to_record()
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def transfers(self, ctx: CallContext) -> list[dict[str, Any]]:
        """All transfers known to this server's engine."""

        ctx.require_dn()
        return [r.to_record() for r in self.engine.transfers()]

    @rpc_method()
    def cancel(self, ctx: CallContext, transfer_id: int) -> dict[str, Any]:
        """Cancel a still-queued transfer."""

        ctx.require_dn()
        try:
            return self.engine.cancel(int(transfer_id)).to_record()
        except ReplicaError as exc:
            raise _translate(exc) from exc

    # -- replica-aware reads -------------------------------------------------
    @rpc_method()
    def read(self, ctx: CallContext, lfn: str, offset: int = 0,
             nbytes: int = -1) -> bytes:
        """Read a byte range through the broker (nearest replica, failover)."""

        self._check(ctx.dn, lfn, "read")
        limit = self.server.config.max_read_bytes
        if nbytes < 0 or nbytes > limit:
            nbytes = limit
        try:
            return self.broker.read(lfn, int(offset), int(nbytes))
        except ReplicaError as exc:
            raise _translate(exc) from exc

    @rpc_method()
    def verify(self, ctx: CallContext, lfn: str, se: str) -> dict[str, Any]:
        """Re-checksum the replica on ``se``; quarantines it on mismatch."""

        self._check(ctx.require_dn(), lfn, "read")
        element = self._element(se)
        try:
            replica = self.catalogue.replica_on(lfn, se)
            entry = self.catalogue.entry(lfn)
            digest = element.checksum(replica.pfn)
            if entry["checksum"] and digest != entry["checksum"]:
                return self.catalogue.quarantine(
                    lfn, se, error=f"verify found {digest}, "
                                   f"expected {entry['checksum']}")
            return self.catalogue.set_state(lfn, se, ReplicaState.ACTIVE)
        except ReplicaError as exc:
            raise _translate(exc) from exc

    # -- replica-count policies ----------------------------------------------
    @rpc_method()
    def set_policy(self, ctx: CallContext, prefix: str,
                   copies: int) -> dict[str, Any]:
        """Keep every LFN under ``prefix`` at ``copies`` healthy replicas.

        Administrators only: a policy schedules background transfers on the
        server's behalf, so it is an operator-level control, not a per-file
        permission.
        """

        self.server.require_admin(ctx)
        try:
            return self.policy.set_policy(prefix, int(copies)).to_record()
        except ValueError as exc:
            raise ClarensError(str(exc)) from exc

    @rpc_method()
    def drop_policy(self, ctx: CallContext, prefix: str) -> bool:
        """Remove the policy installed on ``prefix`` (administrators only)."""

        self.server.require_admin(ctx)
        return self.policy.drop_policy(prefix)

    @rpc_method()
    def policies(self, ctx: CallContext) -> list[dict[str, Any]]:
        """The installed replica-count policies plus the default target."""

        ctx.require_dn()
        return [p.to_record() for p in self.policy.policies()]

    @rpc_method()
    def heal(self, ctx: CallContext, lfn: str) -> dict[str, Any]:
        """Re-evaluate one LFN against its policy right now.

        Returns the decision record (action, active count, scheduled
        transfers); requires ``write`` on the LFN since it may queue copies.
        """

        self._check(ctx.require_dn(), lfn, "write")
        try:
            return self.policy.evaluate(lfn)
        except ReplicaError as exc:
            raise _translate(exc) from exc

    # -- operations ----------------------------------------------------------
    @rpc_method()
    def drop_replica(self, ctx: CallContext, lfn: str, se: str) -> dict[str, Any]:
        """Remove a *quarantined* copy so its element can host a fresh heal.

        Administrators only: the policy engine never heals onto an element
        that still holds a quarantined replica (the corrupt copy is evidence),
        so this is the operator flow that reclaims the slot.  Publishes
        ``replica.dropped`` on the monitoring bus — the policy engine
        subscribes and immediately re-evaluates the LFN, reusing the freed
        element as a heal target.  Non-quarantined replicas are refused; use
        ``replica.drop`` (a normal write-ACL operation) for those.
        """

        self.server.require_admin(ctx)
        try:
            entry = self.catalogue.entry(lfn)
            record = entry["replicas"].get(se)
            if record is None:
                raise NotFoundError(f"{entry['lfn']} has no replica on {se!r}")
            if record["state"] != ReplicaState.QUARANTINED.value:
                raise ClarensError(
                    f"replica of {lfn} on {se!r} is {record['state']}, not "
                    f"quarantined; use replica.drop for healthy copies")
            # CAS on the version read above: a concurrent re-verify that
            # reactivated the copy raises a conflict instead of silently
            # dropping a now-healthy replica.
            updated = self.catalogue.drop(lfn, se,
                                          expected_version=entry["version"])
        except ReplicaError as exc:
            raise _translate(exc) from exc
        remaining = len(updated["replicas"]) if updated is not None else 0
        bus = getattr(self.server, "message_bus", None)
        if bus is not None:
            bus.publish("replica.dropped", {
                "lfn": entry["lfn"],
                "storage_element": se,
                "pfn": record["pfn"],
                "remaining_replicas": remaining,
                "dropped_by": ctx.dn or "",
            }, source=self.server.config.server_name)
        return {"lfn": entry["lfn"], "storage_element": se,
                "remaining_replicas": remaining}

    @rpc_method()
    def elements_info(self, ctx: CallContext) -> list[dict[str, Any]]:
        """The storage elements this server knows (availability + load)."""

        ctx.require_dn()
        return [e.describe() for e in sorted(self.elements.values(),
                                             key=lambda e: e.name)]

    @rpc_method()
    def set_available(self, ctx: CallContext, se: str,
                      available: bool) -> dict[str, Any]:
        """Enable/disable a storage element (administrators only)."""

        self.server.require_admin(ctx)
        element = self._element(se)
        element.available = bool(available)
        return element.describe()

    @rpc_method()
    def stats(self, ctx: CallContext) -> dict[str, Any]:
        """Catalogue, engine and broker counters in one snapshot."""

        ctx.require_dn()
        return {
            "catalogue": self.catalogue.stats(),
            "engine": self.engine.stats(),
            "broker": self.broker.stats(),
            "policy": self.policy.stats(),
            "journal": self.journal.stats() if self.journal is not None else None,
        }
