"""The transfer journal: a write-ahead record of every live transfer.

PR 2's transfer engine kept its queue purely in memory, so a server crash
mid-copy stranded the logical file with one copy fewer than requested and no
record that anyone had asked for more.  The journal closes that gap with the
same recipe the catalogue uses — versioned rows on :mod:`repro.database`
under striped per-row locks:

* every *non-terminal* transition (queued, running, retrying) upserts the
  request's full record **before** the transition becomes observable;
* every terminal transition (done, failed, cancelled) *discharges* the row.

The steady-state journal is therefore empty, and its contents after a crash
are exactly the set of transfers the engine must replay — see
:meth:`~repro.replica.transfer.TransferEngine.recover`.  When the backing
database is bound to a directory the rows ride the snapshot+journal
persistence of :class:`~repro.database.table.Table`, so they survive process
restarts, which is what turns "the queue" into "the durable queue".
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.database import Database
from repro.replica.model import TransferRequest, TransferState

__all__ = ["TransferJournal"]


class TransferJournal:
    """Versioned per-transfer rows persisted on the database engine."""

    def __init__(self, db: Database, *,
                 table_name: str = "replica_transfer_journal",
                 lock_stripes: int = 16) -> None:
        self._table = db.table(table_name)
        self._stripes = [threading.Lock() for _ in range(max(1, lock_stripes))]

    def _lock_for(self, transfer_id: int) -> threading.Lock:
        return self._stripes[int(transfer_id) % len(self._stripes)]

    # -- the write-ahead surface ---------------------------------------------
    def record(self, request: TransferRequest) -> None:
        """Upsert the journal row for ``request`` (or discharge it when done).

        The request's *live* state is re-read under the per-row lock, so a
        worker journalling a retry cannot resurrect a row that a concurrent
        cancel already discharged — whichever writer runs last sees the
        terminal state and deletes the row.
        """

        with self._lock_for(request.transfer_id):
            if request.state.terminal:
                self._table.delete(str(request.transfer_id))
                return
            existing = self._table.get(str(request.transfer_id), None)
            row = request.to_record()
            row["journal_version"] = (
                int(existing["journal_version"]) + 1 if existing else 1)
            row["journaled_at"] = time.time()
            self._table.put(str(request.transfer_id), row)

    def discharge(self, transfer_id: int) -> bool:
        """Remove the row for a transfer that reached a terminal state."""

        with self._lock_for(transfer_id):
            return self._table.delete(str(transfer_id))

    # -- the replay surface --------------------------------------------------
    def pending(self) -> list[dict[str, Any]]:
        """All journalled (i.e. unfinished) transfers, oldest id first."""

        rows = [r for r in self._table.all()
                if not TransferState(r.get("state", "queued")).terminal]
        return sorted(rows, key=lambda r: int(r["transfer_id"]))

    def max_transfer_id(self) -> int:
        """The highest journalled id (0 when empty); bounds id allocation."""

        keys = self._table.keys()
        return max((int(k) for k in keys), default=0)

    def clear(self) -> None:
        self._table.clear()

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> dict[str, Any]:
        by_state: dict[str, int] = {}
        for row in self._table.all():
            state = row.get("state", "queued")
            by_state[state] = by_state.get(state, 0) + 1
        return {"entries": len(self._table), "by_state": by_state}
