"""The replica subsystem: one data fabric over many storage elements.

The paper's Clarens servers each serve files from their own virtual root or
SRM-fronted mass store; the grid deployments they participated in (the CMS
data challenges) layered a *replica catalogue* on top so a logical file name
(LFN) could resolve to physical copies on many storage elements.  This
package reproduces that layer:

* :mod:`repro.replica.model`     -- replicas, states, transfer requests;
* :mod:`repro.replica.storage`   -- the storage-element abstraction (Clarens
  VFS roots and the simulated dCache mass store);
* :mod:`repro.replica.catalogue` -- the versioned LFN → replica mapping on
  the :mod:`repro.database` engine;
* :mod:`repro.replica.transfer`  -- the asynchronous, prioritised,
  checksum-verifying transfer engine with retry/backoff and monitoring
  publications;
* :mod:`repro.replica.broker`    -- best-replica selection (local-first,
  then least loaded) with mid-read failover;
* :mod:`repro.replica.service`   -- the ``replica.*`` RPC methods.
"""

from repro.replica.broker import ReplicaBroker
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.model import (Replica, ReplicaConflictError, ReplicaError,
                                 ReplicaNotFoundError, ReplicaState,
                                 TransferRequest, TransferState)
from repro.replica.storage import (MassStoreStorageElement, StorageElement,
                                   StorageElementError,
                                   StorageElementUnavailableError,
                                   VFSStorageElement)
from repro.replica.transfer import TransferEngine

__all__ = [
    "Replica",
    "ReplicaBroker",
    "ReplicaCatalogue",
    "ReplicaConflictError",
    "ReplicaError",
    "ReplicaNotFoundError",
    "ReplicaState",
    "StorageElement",
    "StorageElementError",
    "StorageElementUnavailableError",
    "MassStoreStorageElement",
    "TransferEngine",
    "TransferRequest",
    "TransferState",
    "VFSStorageElement",
]
