"""The replica subsystem: one data fabric over many storage elements.

The paper's Clarens servers each serve files from their own virtual root or
SRM-fronted mass store; the grid deployments they participated in (the CMS
data challenges) layered a *replica catalogue* on top so a logical file name
(LFN) could resolve to physical copies on many storage elements.  This
package reproduces that layer:

* :mod:`repro.replica.model`     -- replicas, states, transfer requests;
* :mod:`repro.replica.storage`   -- the storage-element abstraction (Clarens
  VFS roots, the simulated dCache mass store, and peer servers reached
  through authenticated client sessions);
* :mod:`repro.replica.catalogue` -- the versioned LFN → replica mapping on
  the :mod:`repro.database` engine, publishing quarantine events;
* :mod:`repro.replica.journal`   -- the write-ahead transfer journal that
  makes the queue survive restarts;
* :mod:`repro.replica.transfer`  -- the asynchronous, prioritised,
  checksum-verifying transfer engine with retry/backoff, monitoring
  publications, and journal replay;
* :mod:`repro.replica.broker`    -- best-replica selection (local-first,
  then least loaded) with mid-read failover;
* :mod:`repro.replica.policy`    -- target-copy-count policies that auto-heal
  governed files after quarantines;
* :mod:`repro.replica.service`   -- the ``replica.*`` RPC methods.
"""

from repro.replica.broker import ReplicaBroker
from repro.replica.catalogue import ReplicaCatalogue
from repro.replica.journal import TransferJournal
from repro.replica.model import (Replica, ReplicaConflictError, ReplicaError,
                                 ReplicaNotFoundError, ReplicaState,
                                 TransferRequest, TransferState)
from repro.replica.policy import ReplicaPolicy, ReplicaPolicyEngine
from repro.replica.storage import (MassStoreStorageElement,
                                   RemoteStorageElement, StorageElement,
                                   StorageElementError,
                                   StorageElementUnavailableError,
                                   VFSStorageElement)
from repro.replica.transfer import TransferEngine

__all__ = [
    "Replica",
    "ReplicaBroker",
    "ReplicaCatalogue",
    "ReplicaConflictError",
    "ReplicaError",
    "ReplicaNotFoundError",
    "ReplicaPolicy",
    "ReplicaPolicyEngine",
    "ReplicaState",
    "RemoteStorageElement",
    "StorageElement",
    "StorageElementError",
    "StorageElementUnavailableError",
    "MassStoreStorageElement",
    "TransferEngine",
    "TransferJournal",
    "TransferRequest",
    "TransferState",
    "VFSStorageElement",
]
