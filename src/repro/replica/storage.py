"""Storage elements: the endpoints replicas live on.

A :class:`StorageElement` is the uniform surface the catalogue, broker and
transfer engine speak to — named storage with streaming reads, digesting
writes, and a live *load* counter (concurrent transfers touching it) used by
the broker's least-loaded selection.  Three concrete elements cover the
deployment shapes in the paper's world:

* :class:`VFSStorageElement` — a Clarens virtual file root (section 2.3),
  i.e. ordinary disk served by the file service;
* :class:`MassStoreStorageElement` — a dCache-style
  :class:`~repro.storage.masstore.MassStorageSystem`, where reads may imply
  an SRM-visible staging operation from tape;
* :class:`RemoteStorageElement` — a *peer Clarens server* reached through a
  :class:`~repro.fabric.channel.PeerChannel` (pooled authenticated sessions
  with reconnect/backoff).  Reads ride the remote server's
  ``GET file/.lfn/<name>`` fast path with ranged requests (its broker picks
  its best replica per chunk); writes upload through chunked ``file.write``
  calls and register the copy in the remote catalogue, so N servers become
  one replication fabric.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.client.errors import ClientError
from repro.core.faults import FAULTS
from repro.fabric.channel import PeerChannel
from repro.fileservice.vfs import VFSError, VirtualFileSystem
from repro.protocols.errors import Fault
from repro.replica.model import ReplicaError
from repro.storage.masstore import MassStorageSystem, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.client.client import ClarensClient

__all__ = [
    "StorageElementError",
    "StorageElementUnavailableError",
    "StorageElement",
    "VFSStorageElement",
    "MassStoreStorageElement",
    "RemoteStorageElement",
    "DEFAULT_CHUNK",
]

DEFAULT_CHUNK = 1 << 20


class StorageElementError(ReplicaError):
    """An operation against a storage element failed."""


class StorageElementUnavailableError(StorageElementError):
    """The storage element is administratively disabled (or unreachable)."""


class StorageElement:
    """Base class: naming, availability, and transfer-load accounting."""

    #: True when reads reach the bytes through another Clarens server (so a
    #: read proxied on behalf of a peer must never select this element —
    #: see :meth:`ReplicaBroker.candidates`).
    is_remote = False

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("storage element name must be non-empty")
        self.name = name
        self.available = True
        self._load_lock = threading.Lock()
        self._active_transfers = 0

    # -- load accounting ----------------------------------------------------
    @property
    def load(self) -> int:
        """Concurrent transfers currently touching this element."""

        with self._load_lock:
            return self._active_transfers

    @contextmanager
    def transfer_slot(self) -> Iterator[None]:
        """Count one in-flight transfer against this element's load."""

        with self._load_lock:
            self._active_transfers += 1
        try:
            yield
        finally:
            with self._load_lock:
                self._active_transfers -= 1

    def require_available(self) -> None:
        if not self.available:
            raise StorageElementUnavailableError(
                f"storage element {self.name!r} is unavailable")

    # -- data plane (implemented by subclasses) -----------------------------
    def exists(self, pfn: str) -> bool:
        raise NotImplementedError

    def size(self, pfn: str) -> int:
        raise NotImplementedError

    def read(self, pfn: str, offset: int = 0, length: int = -1) -> bytes:
        raise NotImplementedError

    def open_reader(self, pfn: str, *, chunk_size: int = DEFAULT_CHUNK) -> Iterator[bytes]:
        """Yield the file's bytes in chunks (streamed, for transfers)."""
        raise NotImplementedError

    def write_stream(self, pfn: str, chunks: Iterable[bytes]) -> tuple[int, str]:
        """Write a chunk stream to ``pfn``; returns ``(size, md5 hexdigest)``.

        The digest is computed over the bytes as they are written, so the
        transfer engine's end-to-end verification covers this element's write
        path, not just the source's read path.
        """
        raise NotImplementedError

    def delete(self, pfn: str) -> bool:
        raise NotImplementedError

    def adopt(self, pfn: str, *, size: int, checksum: str) -> None:
        """Claim pre-existing verified bytes at ``pfn`` as a replica.

        Called by the transfer engine's adoption path instead of
        :meth:`write_stream` when the destination already holds exactly the
        catalogued bytes (a crashed transfer that finished its copy, a
        catalogue drop that left the physical file behind).  Local elements
        need no side effects; a :class:`RemoteStorageElement` must register
        the copy in the *peer's* catalogue — the write path does that inside
        ``write_stream``, and skipping it on adoption would leave the peer
        serving-blind to bytes it physically holds.
        """

    def checksum(self, pfn: str) -> str:
        """MD5 hexdigest of the stored bytes (re-read from the medium)."""

        digest = hashlib.md5()
        for chunk in self.open_reader(pfn):
            digest.update(chunk)
        return digest.hexdigest()

    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": type(self).__name__,
            "available": self.available,
            "load": self.load,
        }


class VFSStorageElement(StorageElement):
    """A storage element backed by a Clarens virtual file root."""

    def __init__(self, name: str, vfs: VirtualFileSystem) -> None:
        super().__init__(name)
        self.vfs = vfs

    def exists(self, pfn: str) -> bool:
        self.require_available()
        return self.vfs.exists(pfn)

    def size(self, pfn: str) -> int:
        self.require_available()
        try:
            return self.vfs.size(pfn)
        except VFSError as exc:
            raise StorageElementError(str(exc)) from exc

    def read(self, pfn: str, offset: int = 0, length: int = -1) -> bytes:
        self.require_available()
        FAULTS.fire("replica.storage.read", se=self.name, pfn=pfn, op="read")
        try:
            return self.vfs.read(pfn, offset, length)
        except VFSError as exc:
            raise StorageElementError(str(exc)) from exc

    def open_reader(self, pfn: str, *, chunk_size: int = DEFAULT_CHUNK) -> Iterator[bytes]:
        self.require_available()
        FAULTS.fire("replica.storage.read", se=self.name, pfn=pfn,
                    op="open_reader")
        try:
            real = self.vfs.resolve(pfn, must_exist=True)
        except VFSError as exc:
            raise StorageElementError(str(exc)) from exc
        if not real.is_file():
            raise StorageElementError(f"{pfn} is not a regular file on {self.name}")

        def reader() -> Iterator[bytes]:
            with real.open("rb") as fh:
                while True:
                    self.require_available()
                    chunk = fh.read(chunk_size)
                    if not chunk:
                        return
                    yield chunk

        return reader()

    def write_stream(self, pfn: str, chunks: Iterable[bytes]) -> tuple[int, str]:
        self.require_available()
        FAULTS.fire("replica.storage.write", se=self.name, pfn=pfn)
        try:
            real = self.vfs.resolve(pfn)
        except VFSError as exc:
            raise StorageElementError(str(exc)) from exc
        real.parent.mkdir(parents=True, exist_ok=True)
        digest = hashlib.md5()
        written = 0
        with real.open("wb") as fh:
            for chunk in chunks:
                self.require_available()
                fh.write(chunk)
                digest.update(chunk)
                written += len(chunk)
        return written, digest.hexdigest()

    def delete(self, pfn: str) -> bool:
        try:
            return self.vfs.delete(pfn)
        except VFSError as exc:
            raise StorageElementError(str(exc)) from exc


class MassStoreStorageElement(StorageElement):
    """A storage element backed by the simulated dCache mass store.

    Reads go through :meth:`MassStorageSystem.stage`, so a transfer whose
    source replica is tape-resident (NEARLINE) transparently pays the staging
    cost — the SRM behaviour the transfer engine is expected to hide behind
    its asynchronous queue.
    """

    def __init__(self, name: str, store: MassStorageSystem, *,
                 flush_to_tape: bool = False) -> None:
        super().__init__(name)
        self.store = store
        self.flush_to_tape = flush_to_tape

    def exists(self, pfn: str) -> bool:
        self.require_available()
        try:
            self.store.stat(pfn)
            return True
        except StorageError:
            return False

    def size(self, pfn: str) -> int:
        self.require_available()
        try:
            return int(self.store.stat(pfn)["size"])
        except StorageError as exc:
            raise StorageElementError(str(exc)) from exc

    def read(self, pfn: str, offset: int = 0, length: int = -1) -> bytes:
        self.require_available()
        real = self._staged_path(pfn)
        # Seek the staged disk replica so a chunked download costs O(chunk)
        # per call, not one full-file materialisation per chunk.
        with real.open("rb") as fh:
            fh.seek(offset)
            return fh.read(length) if length >= 0 else fh.read()

    def _staged_path(self, pfn: str):
        """Stage (and pin briefly) so the on-disk replica survives the read."""

        try:
            self.store.stage(pfn, pin_seconds=60.0)
            return self.store.disk_path(pfn)
        except StorageError as exc:
            raise StorageElementError(str(exc)) from exc

    def open_reader(self, pfn: str, *, chunk_size: int = DEFAULT_CHUNK) -> Iterator[bytes]:
        self.require_available()
        real = self._staged_path(pfn)

        def reader() -> Iterator[bytes]:
            with real.open("rb") as fh:
                while True:
                    self.require_available()
                    chunk = fh.read(chunk_size)
                    if not chunk:
                        return
                    yield chunk

        return reader()

    def write_stream(self, pfn: str, chunks: Iterable[bytes]) -> tuple[int, str]:
        self.require_available()
        # The mass store namespace is write-once; buffer then ingest.
        data = b"".join(chunks)
        try:
            record = self.store.write(pfn, data)
            if self.flush_to_tape:
                self.store.flush_to_tape(pfn)
        except StorageError as exc:
            raise StorageElementError(str(exc)) from exc
        return record.size, record.checksum

    def delete(self, pfn: str) -> bool:
        try:
            return self.store.delete(pfn)
        except StorageError as exc:
            raise StorageElementError(str(exc)) from exc

    def checksum(self, pfn: str) -> str:
        self.require_available()
        try:
            return self.store.stat(pfn)["checksum"]
        except StorageError as exc:
            raise StorageElementError(str(exc)) from exc


class RemoteStorageElement(StorageElement):
    """A peer Clarens server, reached through an authenticated client session.

    The *pfn* of a replica on a remote element is the logical file name
    itself: reads go through the peer's ``GET file/.lfn/<name>`` fast path
    with ``offset``/``length`` ranged requests, so the peer's own broker
    resolves its best local replica per chunk (zero-copy on its side, with
    its own mid-read failover).  Writes upload via chunked ``file.write``
    calls into the peer's virtual root at the same path and then register
    the copy in the peer's catalogue on its ``remote_se`` element — after a
    replication the peer can serve, verify, and re-replicate the file
    entirely on its own, which is what makes a set of servers one fabric
    rather than one server with remote disks.

    The element no longer owns any transport plumbing: it speaks through a
    :class:`~repro.fabric.channel.PeerChannel`, which pools authenticated
    sessions and transparently reconnects with backoff when the link to the
    peer drops mid-transfer.  Idempotent operations (ranged reads, stat,
    registration) retry through the reconnect; chunked ``file.write``
    appends do not (a replayed append would corrupt the upload), so a write
    that loses its link surfaces the failure and the transfer engine's own
    retry re-runs the copy from scratch.  A bare authenticated
    :class:`~repro.client.client.ClarensClient` is still accepted and is
    wrapped via :meth:`PeerChannel.for_client`.

    The channel's sessions must already be authenticated; their DN needs
    ``read`` on the logical names it pulls and ``write`` on those it pushes,
    exactly as if the operator issued the calls by hand.  Transport failures
    (after the channel's retries) and remote faults surface as
    :class:`StorageElementError`, so the transfer engine's retry/backoff and
    the broker's failover treat a flaky WAN link like any other failing
    element.
    """

    is_remote = True

    def __init__(self, name: str, peer: "PeerChannel | ClarensClient", *,
                 remote_se: str = "local", register_remote: bool = True,
                 chunk_size: int = DEFAULT_CHUNK) -> None:
        super().__init__(name)
        if isinstance(peer, PeerChannel):
            self.channel = peer
        else:
            self.channel = PeerChannel.for_client(peer, name=name)
        self.remote_se = remote_se
        self.register_remote = register_remote
        self.chunk_size = chunk_size

    # -- RPC plumbing --------------------------------------------------------
    def _call(self, method: str, *params, retry: bool = True):
        try:
            return self.channel.call(method, *params, retry=retry)
        except Fault as exc:
            raise StorageElementError(
                f"{self.name}: remote {method} failed: {exc}") from exc
        except ClientError as exc:
            raise StorageElementError(
                f"{self.name}: transport to peer failed: {exc}") from exc

    def _active_stat(self, pfn: str) -> dict | None:
        """The remote catalogue entry, but only when it is actually servable.

        An entry whose replicas are all quarantined/copying must not count as
        "the bytes exist on the peer": treating it as present would let the
        transfer engine's adoption path register a copy backed by nothing
        readable.  Only an entry with at least one ACTIVE replica qualifies.
        """

        try:
            entry = self.channel.call("replica.stat", pfn)
        except Fault:
            return None
        except ClientError as exc:
            raise StorageElementError(
                f"{self.name}: transport to peer failed: {exc}") from exc
        if any(r.get("state") == "active"
               for r in entry.get("replicas", {}).values()):
            return entry
        return None

    # -- data plane ----------------------------------------------------------
    def exists(self, pfn: str) -> bool:
        self.require_available()
        if self._active_stat(pfn) is not None:
            return True
        try:
            return bool(self.channel.call("file.exists", pfn))
        except Fault:
            return False
        except ClientError as exc:
            raise StorageElementError(
                f"{self.name}: transport to peer failed: {exc}") from exc

    def size(self, pfn: str) -> int:
        self.require_available()
        entry = self._active_stat(pfn)
        if entry is not None:
            return int(entry["size"])
        return int(self._call("file.size", pfn))

    def checksum(self, pfn: str) -> str:
        """MD5 of the bytes the peer would actually serve (never trusted from
        its catalogue — adoption and reclaim decisions hang off this digest).
        """

        self.require_available()
        digest = hashlib.md5()
        for chunk in self.open_reader(pfn, chunk_size=self.chunk_size):
            digest.update(chunk)
        return digest.hexdigest()

    def read(self, pfn: str, offset: int = 0, length: int = -1) -> bytes:
        self.require_available()
        query = f"offset={int(offset)}&length={int(length)}"
        try:
            # ``hop=1`` tells the peer this read is already proxied once: it
            # must serve from its directly-reachable elements, never proxy
            # onward to a third server (single-hop proxying — see
            # ReplicaBroker.candidates).
            response = self.channel.http_get(".lfn/" + pfn.lstrip("/"),
                                             query=query + "&hop=1")
            if response.status == 404:
                # Bytes uploaded but not (yet) catalogued on the peer — fall
                # back to the plain file path.
                response = self.channel.http_get(pfn.lstrip("/"), query=query)
        except ClientError as exc:
            raise StorageElementError(
                f"{self.name}: transport to peer failed: {exc}") from exc
        if response.status != 200:
            raise StorageElementError(
                f"{self.name}: GET {pfn} failed with HTTP {response.status}")
        return response.body_bytes()

    def open_reader(self, pfn: str, *, chunk_size: int = DEFAULT_CHUNK) -> Iterator[bytes]:
        self.require_available()
        size = self.size(pfn)

        def reader() -> Iterator[bytes]:
            offset = 0
            while offset < size:
                self.require_available()
                chunk = self.read(pfn, offset, min(chunk_size, size - offset))
                if not chunk:
                    raise StorageElementError(
                        f"{self.name}: short read of {pfn} at offset {offset}")
                offset += len(chunk)
                yield chunk

        return reader()

    def write_stream(self, pfn: str, chunks: Iterable[bytes]) -> tuple[int, str]:
        self.require_available()
        digest = hashlib.md5()
        written = 0
        first = True
        for chunk in chunks:
            self.require_available()
            data = bytes(chunk)
            # Appends are not idempotent: never retried through a reconnect
            # (the transfer engine re-runs the whole copy instead).
            self._call("file.write", pfn, data, not first, retry=False)
            digest.update(data)
            written += len(data)
            first = False
        if first:
            self._call("file.write", pfn, b"", False, retry=False)  # empty file
        hexdigest = digest.hexdigest()
        if self.register_remote:
            # Register the uploaded bytes in the peer's catalogue so its own
            # broker/policy can serve and heal them; passing size+checksum
            # avoids a remote re-hash.  An already-registered identical copy
            # refreshes cleanly; a mismatch is a real conflict and fails the
            # write (the engine's cleanup then deletes the upload).
            self._call("replica.register", pfn, self.remote_se, pfn,
                       written, hexdigest)
        return written, hexdigest

    def adopt(self, pfn: str, *, size: int, checksum: str) -> None:
        """Make sure the peer's own catalogue lists the adopted bytes.

        Registration is idempotent (an identical existing row refreshes
        cleanly), so adopting bytes the peer already catalogued is a no-op;
        adopting bytes a crashed transfer uploaded but never registered
        closes exactly the gap that would otherwise leave this server
        claiming a replica the peer cannot serve or heal from.
        """

        if self.register_remote:
            self._call("replica.register", pfn, self.remote_se, pfn,
                       int(size), checksum)

    def delete(self, pfn: str) -> bool:
        deleted = False
        try:
            self.channel.call("replica.drop", pfn, self.remote_se)
            deleted = True
        except Fault:
            pass
        except ClientError as exc:
            raise StorageElementError(
                f"{self.name}: transport to peer failed: {exc}") from exc
        try:
            deleted = bool(self.channel.call("file.delete", pfn, False)) or deleted
        except Fault:
            pass
        except ClientError as exc:
            raise StorageElementError(
                f"{self.name}: transport to peer failed: {exc}") from exc
        return deleted

    def describe(self) -> dict:
        info = super().describe()
        info["remote_se"] = self.remote_se
        info["remote_dn"] = self.channel.dn
        info["channel"] = self.channel.stats()
        return info
