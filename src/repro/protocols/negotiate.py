"""Protocol negotiation.

A single Clarens endpoint serves XML-RPC, SOAP, JSON-RPC and binary POST
bodies.  The server selects a codec from the request's Content-Type header
when it is specific enough, and otherwise sniffs the body (a binary magic
prefix, a JSON object, a SOAP envelope, or an XML-RPC ``<methodCall>``).

Codec *upgrade* rides two headers.  A client that is willing to speak a
faster protocol sends ``X-Clarens-Accept-Protocol: binary`` with every RPC;
a server that saw that header answers with
``X-Clarens-Protocols: <its enabled codec list>``.  Once the client observes
a protocol it prefers in the advert it switches its request codec; if a
later response proves the server stopped understanding it (restart into an
older build), the client falls back to XML-RPC and retries.  Servers
restrict the codecs they accept through ``ServerConfig.protocol_preference``
(the ``enabled`` argument below), so paper-mode deployments are bit-for-bit
unchanged unless both ends opt in.
"""

from __future__ import annotations

from repro.protocols import binary as _binary_module
from repro.protocols.binary import BinaryCodec
from repro.protocols.errors import ProtocolError
from repro.protocols.jsonrpc import JSONRPCCodec
from repro.protocols.soap import SOAPCodec
from repro.protocols.xmlrpc import XMLRPCCodec

__all__ = [
    "codec_for_content_type", "detect_codec", "default_codec", "all_codecs",
    "codec_by_name", "parse_protocol_list",
    "PROTOCOL_HEADER", "ACCEPT_HEADER",
]

#: Response header: the codecs a server is willing to accept, in preference
#: order, e.g. ``xml-rpc,soap,json-rpc,binary``.  Only sent when the request
#: carried :data:`ACCEPT_HEADER`, so paper-mode traffic is byte-unchanged.
PROTOCOL_HEADER = "X-Clarens-Protocols"

#: Request header: the upgrade codec the client can speak (``binary``).
ACCEPT_HEADER = "X-Clarens-Accept-Protocol"

_XMLRPC = XMLRPCCodec()
_SOAP = SOAPCodec()
_JSONRPC = JSONRPCCodec()
_BINARY = BinaryCodec()

_BY_NAME = {
    _XMLRPC.name: _XMLRPC,
    _SOAP.name: _SOAP,
    _JSONRPC.name: _JSONRPC,
    _BINARY.name: _BINARY,
}


def default_codec() -> XMLRPCCodec:
    """XML-RPC is the framework's native protocol (and the paper's)."""

    return _XMLRPC


def all_codecs():
    """All codec singletons, XML-RPC first."""

    return (_XMLRPC, _SOAP, _JSONRPC, _BINARY)


def codec_by_name(name: str):
    """Look a codec up by its short name (``xml-rpc``, ``binary``, ...)."""

    try:
        return _BY_NAME[name]
    except KeyError:
        raise ProtocolError(f"unknown protocol {name!r}") from None


def parse_protocol_list(value: str) -> tuple[str, ...]:
    """Parse a comma-separated codec-name list, validating every name.

    Used both for ``ServerConfig.protocol_preference`` and for the
    :data:`PROTOCOL_HEADER` advert a client receives.  Raises
    :class:`ProtocolError` on unknown names and on an empty list.
    """

    names = tuple(part.strip() for part in value.split(",") if part.strip())
    if not names:
        raise ProtocolError("protocol list is empty")
    for name in names:
        if name not in _BY_NAME:
            raise ProtocolError(
                f"unknown protocol {name!r} (known: {', '.join(sorted(_BY_NAME))})")
    return names


def codec_for_content_type(content_type: str | None):
    """Select a codec from a Content-Type header, or ``None`` when ambiguous.

    ``text/xml`` is ambiguous between XML-RPC and SOAP, so it returns ``None``
    and the caller should fall back to :func:`detect_codec`.
    """

    if not content_type:
        return None
    mime = content_type.split(";", 1)[0].strip().lower()
    if mime in ("application/json", "application/json-rpc"):
        return _JSONRPC
    if mime in ("application/soap+xml",):
        return _SOAP
    if mime in ("application/xml-rpc",):
        return _XMLRPC
    if mime in (_BINARY.content_type,):
        return _BINARY
    return None


def detect_codec(body: bytes, content_type: str | None = None,
                 enabled: tuple[str, ...] | None = None):
    """Pick the codec for a request body, raising ProtocolError when impossible.

    ``enabled`` restricts the accepted codec names (a server's
    ``protocol_preference``); a recognisable body in a disabled protocol is
    rejected with a clean :class:`ProtocolError` instead of being decoded.
    """

    codec = _detect(body, content_type)
    if enabled is not None and codec.name not in enabled:
        raise ProtocolError(
            f"protocol {codec.name!r} is not enabled on this server "
            f"(enabled: {', '.join(enabled)})")
    return codec


def _detect(body: bytes, content_type: str | None):
    codec = codec_for_content_type(content_type)
    if codec is not None:
        return codec
    if isinstance(body, str):
        body = body.encode("utf-8", "replace")
    head = body.lstrip()[:256]
    if head.startswith(_binary_module.MAGIC):
        return _BINARY
    if head.startswith(b"{"):
        return _JSONRPC
    if b"Envelope" in head and (b"soap" in head.lower() or b"envelope" in head.lower()):
        return _SOAP
    if b"<methodCall" in head or head.startswith(b"<?xml"):
        # An XML prologue without an Envelope is XML-RPC.
        if b"Envelope" in body[:1024]:
            return _SOAP
        return _XMLRPC
    raise ProtocolError("unable to determine RPC protocol from request body")
