"""Protocol negotiation.

A single Clarens endpoint serves XML-RPC, SOAP and JSON-RPC POST bodies.  The
server selects a codec from the request's Content-Type header when it is
specific enough, and otherwise sniffs the body (a JSON object, a SOAP
envelope, or an XML-RPC ``<methodCall>``).
"""

from __future__ import annotations

from repro.protocols.errors import ProtocolError
from repro.protocols.jsonrpc import JSONRPCCodec
from repro.protocols.soap import SOAPCodec
from repro.protocols.xmlrpc import XMLRPCCodec

__all__ = ["codec_for_content_type", "detect_codec", "default_codec", "all_codecs"]

_XMLRPC = XMLRPCCodec()
_SOAP = SOAPCodec()
_JSONRPC = JSONRPCCodec()

_BY_NAME = {
    _XMLRPC.name: _XMLRPC,
    _SOAP.name: _SOAP,
    _JSONRPC.name: _JSONRPC,
}


def default_codec() -> XMLRPCCodec:
    """XML-RPC is the framework's native protocol (and the paper's)."""

    return _XMLRPC


def all_codecs():
    """All codec singletons, XML-RPC first."""

    return (_XMLRPC, _SOAP, _JSONRPC)


def codec_by_name(name: str):
    """Look a codec up by its short name (``xml-rpc``, ``soap``, ``json-rpc``)."""

    try:
        return _BY_NAME[name]
    except KeyError:
        raise ProtocolError(f"unknown protocol {name!r}") from None


def codec_for_content_type(content_type: str | None):
    """Select a codec from a Content-Type header, or ``None`` when ambiguous.

    ``text/xml`` is ambiguous between XML-RPC and SOAP, so it returns ``None``
    and the caller should fall back to :func:`detect_codec`.
    """

    if not content_type:
        return None
    mime = content_type.split(";", 1)[0].strip().lower()
    if mime in ("application/json", "application/json-rpc"):
        return _JSONRPC
    if mime in ("application/soap+xml",):
        return _SOAP
    if mime in ("application/xml-rpc",):
        return _XMLRPC
    return None


def detect_codec(body: bytes, content_type: str | None = None):
    """Pick the codec for a request body, raising ProtocolError when impossible."""

    codec = codec_for_content_type(content_type)
    if codec is not None:
        return codec
    head = body.lstrip()[:256]
    if head.startswith(b"{"):
        return _JSONRPC
    if b"Envelope" in head and (b"soap" in head.lower() or b"envelope" in head.lower()):
        return _SOAP
    if b"<methodCall" in head or head.startswith(b"<?xml"):
        # An XML prologue without an Envelope is XML-RPC.
        if b"Envelope" in body[:1024]:
            return _SOAP
        return _XMLRPC
    raise ProtocolError("unable to determine RPC protocol from request body")
