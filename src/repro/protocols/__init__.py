"""RPC protocol codecs.

Clarens speaks several RPC protocols over HTTP (paper section 2): XML-RPC,
SOAP, and JSON-RPC (plus Java RMI for JClarens, which has no Python
equivalent and is out of scope).  Each codec converts between Python values
and a wire body, for both requests (method name + positional parameters) and
responses (a return value or a fault).

All codecs share one type model (:mod:`repro.protocols.types`):
``None``/bool/int/float/str/bytes/datetime plus lists and string-keyed dicts,
nested arbitrarily.

:mod:`repro.protocols.negotiate` selects a codec from an HTTP Content-Type
header or by sniffing the body, which is how the server supports multiple
protocols on a single endpoint.
"""

from __future__ import annotations

from repro.protocols.binary import BinaryCodec
from repro.protocols.errors import Fault, ProtocolError
from repro.protocols.jsonrpc import JSONRPCCodec
from repro.protocols.negotiate import (
    ACCEPT_HEADER, PROTOCOL_HEADER, all_codecs, codec_by_name,
    codec_for_content_type, default_codec, detect_codec, parse_protocol_list)
from repro.protocols.soap import SOAPCodec
from repro.protocols.types import RPCRequest, RPCResponse
from repro.protocols.xmlrpc import XMLRPCCodec

__all__ = [
    "Fault",
    "ProtocolError",
    "RPCRequest",
    "RPCResponse",
    "XMLRPCCodec",
    "SOAPCodec",
    "JSONRPCCodec",
    "BinaryCodec",
    "codec_for_content_type",
    "detect_codec",
    "default_codec",
    "all_codecs",
    "codec_by_name",
    "parse_protocol_list",
    "PROTOCOL_HEADER",
    "ACCEPT_HEADER",
]
