"""Protocol-level errors and RPC faults."""

from __future__ import annotations

__all__ = ["ProtocolError", "Fault", "FaultCode"]


class ProtocolError(Exception):
    """The wire body could not be parsed or serialized."""


class FaultCode:
    """Well-known fault codes used across the framework.

    The numbering loosely follows the XML-RPC "specification for fault code
    interoperability" ranges: -326xx for transport/parse issues, positive
    application-defined codes for Clarens services.
    """

    PARSE_ERROR = -32700
    METHOD_NOT_FOUND = -32601
    INVALID_PARAMS = -32602
    INTERNAL_ERROR = -32603

    # Clarens application faults.
    AUTHENTICATION_REQUIRED = 401
    ACCESS_DENIED = 403
    NOT_FOUND = 404
    RETRY_LATER = 429
    SESSION_EXPIRED = 440
    SERVICE_ERROR = 500


class Fault(Exception):
    """An RPC fault: a numeric code and a human-readable string.

    Faults raised by service methods are serialized onto the wire by whichever
    codec handled the request and re-raised client-side by the client library.
    """

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = int(code)
        self.message = str(message)

    def __repr__(self) -> str:
        return f"Fault({self.code}, {self.message!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fault)
            and self.code == other.code
            and self.message == other.message
        )

    def __hash__(self) -> int:
        return hash((self.code, self.message))
