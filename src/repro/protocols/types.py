"""The shared RPC type model and request/response containers."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.protocols.errors import Fault, ProtocolError

__all__ = ["RPCRequest", "RPCResponse", "validate_value", "SCALAR_TYPES"]

SCALAR_TYPES = (type(None), bool, int, float, str, bytes, _dt.datetime)


def validate_value(value: Any, *, _depth: int = 0) -> Any:
    """Check that ``value`` is expressible in the shared type model.

    Returns the value unchanged on success and raises
    :class:`~repro.protocols.errors.ProtocolError` otherwise.  Tuples are
    accepted and treated as arrays.  The depth limit guards the recursive
    codecs against pathological nesting.
    """

    if _depth > 64:
        raise ProtocolError("value nesting exceeds 64 levels")
    if isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        for item in value:
            validate_value(item, _depth=_depth + 1)
        return value
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(f"struct keys must be strings, got {type(key).__name__}")
            validate_value(item, _depth=_depth + 1)
        return value
    raise ProtocolError(f"type {type(value).__name__} is not representable in RPC")


@dataclass
class RPCRequest:
    """A decoded RPC call: method name, positional parameters, call id.

    ``call_id`` is used by JSON-RPC (request/response correlation); the XML
    protocols ignore it.
    """

    method: str
    params: Sequence[Any] = field(default_factory=tuple)
    call_id: Any = None

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or not self.method:
            raise ProtocolError("RPC method name must be a non-empty string")
        self.params = tuple(self.params)
        for param in self.params:
            validate_value(param)

    @classmethod
    def from_wire(cls, method: str, params: tuple, call_id: Any) -> "RPCRequest":
        """Construct from decoder output without re-validating the tree.

        Only for codecs whose decoder is constructive — it can *only* produce
        model types within the nesting cap (the binary decoder), so the
        per-value validation walk would re-prove what the decode already
        established.  ``method`` must be non-empty and ``params`` a tuple.
        """

        request = cls.__new__(cls)
        request.method = method
        request.params = params
        request.call_id = call_id
        return request


@dataclass
class RPCResponse:
    """A decoded RPC response: either a result value or a fault."""

    result: Any = None
    fault: Fault | None = None
    call_id: Any = None

    def __post_init__(self) -> None:
        if self.fault is None:
            validate_value(self.result)

    @property
    def is_fault(self) -> bool:
        return self.fault is not None

    def unwrap(self) -> Any:
        """Return the result, raising the fault if there is one."""

        if self.fault is not None:
            raise self.fault
        return self.result

    @classmethod
    def from_fault(cls, fault: Fault, call_id: Any = None) -> "RPCResponse":
        return cls(result=None, fault=fault, call_id=call_id)

    @classmethod
    def from_result(cls, result: Any, call_id: Any = None, *,
                    validate: bool = True) -> "RPCResponse":
        """Wrap a result value, validating it against the type model.

        ``validate=False`` skips the per-value walk; callers may only pass it
        when the result is valid by construction — a constructive decoder's
        output, or a pipeline whose codec validates during encoding anyway.
        """

        if validate:
            return cls(result=result, fault=None, call_id=call_id)
        response = cls.__new__(cls)
        response.result = result
        response.fault = None
        response.call_id = call_id
        return response
