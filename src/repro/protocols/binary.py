"""A compact length-prefixed binary RPC codec (the fast wire path).

XML-RPC dominates the per-call budget once dispatch is cheap: every request
walks an XML parser and every response re-escapes markup.  This codec keeps
the exact same value model (:mod:`repro.protocols.types`) but serialises it
with ``struct``-packed frames — no quoting, no parsing, a single pass over
the data in each direction.

Wire format (all integers big-endian)::

    frame   := MAGIC kind payload
    MAGIC   := "CRB1"                      (4 bytes)
    kind    := "Q" | "R" | "F"             (request / result / fault)

    Q-frame := value(call_id) u32 method-utf8 u32 nparams value*
    R-frame := value(call_id) value(result)
    F-frame := value(call_id) i32 code u32 message-utf8

    value   := "N"                          None
             | "T" | "F"                    True / False
             | "i" int64                    int within +-2**63
             | "I" u32 ascii-decimal        arbitrary-precision int
             | "d" float64                  float
             | "s" u32 utf8                 str
             | "b" u32 raw                  bytes
             | "t" u32 utf8                 datetime (ISO 8601)
             | "l" u32 value*               array (count-prefixed)
             | "m" u32 (u32 utf8 value)*    struct (count-prefixed pairs)

The format is frozen by golden-byte tests in ``tests/test_binary_protocol.py``
so it can never silently drift between client and server builds.
"""

from __future__ import annotations

import datetime
import struct
from typing import Any

from repro.protocols.errors import Fault, ProtocolError
from repro.protocols.types import RPCRequest, RPCResponse

__all__ = ["BinaryCodec", "MAGIC"]

MAGIC = b"CRB1"

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: Matches ``repro.protocols.types.validate_value``'s nesting cap so a
#: hostile frame cannot recurse the decoder past what the type model allows.
_MAX_DEPTH = 64


def _encode_value(value: Any, out: list[bytes], depth: int = 0) -> None:
    # str before the numeric branches: catalogue-style responses (the
    # Figure 4 method list) are overwhelmingly strings, and the reorder
    # changes no encoding (a str is never an int).
    if isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int) and not isinstance(value, bool):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            digits = str(value).encode("ascii")
            out.append(b"I")
            out.append(_U32.pack(len(digits)))
            out.append(digits)
    elif isinstance(value, float):
        out.append(b"d")
        out.append(_F64.pack(value))
    elif isinstance(value, (bytes, bytearray)):
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(bytes(value))
    elif isinstance(value, datetime.datetime):
        data = value.isoformat().encode("utf-8")
        out.append(b"t")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (list, tuple)):
        # Encode honours the same nesting cap the decoder (and
        # ``validate_value``) enforce, so a pipeline that skips the separate
        # validation walk can never emit a frame its own decoder rejects.
        if depth >= _MAX_DEPTH:
            raise ProtocolError(
                f"value nesting exceeds the {_MAX_DEPTH}-level limit")
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out, depth + 1)
    elif isinstance(value, dict):
        if depth >= _MAX_DEPTH:
            raise ProtocolError(
                f"value nesting exceeds the {_MAX_DEPTH}-level limit")
        out.append(b"m")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"binary struct keys must be strings, got {type(key).__name__}")
            data = key.encode("utf-8")
            out.append(_U32.pack(len(data)))
            out.append(data)
            _encode_value(item, out, depth + 1)
    else:
        raise ProtocolError(
            f"type {type(value).__name__} is not encodable as a binary value")


class _Decoder:
    """Offset-walking reader over one immutable frame."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.data):
            raise ProtocolError("truncated binary frame")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def text(self) -> str:
        raw = self.take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in binary frame: {exc}") from exc

    def value(self, depth: int = 0) -> Any:
        if depth > _MAX_DEPTH:
            raise ProtocolError(
                f"binary value nesting exceeds the {_MAX_DEPTH}-level limit")
        tag = self.take(1)
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return _I64.unpack(self.take(8))[0]
        if tag == b"I":
            raw = self.take(self.u32())
            try:
                return int(raw.decode("ascii"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(f"invalid bigint in binary frame: {exc}") from exc
        if tag == b"d":
            return _F64.unpack(self.take(8))[0]
        if tag == b"s":
            return self.text()
        if tag == b"b":
            return self.take(self.u32())
        if tag == b"t":
            raw = self.text()
            try:
                return datetime.datetime.fromisoformat(raw)
            except ValueError as exc:
                raise ProtocolError(f"invalid datetime in binary frame: {exc}") from exc
        if tag == b"l":
            count = self.u32()
            return [self.value(depth + 1) for _ in range(count)]
        if tag == b"m":
            count = self.u32()
            record: dict[str, Any] = {}
            for _ in range(count):
                key = self.text()
                record[key] = self.value(depth + 1)
            return record
        raise ProtocolError(f"unknown binary value tag {tag!r}")

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing bytes after binary frame")


def _frame_body(data: bytes | str, expected_kinds: bytes) -> tuple[bytes, _Decoder]:
    if isinstance(data, str):
        # Binary frames are never legitimately text; a str here means a
        # proxy or transport re-decoded the body.  Round-trip through
        # latin-1 recovers the original bytes when possible.
        try:
            data = data.encode("latin-1")
        except UnicodeEncodeError as exc:
            raise ProtocolError("binary frame was corrupted in transit") from exc
    if not data.startswith(MAGIC):
        raise ProtocolError("not a binary RPC frame (bad magic)")
    decoder = _Decoder(data)
    decoder.take(len(MAGIC))
    kind = decoder.take(1)
    if kind not in (b"Q", b"R", b"F") or kind not in expected_kinds:
        raise ProtocolError(f"unexpected binary frame kind {kind!r}")
    return kind, decoder


class BinaryCodec:
    """Length-prefixed binary framing of the shared RPC value model."""

    name = "binary"
    content_type = "application/x-clarens-binary"
    #: Binary values are length-prefixed and self-delimiting, so a response
    #: frame can be assembled from a pre-encoded ``value(result)`` fragment
    #: (:meth:`encode_result_fragment` / :meth:`encode_response_from_fragment`).
    #: The pipeline keys its hot-response memo off this capability; the text
    #: codecs interleave markup and escaping, so they never set it.
    spliceable = True

    # -- requests ----------------------------------------------------------------
    def encode_request(self, request: RPCRequest) -> bytes:
        out: list[bytes] = [MAGIC, b"Q"]
        _encode_value(request.call_id, out)
        method = request.method.encode("utf-8")
        out.append(_U32.pack(len(method)))
        out.append(method)
        out.append(_U32.pack(len(request.params)))
        for param in request.params:
            _encode_value(param, out)
        return b"".join(out)

    def decode_request(self, data: bytes | str) -> RPCRequest:
        _, decoder = _frame_body(data, b"Q")
        call_id = decoder.value()
        method = decoder.text()
        if not method:
            raise ProtocolError("binary request is missing a method name")
        count = decoder.u32()
        params = tuple(decoder.value() for _ in range(count))
        decoder.expect_end()
        # The decoder is constructive — it can only build model types within
        # the nesting cap — so the separate validation walk is skipped.
        return RPCRequest.from_wire(method, params, call_id)

    # -- responses ---------------------------------------------------------------
    def encode_response(self, response: RPCResponse) -> bytes:
        if response.is_fault:
            message = response.fault.message.encode("utf-8")
            out = [MAGIC, b"F"]
            _encode_value(response.call_id, out)
            out.append(_I32.pack(response.fault.code))
            out.append(_U32.pack(len(message)))
            out.append(message)
            return b"".join(out)
        out = [MAGIC, b"R"]
        _encode_value(response.call_id, out)
        _encode_value(response.result, out)
        return b"".join(out)

    def decode_response(self, data: bytes | str) -> RPCResponse:
        kind, decoder = _frame_body(data, b"RF")
        call_id = decoder.value()
        if kind == b"F":
            code = _I32.unpack(decoder.take(4))[0]
            message = decoder.text()
            decoder.expect_end()
            return RPCResponse.from_fault(Fault(code, message), call_id=call_id)
        result = decoder.value()
        decoder.expect_end()
        return RPCResponse.from_result(result, call_id=call_id, validate=False)

    # -- hot-path shortcuts --------------------------------------------------------
    def encode_result_fragment(self, result: Any) -> bytes:
        """The ``value(result)`` bytes of an R-frame, ready for splicing.

        Raises :class:`ProtocolError` for values outside the type model, so
        encoding doubles as validation on paths that skip the separate
        ``validate_value`` walk.
        """

        out: list[bytes] = []
        _encode_value(result, out)
        return b"".join(out)

    def encode_response_from_fragment(self, call_id: Any, fragment: bytes) -> bytes:
        """Assemble an R-frame around a pre-encoded result fragment.

        Byte-identical to ``encode_response(RPCResponse.from_result(result,
        call_id))`` when ``fragment == encode_result_fragment(result)``.
        """

        out: list[bytes] = [MAGIC, b"R"]
        _encode_value(call_id, out)
        out.append(fragment)
        return b"".join(out)


    def encode_multicall(self, calls, call_id: Any = None) -> bytes:
        """Serialise a ``system.multicall`` batch straight into one frame.

        Byte-identical to encoding the equivalent
        ``RPCRequest("system.multicall", ([{...}, ...],))`` but without
        materialising (and re-validating) the intermediate entry dicts.
        """

        out: list[bytes] = [MAGIC, b"Q"]
        _encode_value(call_id, out)
        out.append(_U32.pack(len(b"system.multicall")))
        out.append(b"system.multicall")
        out.append(_U32.pack(1))                      # one param: the batch
        calls = list(calls)
        out.append(b"l")
        out.append(_U32.pack(len(calls)))
        for method, params in calls:
            out.append(b"m")
            out.append(_U32.pack(2))
            out.append(_U32.pack(len(b"methodName")))
            out.append(b"methodName")
            _encode_value(method, out)
            out.append(_U32.pack(len(b"params")))
            out.append(b"params")
            out.append(b"l")
            out.append(_U32.pack(len(params)))
            for param in params:
                _encode_value(param, out)
        return b"".join(out)
