"""SOAP 1.1 codec (RPC/encoded subset).

Clarens accepts SOAP alongside XML-RPC.  This codec implements the subset a
2005-era scientific RPC deployment used: an Envelope/Body wrapper around an
RPC-style call element whose children are the positional parameters, with
``xsi:type`` attributes describing scalars and nested ``item``/``entry``
elements for arrays and structs.  Faults follow the SOAP 1.1
``soap:Fault`` shape (``faultcode``/``faultstring``/``detail``).
"""

from __future__ import annotations

import base64
import datetime as _dt
import xml.etree.ElementTree as ET
from typing import Any

from repro.protocols.errors import Fault, ProtocolError
from repro.protocols.types import RPCRequest, RPCResponse, validate_value

__all__ = ["SOAPCodec"]

SOAP_ENV = "http://schemas.xmlsoap.org/soap/envelope/"
XSI = "http://www.w3.org/2001/XMLSchema-instance"
XSD = "http://www.w3.org/2001/XMLSchema"
CLARENS_NS = "urn:clarens"

_ISO_FORMAT = "%Y-%m-%dT%H:%M:%S"


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;").replace('"', "&quot;")


def _encode_value(name: str, value: Any, out: list[str]) -> None:
    """Append ``<name xsi:type=...>`` encoding of ``value``."""

    if value is None:
        out.append(f'<{name} xsi:nil="true"/>')
    elif isinstance(value, bool):
        out.append(f'<{name} xsi:type="xsd:boolean">{"true" if value else "false"}</{name}>')
    elif isinstance(value, int):
        out.append(f'<{name} xsi:type="xsd:long">{value}</{name}>')
    elif isinstance(value, float):
        out.append(f'<{name} xsi:type="xsd:double">{value!r}</{name}>')
    elif isinstance(value, str):
        out.append(f'<{name} xsi:type="xsd:string">{_escape(value)}</{name}>')
    elif isinstance(value, bytes):
        out.append(
            f'<{name} xsi:type="xsd:base64Binary">{base64.b64encode(value).decode("ascii")}</{name}>'
        )
    elif isinstance(value, _dt.datetime):
        out.append(f'<{name} xsi:type="xsd:dateTime">{value.strftime(_ISO_FORMAT)}</{name}>')
    elif isinstance(value, (list, tuple)):
        out.append(f'<{name} xsi:type="soapenc:Array">')
        for item in value:
            _encode_value("item", item, out)
        out.append(f"</{name}>")
    elif isinstance(value, dict):
        out.append(f'<{name} xsi:type="clarens:Struct">')
        for key, item in value.items():
            out.append(f"<entry><key>{_escape(key)}</key>")
            _encode_value("value", item, out)
            out.append("</entry>")
        out.append(f"</{name}>")
    else:
        raise ProtocolError(f"cannot encode type {type(value).__name__} as SOAP")


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _xsi_type(element: ET.Element) -> str | None:
    for key, value in element.attrib.items():
        if _local(key) == "type":
            return value.rsplit(":", 1)[-1]
    return None


def _is_nil(element: ET.Element) -> bool:
    for key, value in element.attrib.items():
        if _local(key) == "nil" and value in ("true", "1"):
            return True
    return False


def _decode_value(element: ET.Element) -> Any:
    if _is_nil(element):
        return None
    xtype = _xsi_type(element)
    text = element.text or ""
    if xtype == "boolean":
        stripped = text.strip().lower()
        if stripped not in ("true", "false", "1", "0"):
            raise ProtocolError(f"invalid boolean {text!r}")
        return stripped in ("true", "1")
    if xtype in ("int", "long", "integer", "short"):
        try:
            return int(text.strip())
        except ValueError as exc:
            raise ProtocolError(f"invalid integer {text!r}") from exc
    if xtype in ("double", "float", "decimal"):
        try:
            return float(text.strip())
        except ValueError as exc:
            raise ProtocolError(f"invalid double {text!r}") from exc
    if xtype == "string":
        return text
    if xtype == "base64Binary":
        try:
            return base64.b64decode("".join(text.split()))
        except Exception as exc:
            raise ProtocolError(f"invalid base64: {exc}") from exc
    if xtype == "dateTime":
        try:
            return _dt.datetime.strptime(text.strip(), _ISO_FORMAT)
        except ValueError as exc:
            raise ProtocolError(f"invalid dateTime {text!r}") from exc
    if xtype == "Array":
        return [_decode_value(child) for child in element]
    if xtype == "Struct":
        result: dict[str, Any] = {}
        for entry in element:
            if _local(entry.tag) != "entry":
                raise ProtocolError("struct children must be <entry> elements")
            key_el = None
            value_el = None
            for child in entry:
                if _local(child.tag) == "key":
                    key_el = child
                elif _local(child.tag) == "value":
                    value_el = child
            if key_el is None or value_el is None:
                raise ProtocolError("struct entry missing <key> or <value>")
            result[key_el.text or ""] = _decode_value(value_el)
        return result
    # Untyped elements with children decode as arrays, otherwise strings;
    # this mirrors the lax decoding of 2005-era SOAP toolkits.
    children = list(element)
    if children:
        return [_decode_value(child) for child in children]
    return text


def _parse_envelope(body: bytes | str) -> ET.Element:
    if isinstance(body, bytes):
        body = body.decode("utf-8")
    try:
        root = ET.fromstring(body)
    except ET.ParseError as exc:
        raise ProtocolError(f"malformed SOAP XML: {exc}") from exc
    if _local(root.tag) != "Envelope":
        raise ProtocolError(f"expected soap:Envelope, found {_local(root.tag)}")
    body_el = None
    for child in root:
        if _local(child.tag) == "Body":
            body_el = child
            break
    if body_el is None or len(list(body_el)) == 0:
        raise ProtocolError("SOAP envelope has no Body payload")
    return list(body_el)[0]


_ENVELOPE_HEAD = (
    "<?xml version='1.0'?>"
    f'<soap:Envelope xmlns:soap="{SOAP_ENV}" xmlns:xsi="{XSI}" xmlns:xsd="{XSD}" '
    f'xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/" xmlns:clarens="{CLARENS_NS}">'
    "<soap:Body>"
)
_ENVELOPE_TAIL = "</soap:Body></soap:Envelope>"


class SOAPCodec:
    """Encode/decode the SOAP 1.1 RPC subset used by Clarens."""

    name = "soap"
    content_type = "application/soap+xml"

    # -- requests ------------------------------------------------------------
    def encode_request(self, request: RPCRequest) -> bytes:
        # Method names such as ``system.list_methods`` are not valid XML
        # element names, so the call element carries the name in an attribute.
        out = [_ENVELOPE_HEAD]
        out.append(f'<clarens:call method="{_escape(request.method)}">')
        for idx, param in enumerate(request.params):
            validate_value(param)
            _encode_value(f"param{idx}", param, out)
        out.append("</clarens:call>")
        out.append(_ENVELOPE_TAIL)
        return "".join(out).encode("utf-8")

    def decode_request(self, body: bytes | str) -> RPCRequest:
        payload = _parse_envelope(body)
        if _local(payload.tag) != "call":
            raise ProtocolError(f"expected clarens:call element, found {_local(payload.tag)}")
        method = payload.attrib.get("method", "").strip()
        if not method:
            raise ProtocolError("SOAP call element is missing the method attribute")
        params = [_decode_value(child) for child in payload]
        return RPCRequest(method=method, params=params)

    # -- responses -----------------------------------------------------------
    def encode_response(self, response: RPCResponse) -> bytes:
        out = [_ENVELOPE_HEAD]
        if response.is_fault:
            assert response.fault is not None
            out.append("<soap:Fault>")
            out.append(f"<faultcode>soap:Server.{response.fault.code}</faultcode>")
            out.append(f"<faultstring>{_escape(response.fault.message)}</faultstring>")
            out.append("<detail>")
            _encode_value("code", response.fault.code, out)
            out.append("</detail>")
            out.append("</soap:Fault>")
        else:
            out.append("<clarens:callResponse>")
            _encode_value("return", response.result, out)
            out.append("</clarens:callResponse>")
        out.append(_ENVELOPE_TAIL)
        return "".join(out).encode("utf-8")

    def decode_response(self, body: bytes | str) -> RPCResponse:
        payload = _parse_envelope(body)
        tag = _local(payload.tag)
        if tag == "Fault":
            code = 0
            message = ""
            for child in payload:
                local = _local(child.tag)
                if local == "faultstring":
                    message = child.text or ""
                elif local == "faultcode":
                    text = child.text or ""
                    digits = text.rsplit(".", 1)[-1]
                    try:
                        code = int(digits)
                    except ValueError:
                        code = 0
                elif local == "detail":
                    for det in child:
                        if _local(det.tag) == "code":
                            try:
                                code = int(_decode_value(det))
                            except (TypeError, ValueError):
                                pass
            return RPCResponse.from_fault(Fault(code, message))
        if tag != "callResponse":
            raise ProtocolError(f"expected callResponse or Fault, found {tag}")
        children = list(payload)
        if len(children) != 1:
            raise ProtocolError("callResponse must carry exactly one return value")
        return RPCResponse.from_result(_decode_value(children[0]))
