"""JSON-RPC codec.

The paper lists JSON-RPC among the protocols Clarens supports (it cites the
metaparadigm JSON-RPC implementation, i.e. JSON-RPC 1.0).  This codec speaks
the 2.0 framing by default but accepts 1.0 requests (no ``jsonrpc`` member)
for compatibility.

Because JSON has no native bytes or datetime types, those travel as tagged
objects ``{"__bytes__": <base64>}`` and ``{"__datetime__": <iso8601>}`` —
the same convention the original Clarens JavaScript portal clients used for
binary payloads.
"""

from __future__ import annotations

import base64
import datetime as _dt
import json
from typing import Any

from repro.protocols.errors import Fault, ProtocolError
from repro.protocols.types import RPCRequest, RPCResponse, validate_value

__all__ = ["JSONRPCCodec"]

_BYTES_TAG = "__bytes__"
_DATETIME_TAG = "__datetime__"


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, bytes):
        return {_BYTES_TAG: base64.b64encode(value).decode("ascii")}
    if isinstance(value, _dt.datetime):
        return {_DATETIME_TAG: value.isoformat()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _to_jsonable(v) for k, v in value.items()}
    return value


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            try:
                return base64.b64decode(value[_BYTES_TAG])
            except Exception as exc:
                raise ProtocolError(f"invalid base64 payload: {exc}") from exc
        if set(value.keys()) == {_DATETIME_TAG}:
            try:
                return _dt.datetime.fromisoformat(value[_DATETIME_TAG])
            except ValueError as exc:
                raise ProtocolError(f"invalid datetime payload: {exc}") from exc
        return {k: _from_jsonable(v) for k, v in value.items()}
    return value


def _loads(body: bytes | str) -> Any:
    if isinstance(body, bytes):
        body = body.decode("utf-8")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc


class JSONRPCCodec:
    """Encode/decode JSON-RPC 2.0 (accepting 1.0 on input)."""

    name = "json-rpc"
    content_type = "application/json"

    def __init__(self, *, version: str = "2.0") -> None:
        if version not in ("1.0", "2.0"):
            raise ValueError("JSON-RPC version must be '1.0' or '2.0'")
        self.version = version

    # -- requests ------------------------------------------------------------
    def encode_request(self, request: RPCRequest) -> bytes:
        for param in request.params:
            validate_value(param)
        payload: dict[str, Any] = {
            "method": request.method,
            "params": _to_jsonable(list(request.params)),
            "id": request.call_id if request.call_id is not None else 1,
        }
        if self.version == "2.0":
            payload["jsonrpc"] = "2.0"
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    def decode_request(self, body: bytes | str) -> RPCRequest:
        payload = _loads(body)
        if not isinstance(payload, dict):
            raise ProtocolError("JSON-RPC request must be an object")
        method = payload.get("method")
        if not isinstance(method, str) or not method:
            raise ProtocolError("JSON-RPC request missing method name")
        params = payload.get("params", [])
        if isinstance(params, dict):
            raise ProtocolError("named parameters are not supported by Clarens services")
        if not isinstance(params, list):
            raise ProtocolError("JSON-RPC params must be an array")
        return RPCRequest(
            method=method,
            params=[_from_jsonable(p) for p in params],
            call_id=payload.get("id"),
        )

    # -- responses -----------------------------------------------------------
    def encode_response(self, response: RPCResponse) -> bytes:
        call_id = response.call_id if response.call_id is not None else 1
        payload: dict[str, Any] = {"id": call_id}
        if self.version == "2.0":
            payload["jsonrpc"] = "2.0"
        if response.is_fault:
            assert response.fault is not None
            payload["error"] = {"code": response.fault.code, "message": response.fault.message}
            if self.version == "1.0":
                payload["result"] = None
        else:
            payload["result"] = _to_jsonable(response.result)
            if self.version == "1.0":
                payload["error"] = None
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    def decode_response(self, body: bytes | str) -> RPCResponse:
        payload = _loads(body)
        if not isinstance(payload, dict):
            raise ProtocolError("JSON-RPC response must be an object")
        error = payload.get("error")
        if error:
            if not isinstance(error, dict):
                raise ProtocolError("JSON-RPC error member must be an object")
            return RPCResponse.from_fault(
                Fault(int(error.get("code", 0)), str(error.get("message", ""))),
                call_id=payload.get("id"),
            )
        if "result" not in payload:
            raise ProtocolError("JSON-RPC response carries neither result nor error")
        return RPCResponse.from_result(_from_jsonable(payload["result"]), call_id=payload.get("id"))
