"""XML-RPC codec, implemented from scratch.

XML-RPC is the protocol the paper's performance test uses ("serializing the
resultant list of more than 30 strings as an array response in XML-RPC"),
so the encoder is written with the hot path in mind: string building via a
list of fragments, a pre-computed escape table, and no intermediate DOM for
encoding.  Decoding uses :mod:`xml.etree.ElementTree` for robustness.
"""

from __future__ import annotations

import base64
import datetime as _dt
import xml.etree.ElementTree as ET
from typing import Any

from repro.protocols.errors import Fault, ProtocolError
from repro.protocols.types import RPCRequest, RPCResponse, validate_value

__all__ = ["XMLRPCCodec"]

_ISO_FORMAT = "%Y%m%dT%H:%M:%S"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _encode_value(value: Any, out: list[str]) -> None:
    """Append the ``<value>...</value>`` encoding of ``value`` to ``out``."""

    out.append("<value>")
    if value is None:
        out.append("<nil/>")
    elif isinstance(value, bool):
        out.append(f"<boolean>{1 if value else 0}</boolean>")
    elif isinstance(value, int):
        if not (-(2**31) <= value < 2**31):
            # XML-RPC ints are 32-bit; larger values travel as i8 (a common
            # extension also used by the original Clarens Python client).
            out.append(f"<i8>{value}</i8>")
        else:
            out.append(f"<int>{value}</int>")
    elif isinstance(value, float):
        out.append(f"<double>{value!r}</double>")
    elif isinstance(value, str):
        out.append(f"<string>{_escape(value)}</string>")
    elif isinstance(value, bytes):
        out.append(f"<base64>{base64.b64encode(value).decode('ascii')}</base64>")
    elif isinstance(value, _dt.datetime):
        out.append(f"<dateTime.iso8601>{value.strftime(_ISO_FORMAT)}</dateTime.iso8601>")
    elif isinstance(value, (list, tuple)):
        out.append("<array><data>")
        for item in value:
            _encode_value(item, out)
        out.append("</data></array>")
    elif isinstance(value, dict):
        out.append("<struct>")
        for key, item in value.items():
            out.append(f"<member><name>{_escape(key)}</name>")
            _encode_value(item, out)
            out.append("</member>")
        out.append("</struct>")
    else:
        raise ProtocolError(f"cannot encode type {type(value).__name__} as XML-RPC")
    out.append("</value>")


def _decode_value(element: ET.Element) -> Any:
    """Decode a ``<value>`` element."""

    children = list(element)
    if not children:
        # Bare text inside <value> is a string per the XML-RPC spec.
        return element.text or ""
    node = children[0]
    tag = node.tag
    text = node.text or ""
    if tag == "nil":
        return None
    if tag == "boolean":
        stripped = text.strip()
        if stripped not in ("0", "1"):
            raise ProtocolError(f"invalid boolean value {text!r}")
        return stripped == "1"
    if tag in ("int", "i4", "i8"):
        try:
            return int(text.strip())
        except ValueError as exc:
            raise ProtocolError(f"invalid integer value {text!r}") from exc
    if tag == "double":
        try:
            return float(text.strip())
        except ValueError as exc:
            raise ProtocolError(f"invalid double value {text!r}") from exc
    if tag == "string":
        return text
    if tag == "base64":
        try:
            return base64.b64decode("".join(text.split()))
        except Exception as exc:
            raise ProtocolError(f"invalid base64 value: {exc}") from exc
    if tag == "dateTime.iso8601":
        try:
            return _dt.datetime.strptime(text.strip(), _ISO_FORMAT)
        except ValueError as exc:
            raise ProtocolError(f"invalid dateTime value {text!r}") from exc
    if tag == "array":
        data = node.find("data")
        if data is None:
            raise ProtocolError("array without <data>")
        return [_decode_value(v) for v in data.findall("value")]
    if tag == "struct":
        result: dict[str, Any] = {}
        for member in node.findall("member"):
            name_el = member.find("name")
            value_el = member.find("value")
            if name_el is None or value_el is None:
                raise ProtocolError("struct member missing <name> or <value>")
            result[name_el.text or ""] = _decode_value(value_el)
        return result
    raise ProtocolError(f"unknown XML-RPC value tag {tag!r}")


def _parse_xml(body: bytes | str) -> ET.Element:
    if isinstance(body, bytes):
        body = body.decode("utf-8", errors="strict")
    try:
        return ET.fromstring(body)
    except ET.ParseError as exc:
        raise ProtocolError(f"malformed XML: {exc}") from exc


class XMLRPCCodec:
    """Encode/decode XML-RPC requests and responses."""

    name = "xml-rpc"
    content_type = "text/xml"

    # -- requests ------------------------------------------------------------
    def encode_request(self, request: RPCRequest) -> bytes:
        out: list[str] = [
            "<?xml version='1.0'?>",
            "<methodCall><methodName>",
            _escape(request.method),
            "</methodName><params>",
        ]
        for param in request.params:
            validate_value(param)
            out.append("<param>")
            _encode_value(param, out)
            out.append("</param>")
        out.append("</params></methodCall>")
        return "".join(out).encode("utf-8")

    def decode_request(self, body: bytes | str) -> RPCRequest:
        root = _parse_xml(body)
        if root.tag != "methodCall":
            raise ProtocolError(f"expected <methodCall>, found <{root.tag}>")
        name_el = root.find("methodName")
        if name_el is None or not (name_el.text or "").strip():
            raise ProtocolError("missing <methodName>")
        params: list[Any] = []
        params_el = root.find("params")
        if params_el is not None:
            for param in params_el.findall("param"):
                value_el = param.find("value")
                if value_el is None:
                    raise ProtocolError("<param> without <value>")
                params.append(_decode_value(value_el))
        return RPCRequest(method=(name_el.text or "").strip(), params=params)

    def encode_multicall(self, calls, call_id: Any = None) -> bytes:
        """Serialise a ``system.multicall`` batch straight into one body.

        Byte-identical to :meth:`encode_request` over the equivalent
        ``[{"methodName": ..., "params": [...]}]`` entry list, but writes
        the boilerplate fragments directly instead of building and
        re-validating the intermediate dicts.
        """

        out: list[str] = [
            "<?xml version='1.0'?>",
            "<methodCall><methodName>system.multicall</methodName><params>",
            "<param><value><array><data>",
        ]
        for method, params in calls:
            out.append("<value><struct><member><name>methodName</name>")
            out.append(f"<value><string>{_escape(method)}</string></value>")
            out.append("</member><member><name>params</name>")
            out.append("<value><array><data>")
            for param in params:
                validate_value(param)
                _encode_value(param, out)
            out.append("</data></array></value></member></struct></value>")
        out.append("</data></array></value></param></params></methodCall>")
        return "".join(out).encode("utf-8")

    # -- responses -----------------------------------------------------------
    def encode_response(self, response: RPCResponse) -> bytes:
        out: list[str] = ["<?xml version='1.0'?>", "<methodResponse>"]
        if response.is_fault:
            assert response.fault is not None
            out.append("<fault>")
            _encode_value(
                {"faultCode": response.fault.code, "faultString": response.fault.message}, out
            )
            out.append("</fault>")
        else:
            out.append("<params><param>")
            _encode_value(response.result, out)
            out.append("</param></params>")
        out.append("</methodResponse>")
        return "".join(out).encode("utf-8")

    def decode_response(self, body: bytes | str) -> RPCResponse:
        root = _parse_xml(body)
        if root.tag != "methodResponse":
            raise ProtocolError(f"expected <methodResponse>, found <{root.tag}>")
        fault_el = root.find("fault")
        if fault_el is not None:
            value_el = fault_el.find("value")
            if value_el is None:
                raise ProtocolError("<fault> without <value>")
            payload = _decode_value(value_el)
            if not isinstance(payload, dict):
                raise ProtocolError("fault payload must be a struct")
            return RPCResponse.from_fault(
                Fault(int(payload.get("faultCode", 0)), str(payload.get("faultString", "")))
            )
        params_el = root.find("params")
        if params_el is None:
            raise ProtocolError("response has neither <params> nor <fault>")
        params = params_el.findall("param")
        if len(params) != 1:
            raise ProtocolError("XML-RPC responses carry exactly one <param>")
        value_el = params[0].find("value")
        if value_el is None:
            raise ProtocolError("<param> without <value>")
        return RPCResponse.from_result(_decode_value(value_el))
