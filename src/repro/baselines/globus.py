"""A behavioural model of the Globus Toolkit 3 service container.

The paper's footnote 4 reports that invoking "a trivial method 100 times
(ignoring first invocation) across a 100 Mbps LAN using GTK 3.0 and GTK 3.9.1
resulted in 5 to 1 calls per second" — three orders of magnitude below the
Clarens figure.  The dominant costs in GT3 were per-call service-container
context construction, OGSI/SOAP message processing, WS-Security signing and
verification of the whole envelope, and grid-mapfile authorization.

This model performs equivalents of those steps with real work so that the
comparison benchmark (TXT-GT3 in DESIGN.md) reproduces the *shape* of the
result (Clarens faster by a large factor) without pretending to measure the
actual 2005 toolkit:

1. container context: rebuild a service registry dict and a parsed deployment
   descriptor (simulating the per-call OGSI service instantiation);
2. message processing: wrap the request in a large SOAP envelope with
   WS-Addressing-style headers and parse it back;
3. WS-Security: RSA-sign the envelope server-side and verify the client's
   signature (two modular exponentiations per call);
4. authorization: a linear scan of a grid-mapfile.

The ``gt3_version`` knob selects a calibration ("3.0" is slower than
"3.9.1"), mirroring the two versions the paper footnotes.
"""

from __future__ import annotations

import threading
import xml.etree.ElementTree as ET
from typing import Any, Callable

from repro.pki.credentials import Credential
from repro.pki.rsa import generate_keypair
from repro.protocols.errors import Fault, FaultCode
from repro.protocols.soap import SOAPCodec
from repro.protocols.types import RPCRequest, RPCResponse

__all__ = ["GlobusGT3Server"]

#: Number of simulated deployment-descriptor entries parsed per call; the
#: larger value models GT 3.0's heavier container, the smaller one 3.9.1.
#: Calibrated so that the Clarens-to-GT3 throughput ratio lands in the same
#: order of magnitude the paper reports (hundreds of times slower).
_DESCRIPTOR_ENTRIES = {"3.0": 6000, "3.9.1": 2200}
#: Extra padding headers included in each envelope (WS-Addressing, OGSI
#: service data), again heavier for 3.0.
_ENVELOPE_PADDING = {"3.0": 600, "3.9.1": 220}
#: WS-Security signature operations per call (request verify + response sign
#: per intermediary hop in the OGSI handler chain).
_SIGNATURE_OPS = {"3.0": 6, "3.9.1": 3}


class GlobusGT3Server:
    """A deliberately heavyweight per-call RPC server modelled on GT3."""

    def __init__(self, *, gt3_version: str = "3.0", gridmap_size: int = 500,
                 key_bits: int = 512) -> None:
        if gt3_version not in _DESCRIPTOR_ENTRIES:
            raise ValueError(f"unknown GT3 version {gt3_version!r}; expected '3.0' or '3.9.1'")
        self.gt3_version = gt3_version
        self._codec = SOAPCodec()
        self._methods: dict[str, Callable[..., Any]] = {}
        self._lock = threading.Lock()
        self.calls_handled = 0
        # Host credential used for WS-Security signing.
        keypair = generate_keypair(key_bits)
        self._signing_key = keypair.private
        self._verify_key = keypair.public
        # A grid-mapfile: DN -> local user, scanned linearly per call.
        self._gridmap = [
            (f"/O=grid.example/OU=People/CN=User {i:04d}", f"user{i:04d}")
            for i in range(gridmap_size)
        ]
        self.register("counter.getValue", lambda: 42)
        self.register("system.list_methods", lambda: sorted(self._methods))
        self.register("system.echo", lambda value="": value)

    def register(self, name: str, func: Callable[..., Any]) -> None:
        with self._lock:
            self._methods[name] = func

    # -- the per-call overhead model ----------------------------------------------------
    def _build_container_context(self) -> dict:
        entries = _DESCRIPTOR_ENTRIES[self.gt3_version]
        descriptor = "".join(
            f'<service name="svc{i}" provider="ogsi" lifecycle="perCall">'
            f"<parameter name=\"className\" value=\"org.globus.svc{i}.Impl\"/></service>"
            for i in range(entries)
        )
        root = ET.fromstring(f"<deployment>{descriptor}</deployment>")
        return {child.attrib["name"]: child.attrib for child in root}

    def _wrap_and_parse_envelope(self, request: RPCRequest) -> RPCRequest:
        padding = _ENVELOPE_PADDING[self.gt3_version]
        body = self._codec.encode_request(request).decode()
        headers = "".join(
            f"<wsa:Header{i} xmlns:wsa='urn:ws-addressing'>urn:uuid:{i:032d}</wsa:Header{i}>"
            for i in range(padding)
        )
        envelope = body.replace("<soap:Body>", headers + "<soap:Body>", 1)
        return self._codec.decode_request(envelope.encode())

    def _ws_security(self, payload: bytes) -> None:
        # Client signature verification + per-hop re-signing of the envelope.
        client_signature = self._signing_key.sign(payload)
        if not self._verify_key.verify(payload, client_signature):
            raise Fault(FaultCode.AUTHENTICATION_REQUIRED, "WS-Security verification failed")
        for hop in range(_SIGNATURE_OPS[self.gt3_version]):
            self._signing_key.sign(payload[::-1] + bytes([hop]))

    def _gridmap_lookup(self, dn: str) -> str | None:
        for listed_dn, user in self._gridmap:
            if listed_dn == dn:
                return user
        return None

    # -- invocation --------------------------------------------------------------------------
    def call(self, method: str, *params: Any,
             dn: str = "/O=grid.example/OU=People/CN=User 0001") -> Any:
        """Invoke a method with full GT3-style per-call processing."""

        request = RPCRequest(method=method, params=params)
        self._build_container_context()
        parsed = self._wrap_and_parse_envelope(request)
        envelope_bytes = self._codec.encode_request(parsed)
        self._ws_security(envelope_bytes)
        if self._gridmap_lookup(dn) is None:
            response = RPCResponse.from_fault(
                Fault(FaultCode.ACCESS_DENIED, f"{dn} not in grid-mapfile"))
            return self._finish(response)
        with self._lock:
            func = self._methods.get(parsed.method)
            self.calls_handled += 1
        if func is None:
            response = RPCResponse.from_fault(
                Fault(FaultCode.METHOD_NOT_FOUND, f"no such method: {parsed.method}"))
        else:
            try:
                response = RPCResponse.from_result(func(*parsed.params))
            except Exception as exc:  # noqa: BLE001
                response = RPCResponse.from_fault(Fault(FaultCode.INTERNAL_ERROR, str(exc)))
        return self._finish(response)

    def _finish(self, response: RPCResponse) -> Any:
        # Responses are also SOAP-encoded, signed and re-parsed, as GT3 did.
        body = self._codec.encode_response(response)
        self._signing_key.sign(body)
        decoded = self._codec.decode_response(body)
        return decoded.unwrap()
