"""A plain XML-RPC dispatcher baseline (the "Tomcat + AXIS" end of the scale).

No sessions, no ACLs, no database lookups: just decode, look the method up in
a dict, call it, encode.  The Figure-4 and ACL-ablation benchmarks use it to
separate protocol/serialization cost from the security machinery Clarens adds
on top.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.httpd.message import HTTPRequest, HTTPResponse
from repro.httpd.loopback import LoopbackTransport
from repro.protocols import detect_codec
from repro.protocols.errors import Fault, FaultCode, ProtocolError
from repro.protocols.types import RPCResponse

__all__ = ["PlainRPCServer"]


class PlainRPCServer:
    """A minimal multi-protocol RPC server with no security machinery."""

    def __init__(self) -> None:
        self._methods: dict[str, Callable[..., Any]] = {}
        self._lock = threading.Lock()
        self.requests_handled = 0
        self.register("system.list_methods", self.list_methods)
        self.register("system.echo", lambda value="": value)
        self.register("system.ping", lambda: "pong")

    # -- registration ----------------------------------------------------------------
    def register(self, name: str, func: Callable[..., Any]) -> None:
        with self._lock:
            self._methods[name] = func

    def list_methods(self) -> list[str]:
        with self._lock:
            return sorted(self._methods)

    # -- request handling --------------------------------------------------------------
    def handle_request(self, request: HTTPRequest) -> HTTPResponse:
        codec = detect_codec(request.body, request.content_type)
        try:
            rpc_request = codec.decode_request(request.body)
        except ProtocolError as exc:
            response = RPCResponse.from_fault(Fault(FaultCode.PARSE_ERROR, str(exc)))
            return HTTPResponse.ok(codec.encode_response(response),
                                   content_type=codec.content_type)
        with self._lock:
            func = self._methods.get(rpc_request.method)
            self.requests_handled += 1
        if func is None:
            response = RPCResponse.from_fault(
                Fault(FaultCode.METHOD_NOT_FOUND, f"no such method: {rpc_request.method}"),
                call_id=rpc_request.call_id)
        else:
            try:
                response = RPCResponse.from_result(func(*rpc_request.params),
                                                   call_id=rpc_request.call_id)
            except Exception as exc:  # noqa: BLE001
                response = RPCResponse.from_fault(
                    Fault(FaultCode.INTERNAL_ERROR, str(exc)), call_id=rpc_request.call_id)
        return HTTPResponse.ok(codec.encode_response(response), content_type=codec.content_type)

    # -- frontends ------------------------------------------------------------------------
    def loopback(self) -> LoopbackTransport:
        return LoopbackTransport(self.handle_request)
