"""Baseline servers used in the paper's performance comparison.

Section 4/5 of the paper compares Clarens with the Globus Toolkit 3 service
container ("a trivial method 100 times … resulted in 5 to 1 calls per
second", versus Clarens' ~1450 calls/s) and positions Clarens relative to a
plain servlet container (Tomcat + AXIS) that lacks ACL/VO management.  Since
neither comparator can be run here, both are modelled behaviourally:

* :class:`~repro.baselines.globus.GlobusGT3Server` performs the per-call work
  that made GT3 slow — building a fresh service-container context, parsing a
  large SOAP envelope, WS-Security-style signing and verification of the
  message, and a linear grid-mapfile scan — so its throughput sits orders of
  magnitude below the Clarens dispatcher, as the paper reports.
* :class:`~repro.baselines.plain.PlainRPCServer` is the opposite extreme: a
  bare XML-RPC dispatcher with no authentication, session or ACL work,
  bounding the overhead Clarens adds for its security features.
"""

from __future__ import annotations

from repro.baselines.globus import GlobusGT3Server
from repro.baselines.plain import PlainRPCServer

__all__ = ["GlobusGT3Server", "PlainRPCServer"]
