"""The discovery server's local registry of service descriptors.

Descriptors arrive either directly (a server registering over RPC) or by
aggregation from the MonALISA repository (the JClarens "fully fledged JINI
client" behaviour).  Queries are answered from the local registry so that
"the server is consequently able to respond to service searches far more
rapidly by using the local database".
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable

from repro.cache.core import MISSING, TTLLRUCache
from repro.cache.invalidation import InvalidationBus
from repro.discovery.model import ServiceDescriptor
from repro.monitoring.monalisa import MonALISARepository

__all__ = ["DiscoveryRegistry"]


class DiscoveryRegistry:
    """TTL-based registry of service descriptors with attribute queries."""

    def __init__(self, *, repository: MonALISARepository | None = None,
                 cache: TTLLRUCache | None = None,
                 invalidation: InvalidationBus | None = None) -> None:
        self._descriptors: dict[str, ServiceDescriptor] = {}
        self._lock = threading.Lock()
        self._repository = repository
        self.registrations = 0
        self.queries = 0
        #: Optional query-result cache; its (short) TTL bounds how long an
        #: expired-but-unpurged descriptor can still appear in results.
        self._cache = cache
        self._invalidation = invalidation
        if cache is not None and invalidation is not None:
            invalidation.subscribe("discovery", cache)

    def _publish_invalidation(self) -> None:
        """Flush cached query results after any registry change."""

        if self._invalidation is not None:
            self._invalidation.publish("discovery")
        elif self._cache is not None:
            self._cache.invalidate_tag("discovery")

    # -- registration ----------------------------------------------------------------
    def register(self, descriptor: ServiceDescriptor) -> ServiceDescriptor:
        """Add or refresh a descriptor; returns the stored copy."""

        with self._lock:
            existing = self._descriptors.get(descriptor.key)
            if existing is not None:
                descriptor.published_at = time.time()
            self._descriptors[descriptor.key] = descriptor
            self.registrations += 1
        self._publish_invalidation()
        return descriptor

    def deregister(self, name: str, url: str | None = None) -> int:
        """Remove descriptors by name (and URL when given); returns the count removed."""

        with self._lock:
            keys = [
                key for key, desc in self._descriptors.items()
                if desc.name == name and (url is None or desc.url == url)
            ]
            for key in keys:
                del self._descriptors[key]
        if keys:
            self._publish_invalidation()
        return len(keys)

    def refresh(self, name: str, url: str) -> bool:
        with self._lock:
            descriptor = self._descriptors.get(f"{name}@{url}")
            if descriptor is None:
                return False
            descriptor.refresh()
        self._publish_invalidation()
        return True

    # -- aggregation from the monitoring network ----------------------------------------
    def sync_from_repository(self) -> int:
        """Pull descriptors published on the monitoring network; returns how many."""

        if self._repository is None:
            return 0
        count = 0
        for record in self._repository.find_services():
            data = {k: v for k, v in record.items() if not k.startswith("_")}
            if "name" not in data or "url" not in data:
                continue
            self.register(ServiceDescriptor.from_record(data))
            count += 1
        return count

    # -- queries ----------------------------------------------------------------------------
    def _live_descriptors(self) -> list[ServiceDescriptor]:
        now = time.time()
        with self._lock:
            expired = [k for k, d in self._descriptors.items() if d.is_expired(now)]
            for key in expired:
                del self._descriptors[key]
            return list(self._descriptors.values())

    def all(self) -> list[ServiceDescriptor]:
        return self._live_descriptors()

    def find(self, *, name: str | None = None, module: str | None = None,
             method: str | None = None, protocol: str | None = None,
             attributes: dict[str, Any] | None = None) -> list[ServiceDescriptor]:
        """Descriptors matching every given criterion."""

        with self._lock:
            self.queries += 1
        if self._cache is not None:
            key = ("find", name, module, method, protocol,
                   tuple(sorted(attributes.items())) if attributes else ())
            try:
                cached = self._cache.get(key)
            except TypeError:  # unhashable attribute value: skip the cache
                return self._find_uncached(name=name, module=module, method=method,
                                           protocol=protocol, attributes=attributes)
            if cached is not MISSING:
                return list(cached)
            epoch = self._cache.epoch
            results = self._find_uncached(name=name, module=module, method=method,
                                          protocol=protocol, attributes=attributes)
            self._cache.put_if_epoch(key, tuple(results), epoch=epoch,
                                     tags=("discovery",))
            return results
        return self._find_uncached(name=name, module=module, method=method,
                                   protocol=protocol, attributes=attributes)

    def _find_uncached(self, *, name: str | None, module: str | None,
                       method: str | None, protocol: str | None,
                       attributes: dict[str, Any] | None) -> list[ServiceDescriptor]:
        results = []
        for descriptor in self._live_descriptors():
            if name is not None and descriptor.name != name:
                continue
            if module is not None and not descriptor.offers_module(module):
                continue
            if method is not None and not descriptor.offers_method(method):
                continue
            if protocol is not None and protocol not in descriptor.protocols:
                continue
            if attributes and any(descriptor.attributes.get(k) != v
                                  for k, v in attributes.items()):
                continue
            results.append(descriptor)
        return results

    def lookup_url(self, *, module: str | None = None, method: str | None = None,
                   name: str | None = None) -> str | None:
        """The URL of the first live descriptor matching the criteria, or None.

        This is the "bind at call time" primitive the discovery-aware client
        uses for location-independent calls.
        """

        matches = self.find(name=name, module=module, method=method)
        if not matches:
            return None
        # Prefer the most recently published descriptor (services move).
        matches.sort(key=lambda d: d.published_at, reverse=True)
        return matches[0].url

    def purge_expired(self) -> int:
        before = len(self._descriptors)
        self._live_descriptors()
        return before - len(self._descriptors)

    def bulk_register(self, descriptors: Iterable[ServiceDescriptor]) -> int:
        count = 0
        for descriptor in descriptors:
            self.register(descriptor)
            count += 1
        return count

    def count(self) -> int:
        return len(self._live_descriptors())
