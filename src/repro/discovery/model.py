"""Service descriptors.

A descriptor is what a Clarens server publishes about itself: a name, the URL
clients should bind to, the host DN, the service modules and methods it
offers, and free-form attributes (VO, site, protocols).  Descriptors carry a
TTL; stale descriptors disappear from discovery results, reproducing the
"services appear, disappear, and move" behaviour the paper motivates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ServiceDescriptor", "DEFAULT_TTL_SECONDS"]

DEFAULT_TTL_SECONDS = 300.0


@dataclass
class ServiceDescriptor:
    """Description of one published Clarens server / service endpoint."""

    name: str
    url: str
    host_dn: str = ""
    services: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    protocols: list[str] = field(default_factory=lambda: ["xml-rpc"])
    attributes: dict[str, Any] = field(default_factory=dict)
    published_at: float = field(default_factory=time.time)
    ttl: float = DEFAULT_TTL_SECONDS

    @property
    def key(self) -> str:
        return f"{self.name}@{self.url}"

    def is_expired(self, when: float | None = None) -> bool:
        when = time.time() if when is None else when
        return when - self.published_at > self.ttl

    def refresh(self, when: float | None = None) -> None:
        self.published_at = time.time() if when is None else when

    def offers_module(self, module: str) -> bool:
        return module in self.services

    def offers_method(self, method: str) -> bool:
        return method in self.methods

    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "url": self.url,
            "host_dn": self.host_dn,
            "services": list(self.services),
            "methods": list(self.methods),
            "protocols": list(self.protocols),
            "attributes": dict(self.attributes),
            "published_at": self.published_at,
            "ttl": self.ttl,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ServiceDescriptor":
        return cls(
            name=record["name"],
            url=record.get("url", ""),
            host_dn=record.get("host_dn", ""),
            services=list(record.get("services", [])),
            methods=list(record.get("methods", [])),
            protocols=list(record.get("protocols", ["xml-rpc"])),
            attributes=dict(record.get("attributes", {})),
            published_at=float(record.get("published_at", time.time())),
            ttl=float(record.get("ttl", DEFAULT_TTL_SECONDS)),
        )
