"""Publication of a server's descriptor to the monitoring network.

A Clarens server periodically publishes its service information (UDP-like)
to a station server, which republishes it to the MonALISA network; discovery
servers aggregate from there.  :class:`ServicePublisher` implements the
publishing side with either explicit ``publish_once`` calls (deterministic,
used by tests and benchmarks) or a background thread republished on the
configured interval.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from repro.discovery.model import ServiceDescriptor
from repro.monitoring.station import StationServer

__all__ = ["ServicePublisher"]


class ServicePublisher:
    """Publishes a (possibly changing) service descriptor to a station server."""

    def __init__(self, station: StationServer,
                 descriptor_source: Callable[[], Mapping | ServiceDescriptor], *,
                 interval: float = 30.0, reliable: bool = False) -> None:
        self.station = station
        self._source = descriptor_source
        self.interval = interval
        self.reliable = reliable
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.publications = 0

    # -- one-shot --------------------------------------------------------------------
    def publish_once(self) -> dict:
        """Fetch the current descriptor and publish it; returns the record sent."""

        descriptor = self._source()
        if isinstance(descriptor, ServiceDescriptor):
            record = descriptor.to_record()
        else:
            record = dict(descriptor)
        self.station.receive_service_info(record, reliable=self.reliable)
        self.publications += 1
        return record

    # -- background publication ---------------------------------------------------------
    def start(self) -> "ServicePublisher":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="clarens-publisher",
                                        daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        # Publish immediately, then on every interval until stopped.
        self.publish_once()
        while not self._stop.wait(self.interval):
            self.publish_once()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None

    def __enter__(self) -> "ServicePublisher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
