"""Dynamic service discovery (paper section 2.4).

"Within a global distributed service environment services will appear,
disappear, and be moved in an unpredictable manner."  The discovery service
lets clients and other services query for up-to-date service locations and
interfaces so calls can be made location-independently and bound at call
time.

* :mod:`repro.discovery.model`     -- service descriptors.
* :mod:`repro.discovery.registry`  -- the discovery server's local database of
  descriptors (TTL-based, backed by the MonALISA repository when present).
* :mod:`repro.discovery.publisher` -- periodic publication of a Clarens
  server's descriptor to a station server.
* :mod:`repro.discovery.service`   -- the ``discovery.*`` RPC methods.
"""

from __future__ import annotations

from repro.discovery.model import ServiceDescriptor
from repro.discovery.publisher import ServicePublisher
from repro.discovery.registry import DiscoveryRegistry
from repro.discovery.service import DiscoveryService

__all__ = ["ServiceDescriptor", "DiscoveryRegistry", "ServicePublisher", "DiscoveryService"]
