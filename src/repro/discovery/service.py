"""The ``discovery`` service: RPC access to the discovery registry.

Applications (and other services) "can make service calls that are location
independent by virtue of the discovery service.  Binding to a location can
then occur in real time."  These methods let servers register themselves,
let clients query for services by name/module/method, and let a discovery
server aggregate descriptors from the monitoring network.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import CallContext
from repro.core.service import ClarensService, rpc_method
from repro.discovery.model import ServiceDescriptor
from repro.discovery.registry import DiscoveryRegistry

__all__ = ["DiscoveryService"]


class DiscoveryService(ClarensService):
    """Service discovery methods backed by a local registry."""

    service_name = "discovery"

    def __init__(self, server) -> None:
        super().__init__(server)
        repository = getattr(server, "monitor", None)
        cache = server.make_cache("discovery.lookups",
                                  maxsize=server.config.cache_discovery_maxsize,
                                  ttl=server.config.cache_discovery_ttl)
        self.registry = DiscoveryRegistry(
            repository=repository, cache=cache,
            invalidation=server.invalidation if cache is not None else None)

    def on_start(self) -> None:
        # A server always knows about itself; this also guarantees that a
        # freshly started server answers discovery queries for its own modules.
        self.registry.register(ServiceDescriptor.from_record(self.server.service_descriptor()))

    # -- registration ------------------------------------------------------------------
    # Published as ``discovery.register``; the Python name differs so it does
    # not shadow ClarensService.register (the framework registration hook).
    @rpc_method("register")
    def register_descriptor(self, ctx: CallContext, descriptor: dict) -> bool:
        """Register (or refresh) a service descriptor."""

        ctx.require_dn()
        self.registry.register(ServiceDescriptor.from_record(descriptor))
        return True

    @rpc_method()
    def deregister(self, ctx: CallContext, name: str, url: str = "") -> int:
        """Remove descriptors by name (and URL when given); returns the count."""

        ctx.require_dn()
        return self.registry.deregister(name, url or None)

    @rpc_method()
    def refresh(self, ctx: CallContext, name: str, url: str) -> bool:
        """Refresh the TTL of an existing registration."""

        ctx.require_dn()
        return self.registry.refresh(name, url)

    # -- queries -----------------------------------------------------------------------
    @rpc_method(anonymous=True)
    def find(self, name: str = "", module: str = "", method: str = "",
             protocol: str = "") -> list[dict[str, Any]]:
        """Find live service descriptors matching the given criteria."""

        matches = self.registry.find(
            name=name or None, module=module or None,
            method=method or None, protocol=protocol or None)
        return [m.to_record() for m in matches]

    @rpc_method(anonymous=True)
    def lookup(self, module: str = "", method: str = "", name: str = "") -> str:
        """Return the URL of a live server offering the module/method ('' if none)."""

        url = self.registry.lookup_url(module=module or None, method=method or None,
                                       name=name or None)
        return url or ""

    @rpc_method(anonymous=True)
    def list_servers(self) -> list[dict[str, Any]]:
        """All live descriptors known to this discovery server."""

        return [d.to_record() for d in self.registry.all()]

    @rpc_method(anonymous=True)
    def count(self) -> int:
        """Number of live descriptors."""

        return self.registry.count()

    # -- aggregation ----------------------------------------------------------------------
    @rpc_method()
    def sync(self, ctx: CallContext) -> int:
        """Pull descriptors from the monitoring network (admins only)."""

        self.server.require_admin(ctx)
        return self.registry.sync_from_repository()

    @rpc_method()
    def purge(self, ctx: CallContext) -> int:
        """Drop expired descriptors (admins only); returns how many were removed."""

        self.server.require_admin(ctx)
        return self.registry.purge_expired()
