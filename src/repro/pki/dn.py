"""Distinguished names.

Grid identities in Clarens are X.509 distinguished names written in the
OpenSSL "slash" form used throughout the paper, e.g.::

    /O=doesciencegrid.org/OU=People/CN=John Smith 12345
    /DC=org/DC=doegrids/OU=People/CN=Joe User

Two properties of DNs matter to the framework:

* they are ordered sequences of attribute=value pairs (the order is
  significant -- ``/O=x/OU=y`` is not the same identity as ``/OU=y/O=x``);
* the VO service allows *prefix membership*: listing
  ``/O=doesciencegrid.org/OU=People`` as a group member admits every
  individual certificate issued under that branch (paper, section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = ["DN", "DNParseError", "RDN"]

#: Attribute keys recognised by the paper's examples.  Unknown keys are still
#: accepted (grid CAs used a variety of schemas); this tuple only drives
#: normalisation of case.
WELL_KNOWN_KEYS = ("C", "ST", "L", "O", "OU", "CN", "DC", "EMAIL", "EMAILADDRESS", "UID")


class DNParseError(ValueError):
    """Raised when a distinguished-name string cannot be parsed."""


@dataclass(frozen=True, order=True)
class RDN:
    """A single relative distinguished name: an ``attribute=value`` pair."""

    key: str
    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.key}={self.value}"


class DN:
    """An ordered X.509 distinguished name.

    Instances are immutable, hashable and comparable; equality is
    case-insensitive on attribute keys and case-sensitive on values, matching
    the behaviour of the grid map files Clarens interoperated with.
    """

    __slots__ = ("_rdns", "_canonical")

    def __init__(self, rdns: Iterable[Tuple[str, str] | RDN]):
        normalised = []
        for item in rdns:
            if isinstance(item, RDN):
                key, value = item.key, item.value
            else:
                key, value = item
            key = key.strip()
            value = value.strip()
            if not key:
                raise DNParseError("empty attribute key in DN component")
            if not value:
                raise DNParseError(f"empty value for attribute {key!r}")
            canon_key = key.upper() if key.upper() in WELL_KNOWN_KEYS else key
            normalised.append(RDN(canon_key, value))
        if not normalised:
            raise DNParseError("a DN must contain at least one component")
        object.__setattr__(self, "_rdns", tuple(normalised))
        object.__setattr__(
            self, "_canonical", "/" + "/".join(f"{r.key}={r.value}" for r in normalised)
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "DN":
        """Parse a slash-form DN string such as ``/O=cern.ch/CN=alice``.

        Escaped slashes (``\\/``) inside values are honoured so that values
        containing path-like data (for instance service DNs naming a URL) can
        round-trip.
        """

        if not isinstance(text, str):
            raise DNParseError(f"DN must be a string, got {type(text).__name__}")
        stripped = text.strip()
        if not stripped:
            raise DNParseError("empty DN string")
        if not stripped.startswith("/"):
            raise DNParseError(f"DN must start with '/': {text!r}")

        components: list[str] = []
        current: list[str] = []
        escaped = False
        for ch in stripped[1:]:
            if escaped:
                current.append(ch)
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == "/":
                components.append("".join(current))
                current = []
            else:
                current.append(ch)
        if escaped:
            raise DNParseError(f"dangling escape at end of DN: {text!r}")
        components.append("".join(current))

        rdns: list[Tuple[str, str]] = []
        for comp in components:
            if not comp.strip():
                raise DNParseError(f"empty component in DN: {text!r}")
            if "=" not in comp:
                if rdns:
                    # An unescaped slash inside the previous value — the
                    # Globus host/service convention (``CN=host/fqdn``)
                    # writes these routinely, and the canonical string form
                    # does not escape them, so round-tripping str(DN) back
                    # through parse() must reassemble the value.
                    key, value = rdns[-1]
                    rdns[-1] = (key, f"{value}/{comp}")
                    continue
                raise DNParseError(f"component {comp!r} is not of the form key=value")
            key, _, value = comp.partition("=")
            rdns.append((key, value))
        return cls(rdns)

    @classmethod
    def coerce(cls, value: "DN | str") -> "DN":
        """Return ``value`` as a :class:`DN`, parsing strings as needed."""

        if isinstance(value, DN):
            return value
        return cls.parse(value)

    # -- accessors ---------------------------------------------------------
    @property
    def rdns(self) -> Sequence[RDN]:
        """The ordered components of this DN."""

        return self._rdns

    @property
    def common_name(self) -> str | None:
        """The value of the last ``CN`` component, or ``None``."""

        for rdn in reversed(self._rdns):
            if rdn.key == "CN":
                return rdn.value
        return None

    @property
    def organization(self) -> str | None:
        """The value of the first ``O`` component, or ``None``."""

        return self.first_value("O")

    def first_value(self, key: str) -> str | None:
        """Return the value of the first component with the given key."""

        canon = key.upper() if key.upper() in WELL_KNOWN_KEYS else key
        for rdn in self._rdns:
            if rdn.key == canon:
                return rdn.value
        return None

    def values(self, key: str) -> list[str]:
        """Return all values of components with the given key, in order."""

        canon = key.upper() if key.upper() in WELL_KNOWN_KEYS else key
        return [rdn.value for rdn in self._rdns if rdn.key == canon]

    # -- hierarchy ---------------------------------------------------------
    def is_prefix_of(self, other: "DN | str") -> bool:
        """True if this DN is an initial segment of ``other``.

        This implements the VO optimisation from section 2.1 of the paper:
        ``/O=doesciencegrid.org/OU=People`` is a prefix of every DN issued for
        an individual by that CA, so listing the prefix as a group member
        admits all of them.  A DN is a prefix of itself.
        """

        other_dn = DN.coerce(other)
        if len(self._rdns) > len(other_dn._rdns):
            return False
        return all(a == b for a, b in zip(self._rdns, other_dn._rdns))

    def matches(self, pattern: "DN | str") -> bool:
        """True if ``pattern`` is a prefix of this DN (the inverse view)."""

        return DN.coerce(pattern).is_prefix_of(self)

    def parent(self) -> "DN | None":
        """The DN with the last component removed (``None`` at the root)."""

        if len(self._rdns) <= 1:
            return None
        return DN(self._rdns[:-1])

    def child(self, key: str, value: str) -> "DN":
        """Return a new DN with one extra component appended."""

        return DN(tuple(self._rdns) + (RDN(key, value),))

    def is_service_dn(self) -> bool:
        """Heuristic used by the paper's examples: host/service certificates
        carry a ``CN=host/<fqdn>``-style component or an ``OU=Services`` unit."""

        if any(r.key == "OU" and r.value.lower() in {"services", "hosts"} for r in self._rdns):
            return True
        cn = self.common_name
        return bool(cn and cn.startswith(("host/", "service/")))

    # -- dunder ------------------------------------------------------------
    def __iter__(self) -> Iterator[RDN]:
        return iter(self._rdns)

    def __len__(self) -> int:
        return len(self._rdns)

    def __str__(self) -> str:
        return self._canonical

    def __repr__(self) -> str:
        return f"DN({self._canonical!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            try:
                other = DN.parse(other)
            except DNParseError:
                return NotImplemented
        if not isinstance(other, DN):
            return NotImplemented
        return self._rdns == other._rdns

    def __hash__(self) -> int:
        return hash(self._rdns)
