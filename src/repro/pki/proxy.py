"""Proxy certificates.

Section 2.6 of the paper describes the proxy service: a *proxy certificate*
"consist[s] of a temporary certificate (public key) and unencrypted private
key that can be used to log into remote servers without the inconvenience to
type in the private key password over and over", and delegation lets others
act on the user's behalf.

A proxy certificate here follows the RFC 3820 idea in miniature: it is a
short-lived certificate whose *issuer* is the user's own end-entity
certificate (not a CA), whose subject is the user's DN with an extra
``CN=proxy`` (or ``CN=limited proxy``) component appended, and which is
signed with the user's private key.  Chains of proxies (delegation) append
one more ``CN=proxy`` level per hop, bounded by ``delegation_depth``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Sequence

from repro.cache.core import MISSING, TTLLRUCache
from repro.cache.invalidation import InvalidationBus
from repro.pki.certificate import Certificate, TrustStore, VerificationError, verify_chain
from repro.pki.credentials import Credential
from repro.pki.dn import DN
from repro.pki.rsa import generate_keypair

__all__ = ["ProxyCertificate", "issue_proxy", "verify_proxy_chain",
           "ChainVerificationCache", "DEFAULT_PROXY_LIFETIME"]

#: Twelve hours -- the conventional lifetime of ``grid-proxy-init`` proxies.
DEFAULT_PROXY_LIFETIME = 12 * 3600.0

_proxy_serials = itertools.count(10_000_000)
_serial_lock = threading.Lock()

#: Distinguishes "argument omitted" from an explicit ``None`` revocation map.
_UNSET = object()


def _next_proxy_serial() -> int:
    with _serial_lock:
        return next(_proxy_serials)


@dataclass(frozen=True)
class ProxyCertificate:
    """A proxy credential: certificate, *unencrypted* private key, chain.

    ``chain`` holds the issuing certificates from the user's end-entity
    certificate up to (but not including) the CA root.
    """

    credential: Credential
    limited: bool = False

    @property
    def certificate(self) -> Certificate:
        return self.credential.certificate

    @property
    def subject(self) -> DN:
        return self.credential.certificate.subject

    @property
    def owner_dn(self) -> DN:
        """The DN of the end entity that (transitively) issued this proxy."""

        dn = self.credential.certificate.subject
        while dn.rdns and dn.rdns[-1].key == "CN" and dn.rdns[-1].value in ("proxy", "limited proxy"):
            parent = dn.parent()
            if parent is None:
                break
            dn = parent
        return dn

    @property
    def delegation_depth(self) -> int:
        """How many proxy levels separate this proxy from the end entity."""

        depth = 0
        for rdn in reversed(self.credential.certificate.subject.rdns):
            if rdn.key == "CN" and rdn.value in ("proxy", "limited proxy"):
                depth += 1
            else:
                break
        return depth

    def time_left(self, when: float | None = None) -> float:
        """Seconds of validity remaining (may be negative once expired)."""

        when = time.time() if when is None else when
        return self.credential.certificate.not_after - when

    def is_expired(self, when: float | None = None) -> bool:
        return self.time_left(when) <= 0

    def to_dict(self) -> dict:
        return {"credential": self.credential.to_dict(), "limited": self.limited}

    @classmethod
    def from_dict(cls, data: dict) -> "ProxyCertificate":
        return cls(credential=Credential.from_dict(data["credential"]), limited=bool(data["limited"]))


def issue_proxy(
    issuer: Credential,
    *,
    lifetime: float = DEFAULT_PROXY_LIFETIME,
    limited: bool = False,
    key_bits: int | None = None,
) -> ProxyCertificate:
    """Create a proxy certificate signed by ``issuer``.

    ``issuer`` may itself be a proxy credential, in which case the result is a
    delegated (second-level, third-level, ...) proxy.  The proxy's lifetime is
    clipped to its issuer's remaining lifetime, matching grid tooling which
    refuses to issue proxies outliving the signing credential.
    """

    now = time.time()
    issuer_cert = issuer.certificate
    if issuer_cert.not_after <= now:
        raise VerificationError("cannot issue a proxy from an expired credential")
    lifetime = min(lifetime, issuer_cert.not_after - now)

    cn_value = "limited proxy" if limited else "proxy"
    subject = issuer_cert.subject.child("CN", cn_value)
    keypair = generate_keypair(key_bits or issuer_cert.public_key.bits, None)
    cert = Certificate.build_and_sign(
        subject=subject,
        issuer=issuer_cert.subject,
        public_key=keypair.public,
        signing_key=issuer.private_key,
        serial=_next_proxy_serial(),
        lifetime=lifetime,
        not_before=now,
        is_ca=False,
        is_proxy=True,
        extensions={"proxy_policy": "limited" if limited else "impersonation"},
    )
    chain = (issuer_cert, *tuple(issuer.chain))
    return ProxyCertificate(
        credential=Credential(certificate=cert, private_key=keypair.private, chain=chain),
        limited=limited,
    )


def verify_proxy_chain(
    proxy: ProxyCertificate | Sequence[Certificate],
    trust_store: TrustStore,
    *,
    when: float | None = None,
    max_delegation_depth: int = 8,
    revoked_serials=None,
) -> DN:
    """Verify a proxy chain and return the *owner* DN it authenticates.

    The chain is ``proxy -> [intermediate proxies] -> end entity -> CA``.
    Rules layered on top of ordinary chain verification:

    * every certificate below the end entity must carry ``is_proxy``;
    * each proxy's subject must be its issuer's subject plus exactly one
      ``CN=proxy`` / ``CN=limited proxy`` component;
    * delegation depth is bounded;
    * a limited proxy may only be followed by limited proxies.
    """

    if isinstance(proxy, ProxyCertificate):
        chain: list[Certificate] = list(proxy.credential.full_chain())
    else:
        chain = list(proxy)
    if not chain:
        raise VerificationError("empty proxy chain")

    when = time.time() if when is None else when

    proxies = [c for c in chain if c.is_proxy]
    non_proxies = [c for c in chain if not c.is_proxy]
    if not proxies:
        raise VerificationError("chain does not contain a proxy certificate")
    if not non_proxies:
        raise VerificationError("proxy chain lacks an end-entity certificate")
    if len(proxies) > max_delegation_depth:
        raise VerificationError(
            f"delegation depth {len(proxies)} exceeds limit {max_delegation_depth}"
        )

    # The ordering must be proxies first (deepest first), then end entity.
    for idx, cert in enumerate(chain):
        if cert.is_proxy and any(not c.is_proxy for c in chain[:idx]):
            raise VerificationError("proxy certificate appears above an end-entity certificate")

    # Validate proxy naming: subject == issuer subject + CN=proxy.
    limited_seen = False
    for cert in reversed(proxies):  # walk from least-delegated to most
        last = cert.subject.rdns[-1]
        if last.key != "CN" or last.value not in ("proxy", "limited proxy"):
            raise VerificationError(f"proxy subject {cert.subject} lacks a CN=proxy component")
        if cert.subject.parent() != cert.issuer:
            raise VerificationError(
                f"proxy subject {cert.subject} is not issuer subject plus one component"
            )
        if limited_seen and last.value != "limited proxy":
            raise VerificationError("a limited proxy may not delegate a full proxy")
        if last.value == "limited proxy":
            limited_seen = True

    verify_chain(chain, trust_store, when=when, revoked_serials=revoked_serials)

    owner = non_proxies[0].subject
    return owner


class ChainVerificationCache:
    """Memoizes successful chain verifications (RSA math is the cost).

    Verifying a chain re-runs one RSA signature check per certificate; for a
    busy server the same client chain arrives on every login.  The cache key
    is the tuple of certificate fingerprints, so any re-issued or altered
    certificate misses.  Only *successful* verifications are cached, each
    bounded by the earliest ``not_after`` in the chain; every hit re-checks
    both that deadline and the live ``revoked_serials`` mapping, so a cached
    entry can neither outlive the chain's validity nor survive a revocation.
    Entries are tagged ``pki:<owner dn>``; :meth:`invalidate_dn` publishes
    that tag for an explicit flush.
    """

    def __init__(self, cache: TTLLRUCache, trust_store: TrustStore, *,
                 revoked_serials=None,
                 invalidation: InvalidationBus | None = None) -> None:
        #: ``revoked_serials`` may be the mapping itself or a zero-argument
        #: callable returning the *current* mapping, so callers that replace
        #: their revocation dict wholesale (rather than mutating it in place)
        #: are still honoured on every lookup.
        self._cache = cache
        self._trust_store = trust_store
        self._revoked_serials = revoked_serials
        self._invalidation = invalidation
        if invalidation is not None:
            invalidation.subscribe("pki", cache)

    def _current_revocations(self):
        if callable(self._revoked_serials):
            return self._revoked_serials()
        return self._revoked_serials

    @staticmethod
    def _key(kind: str, chain: Sequence[Certificate]) -> tuple:
        return (kind, tuple(cert.fingerprint() for cert in chain))

    @staticmethod
    def _any_revoked(revoked, revocation_pairs) -> bool:
        if not revoked:
            return False
        for issuer, serial in revocation_pairs:
            serials = revoked.get(issuer)
            if serials and serial in serials:
                return True
        return False

    def _cached_result(self, key: tuple, when: float, revoked):
        entry = self._cache.get(key)
        if entry is MISSING:
            return MISSING
        result, not_before, not_after, revocation_pairs, anchor_subject, anchor_fp = entry
        # The validity window, revocation list and trust anchor are
        # re-checked on every hit, so a cached verification is never served
        # outside the chain's own validity, a serial revoked after caching
        # forces a full (failing) re-verification, and removing (or
        # replacing) the root CA from the trust store takes effect
        # immediately.
        anchor = self._trust_store.get(anchor_subject)
        if (when < not_before or when >= not_after
                or anchor is None or anchor.fingerprint() != anchor_fp
                or self._any_revoked(revoked, revocation_pairs)):
            self._cache.invalidate(key)
            return MISSING
        return result

    def _store(self, key: tuple, result, chain: Sequence[Certificate], owner: str,
               epoch: int) -> None:
        # A chain may omit the root; verification resolved the anchor from
        # the trust store, so its expiry (and continued presence, checked on
        # every hit) bounds the cached success too.
        anchor = self._trust_store.get(chain[-1].issuer)
        if anchor is None:  # pragma: no cover - verification already passed
            return
        certs = [*chain, anchor]
        not_before = max(cert.not_before for cert in certs)
        not_after = min(cert.not_after for cert in certs)
        revocation_pairs = tuple((cert.issuer, cert.serial) for cert in chain)
        entry = (result, not_before, not_after, revocation_pairs,
                 anchor.subject, anchor.fingerprint())
        self._cache.put_if_epoch(key, entry, epoch=epoch, tags=(f"pki:{owner}",))

    def verify_chain(self, chain: Sequence[Certificate], *,
                     when: float | None = None,
                     revoked_serials=_UNSET) -> Certificate:
        """Like :func:`repro.pki.certificate.verify_chain`, memoized.

        ``revoked_serials`` overrides the constructor mapping for this call,
        so a caller that owns the authoritative revocation list (e.g. the
        authenticator) can pass its current one every time.
        """

        when = time.time() if when is None else when
        revoked = (self._current_revocations() if revoked_serials is _UNSET
                   else revoked_serials)
        key = self._key("chain", chain)
        cached = self._cached_result(key, when, revoked)
        if cached is not MISSING:
            return cached
        epoch = self._cache.epoch
        end_entity = verify_chain(list(chain), self._trust_store, when=when,
                                  revoked_serials=revoked)
        self._store(key, end_entity, chain, str(end_entity.subject), epoch)
        return end_entity

    def verify_proxy_chain(self, proxy: "ProxyCertificate | Sequence[Certificate]", *,
                           when: float | None = None,
                           max_delegation_depth: int = 8,
                           revoked_serials=_UNSET) -> DN:
        """Like :func:`verify_proxy_chain`, memoized on the chain fingerprints.

        ``max_delegation_depth`` is part of the cache key, so a stricter
        bound never gets served a success computed under a laxer one;
        ``revoked_serials`` overrides the constructor mapping per call.
        """

        when = time.time() if when is None else when
        revoked = (self._current_revocations() if revoked_serials is _UNSET
                   else revoked_serials)
        if isinstance(proxy, ProxyCertificate):
            chain: Sequence[Certificate] = proxy.credential.full_chain()
        else:
            chain = tuple(proxy)
        key = ("proxy", max_delegation_depth,
               tuple(cert.fingerprint() for cert in chain))
        cached = self._cached_result(key, when, revoked)
        if cached is not MISSING:
            return cached
        epoch = self._cache.epoch
        owner = verify_proxy_chain(chain, self._trust_store, when=when,
                                   max_delegation_depth=max_delegation_depth,
                                   revoked_serials=revoked)
        self._store(key, owner, chain, str(owner), epoch)
        return owner

    def invalidate_dn(self, dn) -> None:
        """Drop every cached verification owned by ``dn`` (e.g. revocation)."""

        tag = f"pki:{dn}"
        if self._invalidation is not None:
            self._invalidation.publish(tag)
        else:
            self._cache.invalidate_tag(tag)
