"""Proxy certificates.

Section 2.6 of the paper describes the proxy service: a *proxy certificate*
"consist[s] of a temporary certificate (public key) and unencrypted private
key that can be used to log into remote servers without the inconvenience to
type in the private key password over and over", and delegation lets others
act on the user's behalf.

A proxy certificate here follows the RFC 3820 idea in miniature: it is a
short-lived certificate whose *issuer* is the user's own end-entity
certificate (not a CA), whose subject is the user's DN with an extra
``CN=proxy`` (or ``CN=limited proxy``) component appended, and which is
signed with the user's private key.  Chains of proxies (delegation) append
one more ``CN=proxy`` level per hop, bounded by ``delegation_depth``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Sequence

from repro.pki.certificate import Certificate, TrustStore, VerificationError, verify_chain
from repro.pki.credentials import Credential
from repro.pki.dn import DN
from repro.pki.rsa import generate_keypair

__all__ = ["ProxyCertificate", "issue_proxy", "verify_proxy_chain", "DEFAULT_PROXY_LIFETIME"]

#: Twelve hours -- the conventional lifetime of ``grid-proxy-init`` proxies.
DEFAULT_PROXY_LIFETIME = 12 * 3600.0

_proxy_serials = itertools.count(10_000_000)
_serial_lock = threading.Lock()


def _next_proxy_serial() -> int:
    with _serial_lock:
        return next(_proxy_serials)


@dataclass(frozen=True)
class ProxyCertificate:
    """A proxy credential: certificate, *unencrypted* private key, chain.

    ``chain`` holds the issuing certificates from the user's end-entity
    certificate up to (but not including) the CA root.
    """

    credential: Credential
    limited: bool = False

    @property
    def certificate(self) -> Certificate:
        return self.credential.certificate

    @property
    def subject(self) -> DN:
        return self.credential.certificate.subject

    @property
    def owner_dn(self) -> DN:
        """The DN of the end entity that (transitively) issued this proxy."""

        dn = self.credential.certificate.subject
        while dn.rdns and dn.rdns[-1].key == "CN" and dn.rdns[-1].value in ("proxy", "limited proxy"):
            parent = dn.parent()
            if parent is None:
                break
            dn = parent
        return dn

    @property
    def delegation_depth(self) -> int:
        """How many proxy levels separate this proxy from the end entity."""

        depth = 0
        for rdn in reversed(self.credential.certificate.subject.rdns):
            if rdn.key == "CN" and rdn.value in ("proxy", "limited proxy"):
                depth += 1
            else:
                break
        return depth

    def time_left(self, when: float | None = None) -> float:
        """Seconds of validity remaining (may be negative once expired)."""

        when = time.time() if when is None else when
        return self.credential.certificate.not_after - when

    def is_expired(self, when: float | None = None) -> bool:
        return self.time_left(when) <= 0

    def to_dict(self) -> dict:
        return {"credential": self.credential.to_dict(), "limited": self.limited}

    @classmethod
    def from_dict(cls, data: dict) -> "ProxyCertificate":
        return cls(credential=Credential.from_dict(data["credential"]), limited=bool(data["limited"]))


def issue_proxy(
    issuer: Credential,
    *,
    lifetime: float = DEFAULT_PROXY_LIFETIME,
    limited: bool = False,
    key_bits: int | None = None,
) -> ProxyCertificate:
    """Create a proxy certificate signed by ``issuer``.

    ``issuer`` may itself be a proxy credential, in which case the result is a
    delegated (second-level, third-level, ...) proxy.  The proxy's lifetime is
    clipped to its issuer's remaining lifetime, matching grid tooling which
    refuses to issue proxies outliving the signing credential.
    """

    now = time.time()
    issuer_cert = issuer.certificate
    if issuer_cert.not_after <= now:
        raise VerificationError("cannot issue a proxy from an expired credential")
    lifetime = min(lifetime, issuer_cert.not_after - now)

    cn_value = "limited proxy" if limited else "proxy"
    subject = issuer_cert.subject.child("CN", cn_value)
    keypair = generate_keypair(key_bits or issuer_cert.public_key.bits, None)
    cert = Certificate.build_and_sign(
        subject=subject,
        issuer=issuer_cert.subject,
        public_key=keypair.public,
        signing_key=issuer.private_key,
        serial=_next_proxy_serial(),
        lifetime=lifetime,
        not_before=now,
        is_ca=False,
        is_proxy=True,
        extensions={"proxy_policy": "limited" if limited else "impersonation"},
    )
    chain = (issuer_cert, *tuple(issuer.chain))
    return ProxyCertificate(
        credential=Credential(certificate=cert, private_key=keypair.private, chain=chain),
        limited=limited,
    )


def verify_proxy_chain(
    proxy: ProxyCertificate | Sequence[Certificate],
    trust_store: TrustStore,
    *,
    when: float | None = None,
    max_delegation_depth: int = 8,
    revoked_serials=None,
) -> DN:
    """Verify a proxy chain and return the *owner* DN it authenticates.

    The chain is ``proxy -> [intermediate proxies] -> end entity -> CA``.
    Rules layered on top of ordinary chain verification:

    * every certificate below the end entity must carry ``is_proxy``;
    * each proxy's subject must be its issuer's subject plus exactly one
      ``CN=proxy`` / ``CN=limited proxy`` component;
    * delegation depth is bounded;
    * a limited proxy may only be followed by limited proxies.
    """

    if isinstance(proxy, ProxyCertificate):
        chain: list[Certificate] = list(proxy.credential.full_chain())
    else:
        chain = list(proxy)
    if not chain:
        raise VerificationError("empty proxy chain")

    when = time.time() if when is None else when

    proxies = [c for c in chain if c.is_proxy]
    non_proxies = [c for c in chain if not c.is_proxy]
    if not proxies:
        raise VerificationError("chain does not contain a proxy certificate")
    if not non_proxies:
        raise VerificationError("proxy chain lacks an end-entity certificate")
    if len(proxies) > max_delegation_depth:
        raise VerificationError(
            f"delegation depth {len(proxies)} exceeds limit {max_delegation_depth}"
        )

    # The ordering must be proxies first (deepest first), then end entity.
    for idx, cert in enumerate(chain):
        if cert.is_proxy and any(not c.is_proxy for c in chain[:idx]):
            raise VerificationError("proxy certificate appears above an end-entity certificate")

    # Validate proxy naming: subject == issuer subject + CN=proxy.
    limited_seen = False
    for cert in reversed(proxies):  # walk from least-delegated to most
        last = cert.subject.rdns[-1]
        if last.key != "CN" or last.value not in ("proxy", "limited proxy"):
            raise VerificationError(f"proxy subject {cert.subject} lacks a CN=proxy component")
        if cert.subject.parent() != cert.issuer:
            raise VerificationError(
                f"proxy subject {cert.subject} is not issuer subject plus one component"
            )
        if limited_seen and last.value != "limited proxy":
            raise VerificationError("a limited proxy may not delegate a full proxy")
        if last.value == "limited proxy":
            limited_seen = True

    verify_chain(chain, trust_store, when=when, revoked_serials=revoked_serials)

    owner = non_proxies[0].subject
    return owner
