"""Textbook RSA implemented from scratch.

The Clarens servers of 2005 authenticated clients with X.509 certificates
whose signatures were produced by RSA.  This module provides the minimal RSA
machinery the reproduction needs — deterministic-enough key generation via
Miller–Rabin, SHA-256 based signatures, and a tiny OAEP-less encryption
primitive used by the simulated TLS handshake and the proxy store.

Design notes
------------
* Keys default to 512-bit moduli.  That is far too small for real security
  but keeps key generation and per-request signature checks cheap, which
  matters because the Figure 4 benchmark performs certificate-derived session
  checks on every call.  The size is configurable for tests that want to
  exercise bigger keys.
* Signing is "hash then modular exponentiation" with a fixed domain prefix.
  Verification recomputes the hash and compares.  No padding oracle concerns
  apply because this is a behavioural simulation, documented as such in
  DESIGN.md.
* All functions are pure and thread-safe; key generation accepts an optional
  :class:`random.Random` so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "RSAKeyPair",
    "generate_keypair",
    "is_probable_prime",
    "generate_prime",
]

_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)

_SIGNATURE_DOMAIN = b"clarens-rsa-sign-v1:"
_ENCRYPTION_DOMAIN = b"clarens-rsa-encrypt-v1:"
_PUBLIC_EXPONENT = 65537


def _digest_to_int(data: bytes, modulus: int, domain: bytes) -> int:
    """Map arbitrary data to an integer smaller than ``modulus``.

    A counter-mode SHA-256 expansion gives enough digest material for any
    modulus size, and reducing modulo ``modulus`` keeps the value in range.
    """

    nbytes = (modulus.bit_length() + 7) // 8 + 8
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < nbytes:
        blocks.append(hashlib.sha256(domain + counter.to_bytes(4, "big") + data).digest())
        counter += 1
    value = int.from_bytes(b"".join(blocks)[:nbytes], "big")
    return value % modulus


def is_probable_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic for small numbers via trial division by the small-prime
    table; probabilistic (error < 4**-rounds) beyond that.
    """

    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random | None = None) -> int:
    """Generate a probable prime of exactly ``bits`` bits."""

    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    rng = rng or random.SystemRandom()
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng=rng):
            return candidate


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int = _PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def verify(self, data: bytes, signature: int) -> bool:
        """Return True when ``signature`` is a valid signature over ``data``."""

        if not isinstance(signature, int) or not (0 < signature < self.n):
            return False
        expected = _digest_to_int(data, self.n, _SIGNATURE_DOMAIN)
        return pow(signature, self.e, self.n) == expected

    def encrypt_int(self, value: int) -> int:
        """Raw RSA encryption of an integer already reduced modulo ``n``."""

        if not (0 <= value < self.n):
            raise ValueError("plaintext integer out of range for this key")
        return pow(value, self.e, self.n)

    def encrypt_secret(self, secret: bytes) -> int:
        """Encrypt a short secret (for example a TLS pre-master key).

        The secret is mapped into the key's integer range with a domain
        separated hash expansion, so the receiving side must use
        :meth:`RSAPrivateKey.recover_secret_check` with the candidate secret.
        For the simulated handshake we instead encrypt the integer encoding of
        the secret directly; the secret must therefore be shorter than the
        modulus.
        """

        value = int.from_bytes(_ENCRYPTION_DOMAIN + secret, "big")
        if value >= self.n:
            raise ValueError("secret too long for key size")
        return self.encrypt_int(value)

    def fingerprint(self) -> str:
        """A short stable identifier for the key (hex SHA-256 prefix)."""

        material = f"{self.n:x}:{self.e:x}".encode()
        return hashlib.sha256(material).hexdigest()[:32]

    def to_dict(self) -> dict:
        return {"n": format(self.n, "x"), "e": self.e}

    @classmethod
    def from_dict(cls, data: dict) -> "RSAPublicKey":
        return cls(n=int(data["n"], 16), e=int(data["e"]))


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key ``(n, d)`` retaining the prime factors."""

    n: int
    d: int
    p: int
    q: int
    e: int = _PUBLIC_EXPONENT

    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    def sign(self, data: bytes) -> int:
        """Sign ``data`` (hash-then-exponentiate)."""

        digest = _digest_to_int(data, self.n, _SIGNATURE_DOMAIN)
        return pow(digest, self.d, self.n)

    def decrypt_int(self, ciphertext: int) -> int:
        if not (0 <= ciphertext < self.n):
            raise ValueError("ciphertext out of range for this key")
        return pow(ciphertext, self.d, self.n)

    def decrypt_secret(self, ciphertext: int) -> bytes:
        """Recover a secret produced by :meth:`RSAPublicKey.encrypt_secret`."""

        value = self.decrypt_int(ciphertext)
        nbytes = (value.bit_length() + 7) // 8
        raw = value.to_bytes(nbytes, "big")
        if not raw.startswith(_ENCRYPTION_DOMAIN):
            raise ValueError("decryption failed: bad domain prefix")
        return raw[len(_ENCRYPTION_DOMAIN):]

    def to_dict(self) -> dict:
        return {
            "n": format(self.n, "x"),
            "d": format(self.d, "x"),
            "p": format(self.p, "x"),
            "q": format(self.q, "x"),
            "e": self.e,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RSAPrivateKey":
        return cls(
            n=int(data["n"], 16),
            d=int(data["d"], 16),
            p=int(data["p"], 16),
            q=int(data["q"], 16),
            e=int(data["e"]),
        )


@dataclass(frozen=True)
class RSAKeyPair:
    """A matched public/private key pair."""

    public: RSAPublicKey
    private: RSAPrivateKey


def _modinv(a: int, m: int) -> int:
    """Modular inverse via the extended Euclidean algorithm."""

    g, x, _ = _egcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def generate_keypair(bits: int = 512, rng: random.Random | None = None) -> RSAKeyPair:
    """Generate an RSA key pair with a modulus of roughly ``bits`` bits.

    ``rng`` may be a seeded :class:`random.Random` for reproducible test
    fixtures; production callers should leave it ``None`` to get
    :class:`random.SystemRandom`.
    """

    if bits < 128:
        raise ValueError("modulus must be at least 128 bits")
    rng = rng or random.SystemRandom()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = _modinv(_PUBLIC_EXPONENT, phi)
        private = RSAPrivateKey(n=n, d=d, p=p, q=q, e=_PUBLIC_EXPONENT)
        return RSAKeyPair(public=private.public_key(), private=private)


def combined_fingerprint(keys: Iterable[RSAPublicKey]) -> str:
    """Fingerprint of a set of public keys (used for trust-store identity)."""

    h = hashlib.sha256()
    for key in sorted(keys, key=lambda k: k.n):
        h.update(key.fingerprint().encode())
    return h.hexdigest()[:32]
