"""Public-key infrastructure substrate for Clarens.

The paper relies on X.509 (RFC 3280) certificates issued by grid CAs (for
example the DOE Science Grid CA) for authentication, and on *proxy
certificates* (a temporary certificate plus unencrypted private key) for
delegation and password-free logins.  This package implements the pieces of
that infrastructure the framework actually exercises, from scratch:

* :mod:`repro.pki.dn`          -- distinguished-name parsing and prefix matching.
* :mod:`repro.pki.rsa`         -- textbook RSA key generation, signing, verification.
* :mod:`repro.pki.certificate` -- certificates and chain verification.
* :mod:`repro.pki.authority`   -- certificate authorities and revocation lists.
* :mod:`repro.pki.proxy`       -- proxy-certificate issuance and validation.
* :mod:`repro.pki.credentials` -- (certificate, private key) bundles and key stores.
* :mod:`repro.pki.pem`         -- a PEM-like armored text serialization.

This is a *simulation* of X.509 sufficient for reproducing the framework's
behaviour (DN-based identity, chains, expiry, revocation, delegation).  It is
not a hardened cryptographic implementation and must not be used to protect
real data.
"""

from __future__ import annotations

from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import Certificate, CertificateError, VerificationError
from repro.pki.credentials import Credential, KeyStore
from repro.pki.dn import DN, DNParseError
from repro.pki.proxy import ProxyCertificate, issue_proxy, verify_proxy_chain
from repro.pki.rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey, generate_keypair

__all__ = [
    "CertificateAuthority",
    "Certificate",
    "CertificateError",
    "VerificationError",
    "Credential",
    "KeyStore",
    "DN",
    "DNParseError",
    "ProxyCertificate",
    "issue_proxy",
    "verify_proxy_chain",
    "RSAKeyPair",
    "RSAPrivateKey",
    "RSAPublicKey",
    "generate_keypair",
]
