"""Certificate authorities.

Grid projects of the Clarens era ran their own CAs (DOEGrids, DOE Science
Grid).  :class:`CertificateAuthority` models one: it holds a self-signed root
certificate, issues user/host/service certificates under a configurable base
DN, and maintains a certificate revocation list consulted during chain
verification.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from typing import Mapping

from repro.pki.certificate import Certificate, CertificateError, TrustStore
from repro.pki.credentials import Credential
from repro.pki.dn import DN
from repro.pki.rsa import RSAKeyPair, generate_keypair

__all__ = ["CertificateAuthority", "DEFAULT_USER_LIFETIME", "DEFAULT_CA_LIFETIME"]

#: One year, the typical lifetime of grid user certificates.
DEFAULT_USER_LIFETIME = 365 * 24 * 3600.0
#: Ten years for CA roots.
DEFAULT_CA_LIFETIME = 10 * 365 * 24 * 3600.0


class CertificateAuthority:
    """A certificate authority able to issue and revoke certificates.

    Parameters
    ----------
    name:
        The CA's DN, e.g. ``/O=doesciencegrid.org/CN=DOE Science Grid CA``.
        Strings are parsed.
    key_bits:
        RSA modulus size used for the CA key *and* for issued keys.
    rng:
        Optional seeded random source for reproducible test fixtures.
    """

    def __init__(
        self,
        name: DN | str,
        *,
        key_bits: int = 512,
        lifetime: float = DEFAULT_CA_LIFETIME,
        rng: random.Random | None = None,
    ) -> None:
        self.name = DN.coerce(name)
        self._rng = rng or random.SystemRandom()
        self._key_bits = key_bits
        self._lock = threading.Lock()
        self._serial_counter = itertools.count(1)
        self._revoked: set[int] = set()
        self._issued: dict[int, Certificate] = {}

        self._keypair: RSAKeyPair = generate_keypair(key_bits, self._rng)
        self.certificate = Certificate.build_and_sign(
            subject=self.name,
            issuer=self.name,
            public_key=self._keypair.public,
            signing_key=self._keypair.private,
            serial=next(self._serial_counter),
            lifetime=lifetime,
            is_ca=True,
            path_length=4,
        )

    # -- issuing -----------------------------------------------------------
    def _next_serial(self) -> int:
        with self._lock:
            return next(self._serial_counter)

    def issue(
        self,
        subject: DN | str,
        *,
        lifetime: float = DEFAULT_USER_LIFETIME,
        is_ca: bool = False,
        path_length: int | None = None,
        key_bits: int | None = None,
        extensions: Mapping[str, str] | None = None,
    ) -> Credential:
        """Issue a certificate for ``subject`` with a fresh key pair.

        Returns a :class:`~repro.pki.credentials.Credential` bundling the new
        certificate, its private key, and the issuing chain (just the root).
        """

        subject_dn = DN.coerce(subject)
        keypair = generate_keypair(key_bits or self._key_bits, self._rng)
        cert = Certificate.build_and_sign(
            subject=subject_dn,
            issuer=self.name,
            public_key=keypair.public,
            signing_key=self._keypair.private,
            serial=self._next_serial(),
            lifetime=lifetime,
            is_ca=is_ca,
            path_length=path_length,
            extensions=extensions,
        )
        with self._lock:
            self._issued[cert.serial] = cert
        return Credential(certificate=cert, private_key=keypair.private, chain=(self.certificate,))

    def issue_user(self, common_name: str, organizational_unit: str = "People",
                   *, lifetime: float = DEFAULT_USER_LIFETIME) -> Credential:
        """Issue an individual's certificate under the CA's organization.

        Mirrors the paper's example DN layout::

            /O=doesciencegrid.org/OU=People/CN=John Smith 12345
        """

        org = self.name.organization or self.name.common_name or "grid"
        subject = DN([("O", org), ("OU", organizational_unit), ("CN", common_name)])
        return self.issue(subject, lifetime=lifetime)

    def issue_host(self, hostname: str, *, lifetime: float = DEFAULT_USER_LIFETIME) -> Credential:
        """Issue a host/service certificate (``OU=Services, CN=host/<fqdn>``)."""

        org = self.name.organization or self.name.common_name or "grid"
        subject = DN([("O", org), ("OU", "Services"), ("CN", f"host/{hostname}")])
        return self.issue(subject, lifetime=lifetime)

    def issue_sub_ca(self, name: DN | str, *, lifetime: float = DEFAULT_CA_LIFETIME,
                     path_length: int = 0) -> Credential:
        """Issue an intermediate CA certificate."""

        return self.issue(name, lifetime=lifetime, is_ca=True, path_length=path_length)

    # -- revocation --------------------------------------------------------
    def revoke(self, cert_or_serial: Certificate | int) -> None:
        """Add a certificate (by object or serial) to the CRL."""

        serial = cert_or_serial.serial if isinstance(cert_or_serial, Certificate) else int(cert_or_serial)
        with self._lock:
            if serial not in self._issued:
                raise CertificateError(f"serial {serial} was not issued by this CA")
            self._revoked.add(serial)

    def is_revoked(self, cert_or_serial: Certificate | int) -> bool:
        serial = cert_or_serial.serial if isinstance(cert_or_serial, Certificate) else int(cert_or_serial)
        with self._lock:
            return serial in self._revoked

    def crl(self) -> dict[DN, set[int]]:
        """The CRL in the mapping form expected by ``verify_chain``."""

        with self._lock:
            return {self.name: set(self._revoked)}

    # -- trust -------------------------------------------------------------
    def trust_store(self) -> TrustStore:
        """A trust store containing just this CA's root certificate."""

        return TrustStore([self.certificate])

    def issued_certificates(self) -> list[Certificate]:
        with self._lock:
            return list(self._issued.values())

    # -- introspection -----------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CertificateAuthority({str(self.name)!r}, issued={len(self._issued)})"

    def describe(self) -> dict:
        """A JSON-friendly summary (used by the portal and discovery demos)."""

        with self._lock:
            return {
                "name": str(self.name),
                "issued": len(self._issued),
                "revoked": len(self._revoked),
                "not_after": self.certificate.not_after,
                "generated_at": time.time(),
            }
