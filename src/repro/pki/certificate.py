"""Certificates and chain verification.

A :class:`Certificate` binds a subject :class:`~repro.pki.dn.DN` to an RSA
public key, signed by an issuer.  It carries the subset of X.509/RFC 3280
fields the Clarens framework actually consults: subject, issuer, serial
number, validity window, a proxy flag (RFC 3820-style proxy certificates are
modelled in :mod:`repro.pki.proxy`) and free-form extensions.

Chain verification walks from an end-entity certificate up to a trusted root,
checking signatures, validity windows, issuer/subject linkage, path length
for CA certificates and revocation (CRLs are published by
:class:`repro.pki.authority.CertificateAuthority`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.pki.dn import DN
from repro.pki.rsa import RSAPrivateKey, RSAPublicKey

__all__ = [
    "Certificate",
    "CertificateError",
    "VerificationError",
    "TrustStore",
    "verify_chain",
]


class CertificateError(Exception):
    """Base class for certificate handling errors."""


class VerificationError(CertificateError):
    """Raised when a certificate or chain fails verification."""


def _tbs_bytes(
    subject: DN,
    issuer: DN,
    public_key: RSAPublicKey,
    serial: int,
    not_before: float,
    not_after: float,
    is_ca: bool,
    is_proxy: bool,
    path_length: int | None,
    extensions: Mapping[str, str],
) -> bytes:
    """The canonical "to be signed" byte string for a certificate."""

    payload = {
        "subject": str(subject),
        "issuer": str(issuer),
        "public_key": public_key.to_dict(),
        "serial": serial,
        "not_before": round(not_before, 6),
        "not_after": round(not_after, 6),
        "is_ca": is_ca,
        "is_proxy": is_proxy,
        "path_length": path_length,
        "extensions": dict(sorted(extensions.items())),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class Certificate:
    """An X.509-like certificate.

    Instances are immutable; use :meth:`repro.pki.authority.CertificateAuthority.issue`
    or :func:`repro.pki.proxy.issue_proxy` to create signed certificates.
    """

    subject: DN
    issuer: DN
    public_key: RSAPublicKey
    serial: int
    not_before: float
    not_after: float
    signature: int
    is_ca: bool = False
    is_proxy: bool = False
    path_length: int | None = None
    extensions: Mapping[str, str] = field(default_factory=dict)

    # -- basic checks ------------------------------------------------------
    def tbs_bytes(self) -> bytes:
        """The byte string that was signed by the issuer."""

        return _tbs_bytes(
            self.subject,
            self.issuer,
            self.public_key,
            self.serial,
            self.not_before,
            self.not_after,
            self.is_ca,
            self.is_proxy,
            self.path_length,
            self.extensions,
        )

    def is_valid_at(self, when: float | None = None) -> bool:
        """True when the validity window covers ``when`` (default: now)."""

        when = time.time() if when is None else when
        return self.not_before <= when <= self.not_after

    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def verify_signature(self, issuer_key: RSAPublicKey) -> bool:
        """True when the certificate's signature checks out under ``issuer_key``."""

        return issuer_key.verify(self.tbs_bytes(), self.signature)

    def fingerprint(self) -> str:
        """Stable identifier combining subject, serial and key fingerprint."""

        import hashlib

        material = f"{self.subject}|{self.serial}|{self.public_key.fingerprint()}".encode()
        return hashlib.sha256(material).hexdigest()[:32]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "subject": str(self.subject),
            "issuer": str(self.issuer),
            "public_key": self.public_key.to_dict(),
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "signature": format(self.signature, "x"),
            "is_ca": self.is_ca,
            "is_proxy": self.is_proxy,
            "path_length": self.path_length,
            "extensions": dict(self.extensions),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Certificate":
        try:
            return cls(
                subject=DN.parse(data["subject"]),
                issuer=DN.parse(data["issuer"]),
                public_key=RSAPublicKey.from_dict(data["public_key"]),
                serial=int(data["serial"]),
                not_before=float(data["not_before"]),
                not_after=float(data["not_after"]),
                signature=int(data["signature"], 16),
                is_ca=bool(data.get("is_ca", False)),
                is_proxy=bool(data.get("is_proxy", False)),
                path_length=data.get("path_length"),
                extensions=dict(data.get("extensions", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificateError(f"malformed certificate data: {exc}") from exc

    @staticmethod
    def build_and_sign(
        *,
        subject: DN,
        issuer: DN,
        public_key: RSAPublicKey,
        signing_key: RSAPrivateKey,
        serial: int,
        lifetime: float,
        not_before: float | None = None,
        is_ca: bool = False,
        is_proxy: bool = False,
        path_length: int | None = None,
        extensions: Mapping[str, str] | None = None,
    ) -> "Certificate":
        """Assemble a certificate and sign it with ``signing_key``."""

        extensions = dict(extensions or {})
        not_before = time.time() if not_before is None else not_before
        not_after = not_before + lifetime
        tbs = _tbs_bytes(
            subject, issuer, public_key, serial, not_before, not_after,
            is_ca, is_proxy, path_length, extensions,
        )
        signature = signing_key.sign(tbs)
        return Certificate(
            subject=subject,
            issuer=issuer,
            public_key=public_key,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            signature=signature,
            is_ca=is_ca,
            is_proxy=is_proxy,
            path_length=path_length,
            extensions=extensions,
        )


class TrustStore:
    """A set of trusted root (CA) certificates, keyed by subject DN."""

    def __init__(self, roots: Iterable[Certificate] = ()):  # noqa: D401
        self._roots: dict[DN, Certificate] = {}
        for cert in roots:
            self.add(cert)

    def add(self, cert: Certificate) -> None:
        if not cert.is_ca:
            raise CertificateError(f"{cert.subject} is not a CA certificate")
        if not cert.is_self_signed():
            raise CertificateError("trust anchors must be self-signed")
        if not cert.verify_signature(cert.public_key):
            raise VerificationError(f"self-signature of {cert.subject} is invalid")
        self._roots[cert.subject] = cert

    def remove(self, subject: DN | str) -> None:
        self._roots.pop(DN.coerce(subject), None)

    def get(self, subject: DN | str) -> Certificate | None:
        return self._roots.get(DN.coerce(subject))

    def __contains__(self, subject: object) -> bool:
        try:
            return DN.coerce(subject) in self._roots  # type: ignore[arg-type]
        except Exception:
            return False

    def __len__(self) -> int:
        return len(self._roots)

    def roots(self) -> Sequence[Certificate]:
        return tuple(self._roots.values())


def verify_chain(
    chain: Sequence[Certificate],
    trust_store: TrustStore,
    *,
    when: float | None = None,
    revoked_serials: Mapping[DN, set[int]] | None = None,
) -> Certificate:
    """Verify an ordered chain (end entity first, root last or omitted).

    Returns the end-entity certificate on success.  Proxy certificates must be
    verified with :func:`repro.pki.proxy.verify_proxy_chain`, which layers the
    proxy-specific rules on top of this routine.

    ``revoked_serials`` maps issuer DN to the set of revoked serial numbers
    (as published in the issuer's CRL).
    """

    if not chain:
        raise VerificationError("empty certificate chain")
    when = time.time() if when is None else when
    revoked_serials = revoked_serials or {}

    # Locate the trust anchor: either the last element of the chain if it is
    # a known root, or a root from the store matching the last issuer.
    work = list(chain)
    anchor = trust_store.get(work[-1].issuer)
    if anchor is None and work[-1].is_self_signed():
        anchor = trust_store.get(work[-1].subject)
        if anchor is not None:
            work = work[:-1] or [anchor]
    if anchor is None:
        raise VerificationError(
            f"no trusted root found for issuer {work[-1].issuer}"
        )

    # Walk from the top (closest to root) down to the end entity.
    issuer_cert = anchor
    ca_depth = 0
    for cert in reversed(work):
        if cert is anchor:
            continue
        if not cert.is_valid_at(when):
            raise VerificationError(
                f"certificate {cert.subject} outside validity window"
            )
        if cert.issuer != issuer_cert.subject:
            raise VerificationError(
                f"chain break: {cert.subject} issued by {cert.issuer}, "
                f"expected {issuer_cert.subject}"
            )
        if not issuer_cert.is_ca and not issuer_cert.is_proxy and not cert.is_proxy:
            raise VerificationError(
                f"issuer {issuer_cert.subject} is not a CA"
            )
        if not cert.verify_signature(issuer_cert.public_key):
            raise VerificationError(f"bad signature on {cert.subject}")
        serials = revoked_serials.get(issuer_cert.subject)
        if serials and cert.serial in serials:
            raise VerificationError(f"certificate {cert.subject} is revoked")
        if cert.is_ca:
            ca_depth += 1
            if issuer_cert.path_length is not None and ca_depth > issuer_cert.path_length + 1:
                raise VerificationError("CA path length constraint exceeded")
        issuer_cert = cert

    if not anchor.is_valid_at(when):
        raise VerificationError(f"trust anchor {anchor.subject} expired")
    end_entity = work[0]
    return end_entity
