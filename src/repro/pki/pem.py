"""PEM-like armored text encoding.

Grid credentials live on disk as PEM files.  This module provides the same
armoring (``-----BEGIN <LABEL>-----`` / base64 body / ``-----END <LABEL>-----``)
for the reproduction's own certificate and key serializations, so credentials
and stored proxies are human-recognizable text files.
"""

from __future__ import annotations

import base64
import re
from typing import Iterator

__all__ = ["encode", "decode", "decode_all", "PEMError"]

_BEGIN_RE = re.compile(r"-----BEGIN ([A-Z0-9 _-]+)-----")
_LINE_LENGTH = 64


class PEMError(ValueError):
    """Raised when armored text cannot be decoded."""


def encode(label: str, payload: bytes) -> str:
    """Armor ``payload`` under ``label``; the result ends with a newline."""

    if not label or label != label.upper():
        raise PEMError(f"PEM labels must be non-empty and upper case: {label!r}")
    body = base64.b64encode(payload).decode("ascii")
    lines = [body[i:i + _LINE_LENGTH] for i in range(0, len(body), _LINE_LENGTH)] or [""]
    return (
        f"-----BEGIN {label}-----\n"
        + "\n".join(lines)
        + f"\n-----END {label}-----\n"
    )


def decode_all(text: str) -> Iterator[tuple[str, bytes]]:
    """Yield ``(label, payload)`` for every armored block in ``text``."""

    pos = 0
    found = False
    while True:
        match = _BEGIN_RE.search(text, pos)
        if match is None:
            break
        label = match.group(1)
        end_marker = f"-----END {label}-----"
        end = text.find(end_marker, match.end())
        if end == -1:
            raise PEMError(f"missing end marker for {label!r}")
        body = text[match.end():end]
        try:
            payload = base64.b64decode("".join(body.split()), validate=True)
        except Exception as exc:
            raise PEMError(f"invalid base64 in {label!r} block: {exc}") from exc
        found = True
        yield label, payload
        pos = end + len(end_marker)
    if not found and text.strip():
        raise PEMError("no PEM blocks found")


def decode(text: str, expected_label: str | None = None) -> tuple[str, bytes]:
    """Decode the first armored block, optionally asserting its label."""

    for label, payload in decode_all(text):
        if expected_label is not None and label != expected_label:
            raise PEMError(f"expected {expected_label!r} block, found {label!r}")
        return label, payload
    raise PEMError("no PEM blocks found")
