"""Credential bundles and key stores.

A :class:`Credential` is what a grid user or service holds on disk: a
certificate, the matching private key, and the chain of issuing certificates.
The :class:`KeyStore` persists credentials in a directory layout similar to
``~/.globus`` (one subdirectory per credential, PEM-armored files) so the
examples can demonstrate "log in with the certificate you keep on disk".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.pki import pem
from repro.pki.certificate import Certificate, CertificateError
from repro.pki.dn import DN
from repro.pki.rsa import RSAPrivateKey

__all__ = ["Credential", "KeyStore"]


@dataclass(frozen=True)
class Credential:
    """A certificate plus its private key and issuing chain."""

    certificate: Certificate
    private_key: RSAPrivateKey
    chain: Sequence[Certificate] = field(default_factory=tuple)

    @property
    def subject(self) -> DN:
        return self.certificate.subject

    def full_chain(self) -> tuple[Certificate, ...]:
        """The end-entity certificate followed by the issuing chain."""

        return (self.certificate, *tuple(self.chain))

    def sign(self, data: bytes) -> int:
        """Sign arbitrary data with the credential's private key."""

        return self.private_key.sign(data)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "certificate": self.certificate.to_dict(),
            "private_key": self.private_key.to_dict(),
            "chain": [c.to_dict() for c in self.chain],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Credential":
        try:
            return cls(
                certificate=Certificate.from_dict(data["certificate"]),
                private_key=RSAPrivateKey.from_dict(data["private_key"]),
                chain=tuple(Certificate.from_dict(c) for c in data.get("chain", ())),
            )
        except (KeyError, TypeError) as exc:
            raise CertificateError(f"malformed credential data: {exc}") from exc

    def to_pem(self) -> str:
        """Serialize the whole credential as concatenated PEM-like blocks."""

        blocks = [pem.encode("CLARENS CERTIFICATE", json.dumps(self.certificate.to_dict()).encode())]
        blocks.append(pem.encode("CLARENS PRIVATE KEY", json.dumps(self.private_key.to_dict()).encode()))
        for cert in self.chain:
            blocks.append(pem.encode("CLARENS CA CERTIFICATE", json.dumps(cert.to_dict()).encode()))
        return "".join(blocks)

    @classmethod
    def from_pem(cls, text: str) -> "Credential":
        certificate: Certificate | None = None
        private_key: RSAPrivateKey | None = None
        chain: list[Certificate] = []
        for label, payload in pem.decode_all(text):
            data = json.loads(payload.decode())
            if label == "CLARENS CERTIFICATE":
                certificate = Certificate.from_dict(data)
            elif label == "CLARENS PRIVATE KEY":
                private_key = RSAPrivateKey.from_dict(data)
            elif label == "CLARENS CA CERTIFICATE":
                chain.append(Certificate.from_dict(data))
        if certificate is None or private_key is None:
            raise CertificateError("PEM text does not contain a full credential")
        return cls(certificate=certificate, private_key=private_key, chain=tuple(chain))


class KeyStore:
    """A directory-backed store of credentials keyed by a friendly alias."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, alias: str) -> Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in alias)
        if not any(ch.isalnum() for ch in safe):
            raise ValueError("credential alias must contain at least one alphanumeric character")
        return self.root / f"{safe}.pem"

    def save(self, alias: str, credential: Credential) -> Path:
        """Persist a credential under ``alias`` and return its file path."""

        path = self._path(alias)
        path.write_text(credential.to_pem())
        # Private-key files should not be world readable, mirroring grid
        # tooling which refuses keys with loose permissions.
        try:
            os.chmod(path, 0o600)
        except OSError:  # pragma: no cover - platform specific
            pass
        return path

    def load(self, alias: str) -> Credential:
        path = self._path(alias)
        if not path.exists():
            raise KeyError(f"no credential stored under alias {alias!r}")
        return Credential.from_pem(path.read_text())

    def delete(self, alias: str) -> bool:
        path = self._path(alias)
        if path.exists():
            path.unlink()
            return True
        return False

    def aliases(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.pem"))

    def __contains__(self, alias: object) -> bool:
        return isinstance(alias, str) and self._path(alias).exists()

    def __len__(self) -> int:
        return len(self.aliases())
