"""Pipeline benchmark measurements shared by ``benchmarks/`` and CI tooling.

Both the pytest benchmarks (``benchmarks/bench_multicall.py``,
``benchmarks/bench_fabric.py``) and ``scripts/bench_trend.py`` (the trend
recorder that appends to ``BENCH_pipeline.json``) need the same numbers, so
the measurement functions live here: the batching speedup of
``system.multicall`` over sequential dispatches, a small Figure-4-shaped
throughput probe, and the fabric's gossip/anti-entropy overhead.  Everything
runs on the loopback transport — framework overhead, not kernel sockets —
exactly as the paper measured.
"""

from __future__ import annotations

import gc
import statistics
import time
from typing import Any

from repro.bench.workloads import make_benchmark_environment
from repro.client.asyncclient import AsyncLoadClient

__all__ = ["measure_multicall_speedup", "measure_fig4_throughput",
           "measure_fig4_socket_ab", "measure_fig4_protocols",
           "measure_codec_round_trips", "measure_fabric_overhead",
           "measure_telemetry_overhead", "measure_federation_scrape"]


def measure_multicall_speedup(*, calls: int = 100, rounds: int = 3) -> dict[str, Any]:
    """Time N sequential ``system.echo`` dispatches vs one multicall of N.

    Both paths carry the same payloads through the same pipeline; the batch
    pays decode/session/admission once and the ACL check once per distinct
    method, which is where the speedup comes from.  Best-of-``rounds`` is
    reported to damp scheduler noise.
    """

    env = make_benchmark_environment(access_checks=2, with_tls=False)
    try:
        client = env.client_factory()()
        batch = [("system.echo", [i]) for i in range(calls)]
        expected = list(range(calls))

        # Warm both paths (context-signature caches, session/ACL DB pages).
        client.call("system.echo", 0)
        assert client.multicall(batch[:2]) == [0, 1]

        sequential_s = min(_time_sequential(client, calls) for _ in range(rounds))
        multicall_s = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            results = client.multicall(batch)
            multicall_s = min(multicall_s, time.perf_counter() - start)
            assert results == expected, "multicall results diverged from echo inputs"
        return {
            "calls": calls,
            "sequential_s": sequential_s,
            "multicall_s": multicall_s,
            "sequential_calls_per_second": calls / sequential_s,
            "multicall_calls_per_second": calls / multicall_s,
            "speedup": sequential_s / multicall_s,
        }
    finally:
        env.close()


def _time_sequential(client, calls: int) -> float:
    start = time.perf_counter()
    for i in range(calls):
        client.call("system.echo", i)
    return time.perf_counter() - start


def measure_fabric_overhead(*, lfns: int = 100,
                            gossip_messages: int = 200) -> dict[str, Any]:
    """Gossip relay and catalogue anti-entropy throughput on two servers.

    Builds a two-site fabric (separate monitoring buses, peered channels),
    registers ``lfns`` logical files on site A, then measures:

    * the first anti-entropy round on site B (digest + fetch + merge of
      every entry) — reported as LFNs reconciled per second;
    * a follow-up no-op round (version-vector hit, nothing fetched) — the
      steady-state cost of staying converged;
    * flushing ``gossip_messages`` cache-invalidation messages across the
      fabric — messages relayed per second, end to end (queue, one
      ``fabric.publish`` batch per flush, republish, local apply).
    """

    from repro.client.client import ClarensClient
    from repro.core.config import ServerConfig
    from repro.core.server import ClarensServer
    from repro.pki.authority import CertificateAuthority

    ca = CertificateAuthority("/O=bench.fabric/CN=Bench CA", key_bits=512)
    peering = ca.issue_user("Bench Peering Service")
    peering_dn = str(peering.certificate.subject)
    user = ca.issue_user("Bench User")

    servers = {}
    for site in ("bench-a", "bench-b"):
        host = ca.issue_host(f"{site}.bench.fabric")
        config = ServerConfig(server_name=site,
                              host_dn=str(host.certificate.subject))
        servers[site] = ClarensServer(config, credential=host,
                                      trust_store=ca.trust_store())
    site_a, site_b = servers["bench-a"], servers["bench-b"]

    def factory(target):
        def build():
            return ClarensClient.for_loopback(target.loopback(),
                                              credential=peering)
        return build

    client = None
    try:
        site_a.fabric.add_peer("bench-b", factory=factory(site_b),
                               dn=peering_dn)
        site_b.fabric.add_peer("bench-a", factory=factory(site_a),
                               dn=peering_dn)

        client = ClarensClient.for_loopback(site_a.loopback(),
                                            credential=user)
        payload = b"x" * 256
        for i in range(lfns):
            lfn = f"/lfn/bench/file-{i:05d}.dat"
            client.call("file.write", lfn, payload, False)
            client.call("replica.register", lfn, "local", lfn)

        start = time.perf_counter()
        outcome = site_b.fabric.sync.sync_once()
        first_round_s = time.perf_counter() - start
        imported = outcome["bench-a"]["entries"]

        start = time.perf_counter()
        noop = site_b.fabric.sync.sync_once()
        noop_round_s = time.perf_counter() - start

        applied_before = site_b.fabric.gossip.applied
        start = time.perf_counter()
        flushed = 0
        for i in range(gossip_messages):
            site_a.message_bus.publish("cache.invalidate.bench",
                                       {"tag": f"bench:{i}"},
                                       source="bench-a")
            if (i + 1) % 64 == 0 or i + 1 == gossip_messages:
                site_a.fabric.gossip.flush()
                flushed += 1
        gossip_s = time.perf_counter() - start
        relayed = site_b.fabric.gossip.applied - applied_before

        return {
            "lfns": lfns,
            "imported": imported,
            "first_round_s": first_round_s,
            "sync_lfns_per_second": imported / first_round_s
                                    if first_round_s else 0.0,
            "noop_round_s": noop_round_s,
            "noop_changed": noop["bench-a"]["changed"],
            "gossip_messages": gossip_messages,
            "gossip_relayed": relayed,
            "gossip_flushes": flushed,
            "gossip_s": gossip_s,
            "gossip_messages_per_second": relayed / gossip_s
                                          if gossip_s else 0.0,
        }
    finally:
        if client is not None:
            client.close()
        for server in servers.values():
            server.close()


def measure_telemetry_overhead(*, calls_per_batch: int = 150, n_clients: int = 4,
                               rounds: int = 3) -> dict[str, Any]:
    """Cost of tracing + metrics on the paper's Figure-4 hot path.

    Runs the same concurrent ``system.echo`` load against two otherwise
    identical loopback servers — one paper-mode, one with
    ``telemetry_enabled=True`` (every request minting a trace context,
    recording a span into the ring buffer and feeding the request
    counter/latency histogram).  Rounds are interleaved so thermal or
    scheduler drift hits both servers equally; best-of-``rounds`` throughput
    per mode damps the remaining noise.  The headline number is
    ``overhead_pct`` — how much throughput telemetry costs, which the issue
    budget caps at 5% on a quiet host.
    """

    envs = {
        "baseline": make_benchmark_environment(access_checks=2, with_tls=False),
        "telemetry": make_benchmark_environment(
            access_checks=2, with_tls=False,
            config_overrides={"telemetry_enabled": True}),
    }
    try:
        best: dict[str, float] = {name: 0.0 for name in envs}
        errors = 0
        for _ in range(rounds):
            for name, env in envs.items():
                with AsyncLoadClient(env.client_factory(),
                                     n_clients=n_clients) as load:
                    result = load.run_batch(calls_per_batch)
                best[name] = max(best[name], result.calls_per_second)
                errors += result.errors

        telemetry = envs["telemetry"].server.telemetry
        assert telemetry is not None
        spans = telemetry.recorder.stats()["recorded"]
        # One scrape, so the exposition path ran too (and stays valid).
        exposition_bytes = len(telemetry.registry.render().encode("utf-8"))

        overhead_pct = 100.0 * (1.0 - best["telemetry"] / best["baseline"]) \
            if best["baseline"] else 0.0
        return {
            "calls_per_batch": calls_per_batch,
            "n_clients": n_clients,
            "rounds": rounds,
            "baseline_calls_per_second": best["baseline"],
            "telemetry_calls_per_second": best["telemetry"],
            "overhead_pct": overhead_pct,
            "spans_recorded": spans,
            "exposition_bytes": exposition_bytes,
            "errors": errors,
        }
    finally:
        for env in envs.values():
            env.close()


def measure_federation_scrape(*, warm_requests: int = 200,
                              rounds: int = 5) -> dict[str, Any]:
    """Cost of the fabric-wide ``/metrics/federation`` scrape.

    Builds a two-site loopback fabric with telemetry enabled on both sides,
    warms the registries with ``warm_requests`` echo calls per site, then
    times three things (best-of-``rounds`` each):

    * a local ``/metrics`` render — the per-node baseline;
    * a cold federated render (``render(force=True)``) — baseline plus one
      parallel ``fabric.metrics`` fan-out and the merge/re-label pass;
    * a cached federated render — what a scraper inside the TTL pays.

    The headline ratio ``cold_over_local`` says how much the fan-out
    multiplies a scrape; ``cached_over_local`` should stay near 1.
    """

    from repro.client.client import ClarensClient
    from repro.core.config import ServerConfig
    from repro.core.server import ClarensServer
    from repro.pki.authority import CertificateAuthority

    ca = CertificateAuthority("/O=bench.federation/CN=Bench CA", key_bits=512)
    peering = ca.issue_user("Bench Peering Service")
    peering_dn = str(peering.certificate.subject)
    user = ca.issue_user("Bench User")

    servers = {}
    for site in ("fed-a", "fed-b"):
        host = ca.issue_host(f"{site}.bench.federation")
        config = ServerConfig(server_name=site,
                              host_dn=str(host.certificate.subject),
                              telemetry_enabled=True)
        servers[site] = ClarensServer(config, credential=host,
                                      trust_store=ca.trust_store())
    site_a, site_b = servers["fed-a"], servers["fed-b"]

    def factory(target):
        def build():
            return ClarensClient.for_loopback(target.loopback(),
                                              credential=peering)
        return build

    clients = []
    try:
        site_a.fabric.add_peer("fed-b", factory=factory(site_b),
                               dn=peering_dn)
        site_b.fabric.add_peer("fed-a", factory=factory(site_a),
                               dn=peering_dn)

        for server in (site_a, site_b):
            client = ClarensClient.for_loopback(server.loopback(),
                                                credential=user)
            clients.append(client)
            for i in range(warm_requests):
                client.call("system.echo", i)

        federation = site_a.telemetry.federation
        local_s = cold_s = cached_s = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            exposition = site_a.telemetry.registry.render()
            local_s = min(local_s, time.perf_counter() - start)

            start = time.perf_counter()
            body, meta = federation.render(force=True)
            cold_s = min(cold_s, time.perf_counter() - start)
            assert not meta["partial"], f"fan-out degraded: {meta}"

            start = time.perf_counter()
            cached_body, _ = federation.render()
            cached_s = min(cached_s, time.perf_counter() - start)
            assert cached_body == body

        return {
            "warm_requests": warm_requests,
            "rounds": rounds,
            "servers": len(servers),
            "local_scrape_ms": local_s * 1000.0,
            "cold_federated_ms": cold_s * 1000.0,
            "cached_federated_ms": cached_s * 1000.0,
            "cold_over_local": cold_s / local_s if local_s else 0.0,
            "cached_over_local": cached_s / local_s if local_s else 0.0,
            "local_exposition_bytes": len(exposition.encode("utf-8")),
            "federated_exposition_bytes": len(body.encode("utf-8")),
        }
    finally:
        for client in clients:
            client.close()
        for server in servers.values():
            server.close()


def measure_fig4_socket_ab(*, calls_per_point: int = 2000,
                           client_counts: tuple[int, ...] = (1, 8, 64),
                           pipeline_depth: int = 16,
                           rounds: int = 2) -> dict[str, Any]:
    """A/B the two socket frontends on the Figure-4 workload, same client.

    Unlike :func:`measure_fig4_throughput` (loopback — framework overhead
    only, as the paper measured), this boots each frontend on a real TCP
    socket and drives it with the event-loop
    :class:`~repro.client.asyncclient.PipelinedLoadClient`, so the client
    side is identical for both servers and the comparison isolates the
    transport.  Best-of-``rounds`` per point damps scheduler noise.

    The headline is ``async_over_threaded`` — the throughput ratio per
    client count.  Around the GIL ceiling the two tie at moderate
    concurrency; the async frontend pulls ahead at 1 client (no thread
    hand-off per request) and decisively at high client counts, where the
    threaded frontend's one-thread-per-connection convoy collapses (and,
    past ~100 connections, starts refusing work outright) while the single
    loop thread holds its plateau.
    """

    from repro.client.asyncclient import PipelinedLoadClient
    from repro.core.config import ServerConfig
    from repro.core.server import ClarensServer

    per_transport: dict[str, dict[int, float]] = {}
    errors = 0
    for transport in ("threaded", "async"):
        server, _ca = ClarensServer.with_test_pki(
            ServerConfig(server_transport=transport))
        frontend = server.frontend()
        points: dict[int, float] = {}
        try:
            with frontend:
                for n_clients in client_counts:
                    load = PipelinedLoadClient(
                        frontend.url, server.config.rpc_path(),
                        n_clients=n_clients, pipeline_depth=pipeline_depth)
                    load.run_batch(min(300, calls_per_point))  # warm-up
                    best = 0.0
                    for _ in range(rounds):
                        result = load.run_batch(calls_per_point)
                        best = max(best, result.calls_per_second)
                        errors += result.errors
                    points[n_clients] = best
        finally:
            server.close()
        per_transport[transport] = points
    return {
        "calls_per_point": calls_per_point,
        "pipeline_depth": pipeline_depth,
        "rounds": rounds,
        "threaded": per_transport["threaded"],
        "async": per_transport["async"],
        "async_over_threaded": {
            n: (per_transport["async"][n] / per_transport["threaded"][n]
                if per_transport["threaded"][n] else 0.0)
            for n in client_counts},
        "errors": errors,
    }


def measure_fig4_protocols(*, calls_per_point: int = 2000,
                           client_counts: tuple[int, ...] = (1, 8, 64),
                           pipeline_depth: int = 16,
                           rounds: int = 5) -> dict[str, Any]:
    """A/B the XML-RPC and binary codecs on one async-frontend server.

    One server (async transport, real TCP socket), one client implementation
    (:class:`~repro.client.asyncclient.PipelinedLoadClient`), two wire
    codecs — so the comparison isolates the protocol: encode/decode cost on
    the server plus bytes on the wire.  The Figure-4 workload is
    ``system.list_methods``, whose XML-RPC response is a ~600-byte document
    of ``<string>`` elements; the binary frame for the same payload is about
    a quarter the size and decodes with ``struct`` instead of an XML parser.

    ``calls_per_point`` is a floor: each point issues at least 100 calls per
    connection, so a 64-client point measures steady-state pipelining rather
    than the per-batch TCP connect cost (each ``run_batch`` reopens its
    connections, and at 2000 calls a 64-client point would spend most of its
    wall clock connecting).  A GC collection runs before every round so
    collector pauses land between measurements, not inside them.

    The headline is ``binary_over_xmlrpc`` per client count — the raw-speed
    wire-path target is >=2x at 8 and 64 clients.  On a small (single-core)
    host the absolute rates swing ±25% between separately-timed windows, so
    the ratio is computed *per round* — each round times the codecs back to
    back, so machine-load drift cancels out of the quotient — and the
    reported speedup is the median over rounds, which one lucky or unlucky
    window cannot move.  ``xmlrpc``/``binary`` still report each codec's
    best round as the absolute calls/s.
    """

    from repro.client.asyncclient import PipelinedLoadClient
    from repro.core.config import ServerConfig
    from repro.core.server import ClarensServer
    from repro.protocols.binary import BinaryCodec

    codecs = {"xmlrpc": None, "binary": BinaryCodec()}
    per_codec: dict[str, dict[int, float]] = {name: {} for name in codecs}
    round_ratios: dict[int, list[float]] = {n: [] for n in client_counts}
    errors = 0
    server, _ca = ClarensServer.with_test_pki(
        ServerConfig(server_transport="async"))
    frontend = server.frontend()
    try:
        with frontend:
            for n_clients in client_counts:
                calls = max(calls_per_point, 100 * n_clients)
                loads = {}
                for name, codec in codecs.items():
                    loads[name] = PipelinedLoadClient(
                        frontend.url, server.config.rpc_path(),
                        n_clients=n_clients, pipeline_depth=pipeline_depth,
                        codec=codec)
                    loads[name].run_batch(min(300, calls))  # warm-up
                    per_codec[name][n_clients] = 0.0
                # Interleave the codecs within every round, back to back, so
                # machine-load drift across the point's wall clock hits both
                # sides of the A/B instead of whichever ran second.
                for _ in range(rounds):
                    rates = {}
                    for name, load in loads.items():
                        gc.collect()
                        result = load.run_batch(calls)
                        rates[name] = result.calls_per_second
                        per_codec[name][n_clients] = max(
                            per_codec[name][n_clients], result.calls_per_second)
                        errors += result.errors
                    if rates["xmlrpc"]:
                        round_ratios[n_clients].append(
                            rates["binary"] / rates["xmlrpc"])
    finally:
        server.close()
    return {
        "calls_per_point": calls_per_point,
        "pipeline_depth": pipeline_depth,
        "rounds": rounds,
        "xmlrpc": per_codec["xmlrpc"],
        "binary": per_codec["binary"],
        "binary_over_xmlrpc": {
            n: (statistics.median(round_ratios[n]) if round_ratios[n] else 0.0)
            for n in client_counts},
        "errors": errors,
    }


def measure_codec_round_trips(*, iterations: int = 2000) -> dict[str, Any]:
    """Pure encode/decode microseconds per registered codec, no transport.

    Runs a representative Figure-4-shaped response (a list of method-name
    strings) plus a request through every registered codec's
    ``encode_request``/``decode_request``/``encode_response``/
    ``decode_response`` and reports best-of-three mean microseconds per
    round trip and the encoded body size — the per-call CPU the wire
    protocol itself costs, which is what the socket A/B amortises across
    concurrency.
    """

    from repro.protocols import RPCRequest, RPCResponse, all_codecs

    request = RPCRequest(method="system.list_methods", params=(), call_id=7)
    result = [f"system.method_{i:02d}" for i in range(24)]
    response = RPCResponse.from_result(result, call_id=7)

    per_codec: dict[str, dict[str, float]] = {}
    for codec in all_codecs():
        req_body = codec.encode_request(request)
        resp_body = codec.encode_response(response)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(iterations):
                codec.decode_request(codec.encode_request(request))
                codec.decode_response(codec.encode_response(response))
            best = min(best, time.perf_counter() - start)
        per_codec[codec.name] = {
            "round_trip_us": best / iterations * 1e6,
            "request_bytes": len(req_body),
            "response_bytes": len(resp_body),
        }
    return {"iterations": iterations, "codecs": per_codec}


def measure_fig4_throughput(*, calls_per_batch: int = 150,
                            client_counts: tuple[int, ...] = (1, 4, 8)) -> dict[str, Any]:
    """A reduced Figure-4 probe: mean calls/second over a small client grid."""

    env = make_benchmark_environment(access_checks=2, cache_method_list=False,
                                     with_tls=False)
    try:
        per_point: dict[int, float] = {}
        errors = 0
        for n_clients in client_counts:
            with AsyncLoadClient(env.client_factory(), n_clients=n_clients) as load:
                result = load.run_batch(calls_per_batch)
            per_point[n_clients] = result.calls_per_second
            errors += result.errors
        return {
            "calls_per_batch": calls_per_batch,
            "per_client_count": per_point,
            "mean_calls_per_second": sum(per_point.values()) / len(per_point),
            "errors": errors,
        }
    finally:
        env.close()
