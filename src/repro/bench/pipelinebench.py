"""Pipeline benchmark measurements shared by ``benchmarks/`` and CI tooling.

Both ``benchmarks/bench_multicall.py`` (the pytest benchmark) and
``scripts/bench_trend.py`` (the trend recorder that appends to
``BENCH_pipeline.json``) need the same numbers, so the measurement functions
live here: the batching speedup of ``system.multicall`` over sequential
dispatches, and a small Figure-4-shaped throughput probe.  Everything runs on
the loopback transport — framework overhead, not kernel sockets — exactly as
the paper measured.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.workloads import make_benchmark_environment
from repro.client.asyncclient import AsyncLoadClient

__all__ = ["measure_multicall_speedup", "measure_fig4_throughput"]


def measure_multicall_speedup(*, calls: int = 100, rounds: int = 3) -> dict[str, Any]:
    """Time N sequential ``system.echo`` dispatches vs one multicall of N.

    Both paths carry the same payloads through the same pipeline; the batch
    pays decode/session/admission once and the ACL check once per distinct
    method, which is where the speedup comes from.  Best-of-``rounds`` is
    reported to damp scheduler noise.
    """

    env = make_benchmark_environment(access_checks=2, with_tls=False)
    try:
        client = env.client_factory()()
        batch = [("system.echo", [i]) for i in range(calls)]
        expected = list(range(calls))

        # Warm both paths (context-signature caches, session/ACL DB pages).
        client.call("system.echo", 0)
        assert client.multicall(batch[:2]) == [0, 1]

        sequential_s = min(_time_sequential(client, calls) for _ in range(rounds))
        multicall_s = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            results = client.multicall(batch)
            multicall_s = min(multicall_s, time.perf_counter() - start)
            assert results == expected, "multicall results diverged from echo inputs"
        return {
            "calls": calls,
            "sequential_s": sequential_s,
            "multicall_s": multicall_s,
            "sequential_calls_per_second": calls / sequential_s,
            "multicall_calls_per_second": calls / multicall_s,
            "speedup": sequential_s / multicall_s,
        }
    finally:
        env.close()


def _time_sequential(client, calls: int) -> float:
    start = time.perf_counter()
    for i in range(calls):
        client.call("system.echo", i)
    return time.perf_counter() - start


def measure_fig4_throughput(*, calls_per_batch: int = 150,
                            client_counts: tuple[int, ...] = (1, 4, 8)) -> dict[str, Any]:
    """A reduced Figure-4 probe: mean calls/second over a small client grid."""

    env = make_benchmark_environment(access_checks=2, cache_method_list=False,
                                     with_tls=False)
    try:
        per_point: dict[int, float] = {}
        errors = 0
        for n_clients in client_counts:
            with AsyncLoadClient(env.client_factory(), n_clients=n_clients) as load:
                result = load.run_batch(calls_per_batch)
            per_point[n_clients] = result.calls_per_second
            errors += result.errors
        return {
            "calls_per_batch": calls_per_batch,
            "per_client_count": per_point,
            "mean_calls_per_second": sum(per_point.values()) / len(per_point),
            "errors": errors,
        }
    finally:
        env.close()
