"""Workload construction for the benchmarks.

Everything the benchmark scripts need to reproduce the paper's measurement
setup lives here so the scripts themselves stay declarative:

* a standard benchmark server (test CA, one authenticated user, the same two
  per-request access checks, no method-list caching — the paper's setup);
* client factories for authenticated loopback connections (encrypted or not);
* synthetic "CMS detector event" files for the file-throughput benchmark;
* a synthetic population of service descriptors for the discovery benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.client.client import ClarensClient
from repro.core.config import ServerConfig
from repro.core.server import ClarensServer
from repro.discovery.model import ServiceDescriptor
from repro.discovery.registry import DiscoveryRegistry
from repro.httpd.loopback import LoopbackTransport
from repro.httpd.tls import TLSContext
from repro.pki.authority import CertificateAuthority
from repro.pki.credentials import Credential

__all__ = [
    "BenchmarkEnvironment",
    "make_benchmark_environment",
    "make_cached_benchmark_environment",
    "make_event_file",
    "populate_discovery",
]


@dataclass
class BenchmarkEnvironment:
    """A ready-to-measure server plus credentials and transports."""

    server: ClarensServer
    ca: CertificateAuthority
    user: Credential
    loopback: LoopbackTransport
    tls_loopback: LoopbackTransport | None

    def client_factory(self, *, encrypted: bool = False,
                       login: bool = True) -> Callable[[], ClarensClient]:
        """A factory producing one independent, (optionally) logged-in client.

        Each produced client has its own keep-alive connection — matching the
        paper's "configurable number of client connections" — and, when
        ``login`` is true, its own authenticated session so every request goes
        through the session database lookup.
        """

        transport = self.tls_loopback if encrypted else self.loopback
        if transport is None:
            raise ValueError("TLS transport requested but not configured")
        prefix = self.server.config.url_prefix
        user = self.user

        def factory() -> ClarensClient:
            if encrypted:
                client = ClarensClient.for_loopback(transport, credential=user,
                                                    url_prefix=prefix)
            else:
                client = ClarensClient.for_loopback(transport, url_prefix=prefix)
            if login:
                client.login_with_credential(user)
            return client

        return factory

    def close(self) -> None:
        self.server.close()


def make_benchmark_environment(*, access_checks: int = 2, cache_method_list: bool = False,
                               cache_enabled: bool = False,
                               with_tls: bool = True,
                               key_bits: int = 512,
                               config_overrides: dict[str, Any] | None = None,
                               ) -> BenchmarkEnvironment:
    """Build the paper's measurement setup over the loopback transport.

    ``cache_enabled=False`` (the default) is the paper's configuration —
    every request hits the session and ACL databases.  ``cache_enabled=True``
    turns on the :mod:`repro.cache` subsystem for warm/cold comparisons.
    ``config_overrides`` sets additional :class:`ServerConfig` fields (e.g.
    ``{"telemetry_enabled": True}`` for the telemetry-overhead A/B run) and
    wins over this function's own defaults.
    """

    ca = CertificateAuthority("/O=clarens.bench/CN=Benchmark CA", key_bits=key_bits)
    host = ca.issue_host("bench.clarens.local")
    user = ca.issue_user("Benchmark User 0001")
    settings: dict[str, Any] = dict(
        server_name="bench",
        admins=["/O=clarens.bench/OU=People/CN=Benchmark Admin"],
        access_checks_per_request=access_checks,
        cache_method_list=cache_method_list,
        cache_enabled=cache_enabled,
        host_dn=str(host.certificate.subject),
    )
    if config_overrides:
        settings.update(config_overrides)
    config = ServerConfig(**settings)
    server = ClarensServer(config, credential=host, trust_store=ca.trust_store())
    loopback = server.loopback()
    tls_loopback = server.loopback(tls=True) if with_tls else None
    return BenchmarkEnvironment(server=server, ca=ca, user=user,
                                loopback=loopback, tls_loopback=tls_loopback)


def make_cached_benchmark_environment(*, access_checks: int = 2,
                                      with_tls: bool = True,
                                      key_bits: int = 512) -> BenchmarkEnvironment:
    """The same measurement setup with the hot-path caches switched on."""

    return make_benchmark_environment(access_checks=access_checks,
                                      cache_enabled=True,
                                      with_tls=with_tls, key_bits=key_bits)


def make_event_file(directory: str | Path, *, size_bytes: int = 8 << 20,
                    name: str = "events.dat", seed: int = 2003) -> Path:
    """Write a synthetic detector-event file of the requested size.

    Stands in for the CMS detector events streamed during the SC2003
    bandwidth challenge; the content is pseudo-random so checksumming and
    reads do real work.
    """

    rng = random.Random(seed)
    path = Path(directory) / name
    path.parent.mkdir(parents=True, exist_ok=True)
    block = bytes(rng.getrandbits(8) for _ in range(64 * 1024))
    with path.open("wb") as fh:
        written = 0
        while written < size_bytes:
            chunk = block[: min(len(block), size_bytes - written)]
            fh.write(chunk)
            written += len(chunk)
    return path


def populate_discovery(registry: DiscoveryRegistry, n_services: int, *,
                       seed: int = 90) -> int:
    """Register ``n_services`` synthetic service descriptors (the 90+ site grid)."""

    rng = random.Random(seed)
    modules_pool = (["system", "file"], ["system", "vo", "acl"],
                    ["system", "job", "shell"], ["system", "discovery"],
                    ["system", "file", "job", "vo", "acl", "discovery"])
    for i in range(n_services):
        modules = rng.choice(modules_pool)
        registry.register(ServiceDescriptor(
            name=f"clarens-{i:05d}",
            url=f"http://site{i % 97:03d}.grid.example:8443/clarens/rpc",
            host_dn=f"/O=grid.example/OU=Services/CN=host/site{i % 97:03d}.grid.example",
            services=list(modules),
            methods=[f"{m}.ping" for m in modules],
            attributes={"vo": rng.choice(["cms", "atlas", "ligo"]),
                        "region": rng.choice(["us", "eu", "asia"])},
            ttl=3600.0,
        ))
    return n_services


def client_tls_context(user: Credential) -> TLSContext:
    """A client TLS context presenting ``user``'s certificate."""

    return TLSContext(credential=user)
