"""Result tables and paper-vs-measured comparisons.

Benchmarks print their findings with :class:`ResultTable` (fixed-width text
tables, one per paper artefact) and record the headline comparison with
:class:`ComparisonRow` so EXPERIMENTS.md can be regenerated from benchmark
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ResultTable", "ComparisonRow", "format_rate"]


def format_rate(value: float) -> str:
    """Human-friendly formatting for calls/second or bytes/second values."""

    if value >= 1e9:
        return f"{value / 1e9:.2f} G/s"
    if value >= 1e6:
        return f"{value / 1e6:.2f} M/s"
    if value >= 1e3:
        return f"{value / 1e3:.2f} k/s"
    return f"{value:.1f} /s"


@dataclass
class ResultTable:
    """A fixed-width text table with a title (one per figure/table)."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(tuple(values))

    def render(self) -> str:
        str_rows = [[_cell(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns)))
        lines.append(sep)
        for row in str_rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print("\n" + self.render() + "\n")


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.1f}"
    return str(value)


@dataclass
class ComparisonRow:
    """One paper-vs-measured record for EXPERIMENTS.md."""

    experiment_id: str
    description: str
    paper_value: str
    measured_value: str
    shape_holds: bool
    notes: str = ""

    def render(self) -> str:
        verdict = "holds" if self.shape_holds else "DOES NOT HOLD"
        return (f"[{self.experiment_id}] {self.description}\n"
                f"    paper:    {self.paper_value}\n"
                f"    measured: {self.measured_value}\n"
                f"    shape:    {verdict}" + (f" — {self.notes}" if self.notes else ""))
