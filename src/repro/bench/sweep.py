"""Parameter sweeps.

The Figure 4 measurement varies the number of asynchronous clients from 1 to
79 and reports calls/second at each point.  ``sweep_client_counts`` runs that
sweep (on a configurable grid — running all 79 points with 1000-call batches
is unnecessary to recover the curve's shape) and returns one record per point.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.client.asyncclient import AsyncLoadClient, LoadResult
from repro.client.client import ClarensClient

__all__ = ["sweep_client_counts", "DEFAULT_CLIENT_GRID", "summarize_sweep"]

#: A sub-sampled version of the paper's 1..79 client grid.
DEFAULT_CLIENT_GRID: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 48, 64, 79)


def sweep_client_counts(client_factory: Callable[[], ClarensClient], *,
                        client_counts: Iterable[int] = DEFAULT_CLIENT_GRID,
                        calls_per_batch: int = 1000,
                        batches_per_point: int = 1,
                        method: str = "system.list_methods",
                        params: Sequence = ()) -> list[dict]:
    """Run the Figure 4 sweep; returns one record per (client count, batch)."""

    records: list[dict] = []
    for n_clients in client_counts:
        with AsyncLoadClient(client_factory, n_clients=n_clients) as load:
            for batch_index in range(batches_per_point):
                result: LoadResult = load.run_batch(calls_per_batch, method=method,
                                                    params=params)
                record = result.to_record()
                record["batch"] = batch_index
                records.append(record)
    return records


def summarize_sweep(records: list[dict]) -> dict:
    """Aggregate sweep records into the figures the paper quotes.

    Returns the per-client-count mean calls/second plus the overall average
    (the paper's "average of 1450 requests per second served").
    """

    by_clients: dict[int, list[float]] = {}
    for record in records:
        by_clients.setdefault(record["n_clients"], []).append(record["calls_per_second"])
    per_point = {
        n: sum(values) / len(values) for n, values in sorted(by_clients.items())
    }
    overall = sum(per_point.values()) / len(per_point) if per_point else 0.0
    total_calls = sum(r["calls"] for r in records)
    total_errors = sum(r["errors"] for r in records)
    return {
        "per_client_count": per_point,
        "overall_mean_calls_per_second": overall,
        "total_calls": total_calls,
        "total_errors": total_errors,
    }
