"""Benchmark harness shared by the scripts in ``benchmarks/``.

* :mod:`repro.bench.workloads` -- builds standard servers, clients and
  synthetic data sets (event files, service populations).
* :mod:`repro.bench.sweep`     -- parameter sweeps (e.g. client counts 1..79).
* :mod:`repro.bench.results`   -- result containers, table formatting and the
  paper-vs-measured comparison records used by EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench.results import ComparisonRow, ResultTable
from repro.bench.sweep import sweep_client_counts
from repro.bench.workloads import (
    BenchmarkEnvironment,
    make_benchmark_environment,
    make_event_file,
    populate_discovery,
)

__all__ = [
    "BenchmarkEnvironment",
    "make_benchmark_environment",
    "make_event_file",
    "populate_discovery",
    "sweep_client_counts",
    "ResultTable",
    "ComparisonRow",
]
