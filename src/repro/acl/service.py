"""The ``acl`` service: RPC access to ACL management.

Only server administrators (the ``admins`` VO group) and ACL-delegated
administrators may change ACLs; everyone may query the ACL that applies to a
method or file they can access, which is what the portal's ACL-management
component displays.
"""

from __future__ import annotations

from typing import Any

from repro.acl.model import ACL, FileACL
from repro.core.context import CallContext
from repro.core.service import ClarensService, rpc_method

__all__ = ["ACLService"]


class ACLService(ClarensService):
    """Access-control-list management methods."""

    service_name = "acl"

    # -- method ACLs -------------------------------------------------------------
    @rpc_method()
    def set_method_acl(self, ctx: CallContext, level: str, acl: dict) -> bool:
        """Attach an ACL to a method hierarchy level (e.g. ``file`` or ``file.read``)."""

        self.server.acl.set_method_acl(level, ACL.from_record(acl),
                                       actor_dn=ctx.require_dn())
        return True

    @rpc_method()
    def get_method_acl(self, ctx: CallContext, level: str) -> dict[str, Any]:
        """The ACL attached directly to ``level`` (empty dict when none)."""

        acl = self.server.acl.get_method_acl(level)
        return acl.to_record() if acl is not None else {}

    @rpc_method()
    def remove_method_acl(self, ctx: CallContext, level: str) -> bool:
        """Remove the ACL attached to a method hierarchy level."""

        return self.server.acl.remove_method_acl(level, actor_dn=ctx.require_dn())

    @rpc_method()
    def list_method_acls(self, ctx: CallContext) -> dict[str, Any]:
        """All method ACLs, keyed by hierarchy level."""

        return {level: acl.to_record()
                for level, acl in self.server.acl.list_method_acls().items()}

    @rpc_method()
    def check_method(self, ctx: CallContext, method: str, dn: str = "") -> dict[str, Any]:
        """Evaluate whether a DN (default: the caller) may invoke ``method``."""

        target = dn or ctx.require_dn()
        decision = self.server.acl.check_method(target, method)
        return {"allowed": decision.allowed, "decided_by": decision.decided_by or "",
                "reason": decision.reason}

    # -- file ACLs -----------------------------------------------------------------
    @rpc_method()
    def set_file_acl(self, ctx: CallContext, path: str, read_acl: dict,
                     write_acl: dict) -> bool:
        """Attach read/write ACLs to a file or directory path."""

        file_acl = FileACL(read=ACL.from_record(read_acl), write=ACL.from_record(write_acl))
        self.server.acl.set_file_acl(path, file_acl, actor_dn=ctx.require_dn())
        return True

    @rpc_method()
    def get_file_acl(self, ctx: CallContext, path: str) -> dict[str, Any]:
        """The file ACL attached directly to ``path`` (empty dict when none)."""

        file_acl = self.server.acl.get_file_acl(path)
        return file_acl.to_record() if file_acl is not None else {}

    @rpc_method()
    def remove_file_acl(self, ctx: CallContext, path: str) -> bool:
        """Remove the ACL attached to a file or directory path."""

        return self.server.acl.remove_file_acl(path, actor_dn=ctx.require_dn())

    @rpc_method()
    def list_file_acls(self, ctx: CallContext) -> dict[str, Any]:
        """All file ACLs, keyed by path."""

        return {path: acl.to_record()
                for path, acl in self.server.acl.list_file_acls().items()}

    @rpc_method()
    def check_file(self, ctx: CallContext, path: str, operation: str,
                   dn: str = "") -> dict[str, Any]:
        """Evaluate whether a DN (default: the caller) may read/write ``path``."""

        target = dn or ctx.require_dn()
        decision = self.server.acl.check_file(target, path, operation)
        return {"allowed": decision.allowed, "decided_by": decision.decided_by or "",
                "reason": decision.reason}
