"""Access-control lists (paper section 2.2 / 2.3).

Execution of web-service methods, the mapping of certificate DNs to server
accounts, and file access are all controlled by hierarchical ACLs modelled on
Apache ``.htaccess`` files.  An ACL names an evaluation order (``allow,deny``
or ``deny,allow``) followed by lists of DNs and VO groups allowed and denied.
A DN or group granted access to a higher-level method automatically has
access to lower-level methods unless specifically denied at the lower level —
so evaluation runs from the lowest (most specific) applicable level upward.
"""

from __future__ import annotations

from repro.acl.evaluator import ACLDecision, ACLManager
from repro.acl.model import ACL, ACLError, FileACL

__all__ = ["ACL", "FileACL", "ACLError", "ACLManager", "ACLDecision"]
