"""Hierarchical ACL storage and evaluation.

Methods "have a natural hierarchical structure … module.method or
module.submodule.method", and files have path hierarchy; ACLs attach to any
level.  The evaluation rule from the paper: a DN or group granted access to a
higher-level name automatically has access to lower-level names *unless
specifically denied at the lower level*, so the specification "is evaluated
from the lowest applicable level to the highest".

:class:`ACLManager` stores method ACLs and file ACLs in database tables (the
performance test's "two access control checks involving access to several
databases" are the session lookup plus this manager's per-request check) and
exposes the check the dispatcher calls on every RPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.acl.model import ACL, ACLError, FileACL, Verdict
from repro.cache.core import MISSING, TTLLRUCache
from repro.cache.invalidation import InvalidationBus
from repro.database import Database

__all__ = ["ACLManager", "ACLDecision"]

GroupMembership = Callable[[str, str], bool]  # (dn, group_name) -> bool


@dataclass(frozen=True)
class ACLDecision:
    """The outcome of an access check, with the level that decided it."""

    allowed: bool
    decided_by: str | None  # the hierarchy level whose ACL decided, or None
    reason: str

    def __bool__(self) -> bool:
        return self.allowed


def _method_levels(method: str) -> list[str]:
    """Hierarchy levels for a method name, most specific first.

    ``file.sub.read`` -> ``["file.sub.read", "file.sub", "file"]``.
    """

    parts = method.split(".")
    return [".".join(parts[:i]) for i in range(len(parts), 0, -1)]


def _normalize_path(path: str) -> str:
    """Canonical form of a file path: single slashes, no trailing slash.

    ``/data//cms/`` and ``data/cms`` both normalize to ``/data/cms`` so ACLs
    are stored and looked up under one spelling.
    """

    parts = [segment for segment in path.split("/") if segment]
    return "/" + "/".join(parts) if parts else "/"


def _path_levels(path: str) -> list[str]:
    """Hierarchy levels for a file path, most specific first.

    ``/data/cms/run1.root`` -> ``["/data/cms/run1.root", "/data/cms", "/data", "/"]``.
    Empty segments (``/data//cms``, trailing slashes) are dropped, so a path
    with duplicate slashes sees exactly the ACLs of its normalized spelling.
    """

    parts = [segment for segment in path.split("/") if segment]
    if not parts:
        return ["/"]
    levels = ["/" + "/".join(parts[:i]) for i in range(len(parts), 0, -1)]
    levels.append("/")
    return levels


class ACLManager:
    """Stores and evaluates method and file ACLs."""

    def __init__(self, database: Database, *, membership: GroupMembership,
                 is_admin: Callable[[str], bool] | None = None,
                 default_allow_authenticated: bool = True,
                 decision_cache: TTLLRUCache | None = None,
                 invalidation: InvalidationBus | None = None) -> None:
        self._methods = database.table("acl_methods")
        self._files = database.table("acl_files")
        self._membership = membership
        self._is_admin = is_admin or (lambda dn: False)
        self._default_allow_authenticated = bool(default_allow_authenticated)
        #: Optional per-(dn, name) decision cache (disabled in paper mode).
        self._cache = decision_cache
        self._invalidation = invalidation
        if decision_cache is not None and invalidation is not None:
            invalidation.subscribe("acl", decision_cache)
        self._normalize_persisted_file_keys()

    def _normalize_persisted_file_keys(self) -> None:
        """One-time sweep: re-key file ACLs persisted under un-normalized paths.

        Older versions could store keys containing duplicate slashes (e.g.
        ``/data//cms``); lookups now only ever produce normalized spellings,
        so such records would silently stop being enforced and become
        undeletable through the API.  An already-present normalized record
        wins (it was the reachable one for normalized queries).
        """

        for key in [k for k, _ in self._files.items()]:
            normalized = _normalize_path(key)
            if normalized == key:
                continue
            record = self._files.get(key, None)
            self._files.delete(key)
            if record is not None and self._files.get(normalized, None) is None:
                self._files.put(normalized, record)

    def _publish_invalidation(self, tag: str) -> None:
        """Flush cached decisions after an ACL write."""

        if self._invalidation is not None:
            self._invalidation.publish(tag)
        elif self._cache is not None:
            self._cache.invalidate_tag(tag)

    @property
    def default_allow_authenticated(self) -> bool:
        """When no ACL level matches at all: allow any *authenticated* DN when
        True (the out-of-the-box Clarens behaviour for ordinary services) or
        deny when False (lock-down deployments).  Flipping it at runtime
        flushes every cached decision — the default decided them."""

        return self._default_allow_authenticated

    @default_allow_authenticated.setter
    def default_allow_authenticated(self, value: bool) -> None:
        value = bool(value)
        if value != self._default_allow_authenticated:
            self._default_allow_authenticated = value
            self._publish_invalidation("acl")

    # -- administration ------------------------------------------------------
    def set_method_acl(self, level: str, acl: ACL, *, actor_dn: str | None = None) -> None:
        self._authorize_admin(actor_dn)
        # Reject empty segments anywhere: leading/trailing dots and interior
        # runs like "a..b" would create levels no method name ever walks.
        if not level or any(not segment for segment in level.split(".")):
            raise ACLError(f"invalid method ACL level {level!r}")
        self._methods.put(level, acl.to_record())
        self._publish_invalidation("acl:method")

    def get_method_acl(self, level: str) -> ACL | None:
        record = self._methods.get(level, None)
        return ACL.from_record(record) if record is not None else None

    def remove_method_acl(self, level: str, *, actor_dn: str | None = None) -> bool:
        self._authorize_admin(actor_dn)
        removed = self._methods.delete(level)
        if removed:
            self._publish_invalidation("acl:method")
        return removed

    def list_method_acls(self) -> dict[str, ACL]:
        return {key: ACL.from_record(rec) for key, rec in self._methods.items()}

    def set_file_acl(self, path: str, acl: FileACL, *, actor_dn: str | None = None) -> None:
        self._authorize_admin(actor_dn)
        self._files.put(_normalize_path(path), acl.to_record())
        self._publish_invalidation("acl:file")

    def get_file_acl(self, path: str) -> FileACL | None:
        record = self._files.get(_normalize_path(path), None)
        return FileACL.from_record(record) if record is not None else None

    def remove_file_acl(self, path: str, *, actor_dn: str | None = None) -> bool:
        self._authorize_admin(actor_dn)
        removed = self._files.delete(_normalize_path(path))
        if removed:
            self._publish_invalidation("acl:file")
        return removed

    def list_file_acls(self) -> dict[str, FileACL]:
        return {key: FileACL.from_record(rec) for key, rec in self._files.items()}

    def _authorize_admin(self, actor_dn: str | None) -> None:
        if actor_dn is None:
            return  # internal/bootstrap calls
        if not self._is_admin(actor_dn):
            raise ACLError(f"{actor_dn} is not authorized to manage ACLs")

    # -- evaluation ----------------------------------------------------------
    def _evaluate_levels(self, dn: str, levels: Iterable[str],
                         lookup: Callable[[str], ACL | None]) -> ACLDecision:
        membership = lambda group: self._membership(dn, group)  # noqa: E731
        matched_any_level = False
        for level in levels:
            acl = lookup(level)
            if acl is None:
                continue
            matched_any_level = True
            verdict = acl.evaluate(dn, membership)
            if verdict is Verdict.ALLOW:
                return ACLDecision(True, level, f"allowed by ACL at {level!r}")
            if verdict is Verdict.DENY:
                return ACLDecision(False, level, f"denied by ACL at {level!r}")
        if matched_any_level:
            # ACLs exist on the hierarchy but none matched this DN: the name
            # is protected and the principal is not on any list.
            return ACLDecision(False, None, "no applicable ACL entry matches this DN")
        if self.default_allow_authenticated and dn:
            return ACLDecision(True, None, "no ACL configured; authenticated access allowed")
        return ACLDecision(False, None, "no ACL configured; access denied by default")

    def check_method(self, dn: str, method: str) -> ACLDecision:
        """Can ``dn`` invoke ``method``?  Server admins always can."""

        if self._cache is not None:
            key = ("method", dn, method)
            cached = self._cache.get(key)
            if cached is not MISSING:
                return cached
            # Epoch-guarded so an ACL edit racing this evaluation cannot be
            # overwritten by the stale decision (no stale-grant window).
            epoch = self._cache.epoch
            decision = self._check_method_db(dn, method)
            self._cache.put_if_epoch(key, decision, epoch=epoch, tags=("acl:method",))
            return decision
        return self._check_method_db(dn, method)

    def _check_method_db(self, dn: str, method: str) -> ACLDecision:
        if self._is_admin(dn):
            return ACLDecision(True, None, "server administrator")
        return self._evaluate_levels(dn, _method_levels(method), self.get_method_acl)

    def check_file(self, dn: str, path: str, operation: str) -> ACLDecision:
        """Can ``dn`` perform ``operation`` ('read'/'write') on ``path``?"""

        if operation not in ("read", "write"):
            raise ACLError(f"unknown file operation {operation!r}")
        if self._cache is not None:
            key = ("file", dn, _normalize_path(path), operation)
            cached = self._cache.get(key)
            if cached is not MISSING:
                return cached
            epoch = self._cache.epoch
            decision = self._check_file_db(dn, path, operation)
            self._cache.put_if_epoch(key, decision, epoch=epoch, tags=("acl:file",))
            return decision
        return self._check_file_db(dn, path, operation)

    def _check_file_db(self, dn: str, path: str, operation: str) -> ACLDecision:
        if self._is_admin(dn):
            return ACLDecision(True, None, "server administrator")

        def lookup(level: str) -> ACL | None:
            file_acl = self.get_file_acl(level)
            return None if file_acl is None else file_acl.acl_for(operation)

        return self._evaluate_levels(dn, _path_levels(path), lookup)
