"""Hierarchical ACL storage and evaluation.

Methods "have a natural hierarchical structure … module.method or
module.submodule.method", and files have path hierarchy; ACLs attach to any
level.  The evaluation rule from the paper: a DN or group granted access to a
higher-level name automatically has access to lower-level names *unless
specifically denied at the lower level*, so the specification "is evaluated
from the lowest applicable level to the highest".

:class:`ACLManager` stores method ACLs and file ACLs in database tables (the
performance test's "two access control checks involving access to several
databases" are the session lookup plus this manager's per-request check) and
exposes the check the dispatcher calls on every RPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.acl.model import ACL, ACLError, FileACL, Verdict
from repro.database import Database

__all__ = ["ACLManager", "ACLDecision"]

GroupMembership = Callable[[str, str], bool]  # (dn, group_name) -> bool


@dataclass(frozen=True)
class ACLDecision:
    """The outcome of an access check, with the level that decided it."""

    allowed: bool
    decided_by: str | None  # the hierarchy level whose ACL decided, or None
    reason: str

    def __bool__(self) -> bool:
        return self.allowed


def _method_levels(method: str) -> list[str]:
    """Hierarchy levels for a method name, most specific first.

    ``file.sub.read`` -> ``["file.sub.read", "file.sub", "file"]``.
    """

    parts = method.split(".")
    return [".".join(parts[:i]) for i in range(len(parts), 0, -1)]


def _path_levels(path: str) -> list[str]:
    """Hierarchy levels for a file path, most specific first.

    ``/data/cms/run1.root`` -> ``["/data/cms/run1.root", "/data/cms", "/data", "/"]``.
    """

    path = "/" + path.strip("/")
    if path == "/":
        return ["/"]
    parts = path.strip("/").split("/")
    levels = ["/" + "/".join(parts[:i]) for i in range(len(parts), 0, -1)]
    levels.append("/")
    return levels


class ACLManager:
    """Stores and evaluates method and file ACLs."""

    def __init__(self, database: Database, *, membership: GroupMembership,
                 is_admin: Callable[[str], bool] | None = None,
                 default_allow_authenticated: bool = True) -> None:
        self._methods = database.table("acl_methods")
        self._files = database.table("acl_files")
        self._membership = membership
        self._is_admin = is_admin or (lambda dn: False)
        #: When no ACL level matches at all: allow any *authenticated* DN when
        #: True (the out-of-the-box Clarens behaviour for ordinary services)
        #: or deny when False (lock-down deployments).
        self.default_allow_authenticated = default_allow_authenticated

    # -- administration ------------------------------------------------------
    def set_method_acl(self, level: str, acl: ACL, *, actor_dn: str | None = None) -> None:
        self._authorize_admin(actor_dn)
        if not level or level.startswith(".") or level.endswith("."):
            raise ACLError(f"invalid method ACL level {level!r}")
        self._methods.put(level, acl.to_record())

    def get_method_acl(self, level: str) -> ACL | None:
        record = self._methods.get(level, None)
        return ACL.from_record(record) if record is not None else None

    def remove_method_acl(self, level: str, *, actor_dn: str | None = None) -> bool:
        self._authorize_admin(actor_dn)
        return self._methods.delete(level)

    def list_method_acls(self) -> dict[str, ACL]:
        return {key: ACL.from_record(rec) for key, rec in self._methods.items()}

    def set_file_acl(self, path: str, acl: FileACL, *, actor_dn: str | None = None) -> None:
        self._authorize_admin(actor_dn)
        normalized = "/" + path.strip("/") if path.strip("/") else "/"
        self._files.put(normalized, acl.to_record())

    def get_file_acl(self, path: str) -> FileACL | None:
        normalized = "/" + path.strip("/") if path.strip("/") else "/"
        record = self._files.get(normalized, None)
        return FileACL.from_record(record) if record is not None else None

    def remove_file_acl(self, path: str, *, actor_dn: str | None = None) -> bool:
        self._authorize_admin(actor_dn)
        normalized = "/" + path.strip("/") if path.strip("/") else "/"
        return self._files.delete(normalized)

    def list_file_acls(self) -> dict[str, FileACL]:
        return {key: FileACL.from_record(rec) for key, rec in self._files.items()}

    def _authorize_admin(self, actor_dn: str | None) -> None:
        if actor_dn is None:
            return  # internal/bootstrap calls
        if not self._is_admin(actor_dn):
            raise ACLError(f"{actor_dn} is not authorized to manage ACLs")

    # -- evaluation ----------------------------------------------------------
    def _evaluate_levels(self, dn: str, levels: Iterable[str],
                         lookup: Callable[[str], ACL | None]) -> ACLDecision:
        membership = lambda group: self._membership(dn, group)  # noqa: E731
        matched_any_level = False
        for level in levels:
            acl = lookup(level)
            if acl is None:
                continue
            matched_any_level = True
            verdict = acl.evaluate(dn, membership)
            if verdict is Verdict.ALLOW:
                return ACLDecision(True, level, f"allowed by ACL at {level!r}")
            if verdict is Verdict.DENY:
                return ACLDecision(False, level, f"denied by ACL at {level!r}")
        if matched_any_level:
            # ACLs exist on the hierarchy but none matched this DN: the name
            # is protected and the principal is not on any list.
            return ACLDecision(False, None, "no applicable ACL entry matches this DN")
        if self.default_allow_authenticated and dn:
            return ACLDecision(True, None, "no ACL configured; authenticated access allowed")
        return ACLDecision(False, None, "no ACL configured; access denied by default")

    def check_method(self, dn: str, method: str) -> ACLDecision:
        """Can ``dn`` invoke ``method``?  Server admins always can."""

        if self._is_admin(dn):
            return ACLDecision(True, None, "server administrator")
        return self._evaluate_levels(dn, _method_levels(method), self.get_method_acl)

    def check_file(self, dn: str, path: str, operation: str) -> ACLDecision:
        """Can ``dn`` perform ``operation`` ('read'/'write') on ``path``?"""

        if operation not in ("read", "write"):
            raise ACLError(f"unknown file operation {operation!r}")
        if self._is_admin(dn):
            return ACLDecision(True, None, "server administrator")

        def lookup(level: str) -> ACL | None:
            file_acl = self.get_file_acl(level)
            return None if file_acl is None else file_acl.acl_for(operation)

        return self._evaluate_levels(dn, _path_levels(path), lookup)
