"""ACL data model.

An :class:`ACL` mirrors the paper's description: an evaluation order
specification (``allow,deny`` or ``deny,allow``) followed by a list of DNs
allowed, groups allowed, DNs denied and groups denied.  A :class:`FileACL`
extends the method ACL with the two extra fields the paper gives file ACLs:
``read`` and ``write`` permissions, each of which is itself an ACL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

from repro.pki.dn import DN, DNParseError

__all__ = ["ACL", "FileACL", "ACLError", "Verdict", "Order"]


class ACLError(Exception):
    """Raised for malformed ACLs or unauthorized ACL administration."""


class Order(str, Enum):
    """Apache-style evaluation order."""

    ALLOW_DENY = "allow,deny"
    DENY_ALLOW = "deny,allow"

    @classmethod
    def parse(cls, text: str) -> "Order":
        normalized = text.replace(" ", "").lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise ACLError(f"invalid ACL order {text!r}; expected 'allow,deny' or 'deny,allow'")


class Verdict(Enum):
    """Result of evaluating a single ACL for a principal."""

    ALLOW = "allow"
    DENY = "deny"
    ABSTAIN = "abstain"  # the principal matched neither list


def _dn_in(listed: Sequence[str], dn: str) -> bool:
    for entry in listed:
        if entry == "*" or entry == dn:
            return True
        try:
            if DN.parse(entry).is_prefix_of(DN.parse(dn)):
                return True
        except DNParseError:
            continue
    return False


@dataclass
class ACL:
    """One access-control list."""

    order: Order = Order.ALLOW_DENY
    dns_allowed: list[str] = field(default_factory=list)
    groups_allowed: list[str] = field(default_factory=list)
    dns_denied: list[str] = field(default_factory=list)
    groups_denied: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if isinstance(self.order, str):
            self.order = Order.parse(self.order)

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, dn: str, group_membership: Callable[[str], bool]) -> Verdict:
        """Evaluate this ACL for ``dn``.

        ``group_membership(group_name)`` reports whether the DN belongs to a
        VO group; the ACL layer does not know about the VO tree directly.

        Matching both lists resolves according to the order: with
        ``allow,deny`` the deny list wins (Apache semantics); with
        ``deny,allow`` the allow list wins.  Matching neither list abstains so
        a less-specific ACL further up the hierarchy can decide.
        """

        allowed = _dn_in(self.dns_allowed, dn) or any(
            group_membership(g) for g in self.groups_allowed
        )
        denied = _dn_in(self.dns_denied, dn) or any(
            group_membership(g) for g in self.groups_denied
        )
        if self.order is Order.ALLOW_DENY:
            if denied:
                return Verdict.DENY
            if allowed:
                return Verdict.ALLOW
        else:  # deny,allow
            if allowed:
                return Verdict.ALLOW
            if denied:
                return Verdict.DENY
        return Verdict.ABSTAIN

    # -- serialization -------------------------------------------------------
    def to_record(self) -> dict:
        return {
            "order": self.order.value,
            "dns_allowed": list(self.dns_allowed),
            "groups_allowed": list(self.groups_allowed),
            "dns_denied": list(self.dns_denied),
            "groups_denied": list(self.groups_denied),
        }

    @classmethod
    def from_record(cls, record: dict) -> "ACL":
        return cls(
            order=Order.parse(record.get("order", "allow,deny")),
            dns_allowed=list(record.get("dns_allowed", [])),
            groups_allowed=list(record.get("groups_allowed", [])),
            dns_denied=list(record.get("dns_denied", [])),
            groups_denied=list(record.get("groups_denied", [])),
        )

    @classmethod
    def allow_all(cls) -> "ACL":
        """An ACL granting access to every authenticated principal."""

        return cls(order=Order.DENY_ALLOW, dns_allowed=["*"])

    @classmethod
    def allow_groups(cls, *groups: str) -> "ACL":
        return cls(order=Order.ALLOW_DENY, groups_allowed=list(groups))

    @classmethod
    def allow_dns(cls, *dns: str) -> "ACL":
        return cls(order=Order.ALLOW_DENY, dns_allowed=list(dns))


@dataclass
class FileACL:
    """A file/directory ACL: the method ACL fields plus read and write."""

    read: ACL = field(default_factory=ACL)
    write: ACL = field(default_factory=ACL)

    def acl_for(self, operation: str) -> ACL:
        if operation == "read":
            return self.read
        if operation == "write":
            return self.write
        raise ACLError(f"unknown file operation {operation!r}; expected 'read' or 'write'")

    def to_record(self) -> dict:
        return {"read": self.read.to_record(), "write": self.write.to_record()}

    @classmethod
    def from_record(cls, record: dict) -> "FileACL":
        return cls(
            read=ACL.from_record(record.get("read", {})),
            write=ACL.from_record(record.get("write", {})),
        )
