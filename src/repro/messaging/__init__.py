"""Asynchronous messaging (paper section 6, "Future Work").

The paper notes that the request/response web-service model is "ill-suited
for the type of asynchronous bi-directional communication required for
interactions between users and the jobs they are running on private networks
protected by NAT and firewalls", and proposes an instant-messaging
architecture so that "messages can be sent and received by jobs
asynchronously" and jobs can feed monitoring or remote-debugging tools.

This package implements that extension:

* :mod:`repro.messaging.broker`  -- a store-and-forward message broker with
  named mailboxes, topic broadcast, presence and offline delivery.
* :mod:`repro.messaging.service` -- the ``msg.*`` RPC methods.  Because the
  participants behind NAT can only make *outbound* calls, delivery is by
  polling (``msg.poll``), which is exactly how the IM-style job monitors of
  the era worked.
"""

from __future__ import annotations

from repro.messaging.broker import Mailbox, Message, MessageBroker
from repro.messaging.service import MessagingService

__all__ = ["Message", "Mailbox", "MessageBroker", "MessagingService"]
