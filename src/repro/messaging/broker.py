"""The store-and-forward message broker.

Mailboxes are named by their owner DN plus an optional resource (so a user
and each of her running jobs have distinct addresses, e.g.
``/O=x/CN=alice`` and ``/O=x/CN=alice/job-42``).  Messages sent to an address
are queued until the owner polls them — participants behind NAT or firewalls
never need to accept inbound connections.  Topics provide broadcast fan-out
(job monitoring streams), and presence records who has polled recently.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Message", "Mailbox", "MessageBroker", "MessagingError"]


class MessagingError(Exception):
    """Raised for unknown mailboxes or malformed addresses."""


@dataclass
class Message:
    """One queued message."""

    message_id: int
    sender: str
    recipient: str
    subject: str
    body: Any
    sent_at: float = field(default_factory=time.time)
    topic: str | None = None

    def to_record(self) -> dict[str, Any]:
        return {
            "message_id": self.message_id,
            "sender": self.sender,
            "recipient": self.recipient,
            "subject": self.subject,
            "body": self.body,
            "sent_at": self.sent_at,
            "topic": self.topic or "",
        }


@dataclass
class Mailbox:
    """A per-address queue plus presence bookkeeping."""

    address: str
    owner_dn: str
    created: float = field(default_factory=time.time)
    last_poll: float = 0.0
    messages: list[Message] = field(default_factory=list)
    subscriptions: set[str] = field(default_factory=set)

    @property
    def pending(self) -> int:
        return len(self.messages)

    def is_online(self, *, presence_window: float = 60.0, when: float | None = None) -> bool:
        when = time.time() if when is None else when
        return (when - self.last_poll) <= presence_window


def _owner_of(address: str) -> str:
    """The DN owning an address (the part before the first ``#`` resource tag)."""

    return address.split("#", 1)[0]


class MessageBroker:
    """Named mailboxes, direct messages, topic broadcast, offline delivery."""

    def __init__(self, *, max_pending_per_mailbox: int = 10_000,
                 presence_window: float = 60.0) -> None:
        self.max_pending_per_mailbox = max_pending_per_mailbox
        self.presence_window = presence_window
        self._mailboxes: dict[str, Mailbox] = {}
        self._message_ids = itertools.count(1)
        self._lock = threading.Condition()

    # -- mailbox lifecycle ---------------------------------------------------------
    def register(self, address: str, owner_dn: str | None = None) -> Mailbox:
        """Create (or return) the mailbox for ``address``.

        Addresses are ``<owner-dn>`` or ``<owner-dn>#<resource>`` — e.g. a job
        registers ``/O=x/CN=alice#job-42`` and only Alice may poll it.
        """

        if not address:
            raise MessagingError("mailbox addresses must be non-empty")
        owner = owner_dn or _owner_of(address)
        with self._lock:
            mailbox = self._mailboxes.get(address)
            if mailbox is None:
                mailbox = Mailbox(address=address, owner_dn=owner)
                self._mailboxes[address] = mailbox
            return mailbox

    def unregister(self, address: str) -> bool:
        with self._lock:
            return self._mailboxes.pop(address, None) is not None

    def mailbox(self, address: str) -> Mailbox:
        with self._lock:
            mailbox = self._mailboxes.get(address)
        if mailbox is None:
            raise MessagingError(f"no such mailbox: {address}")
        return mailbox

    def addresses(self) -> list[str]:
        with self._lock:
            return sorted(self._mailboxes)

    def addresses_for(self, owner_dn: str) -> list[str]:
        with self._lock:
            return sorted(a for a, m in self._mailboxes.items() if m.owner_dn == owner_dn)

    # -- sending ----------------------------------------------------------------------
    def send(self, sender: str, recipient: str, subject: str, body: Any) -> Message:
        """Queue a direct message; the recipient mailbox is created if needed."""

        with self._lock:
            mailbox = self._mailboxes.get(recipient)
            if mailbox is None:
                mailbox = Mailbox(address=recipient, owner_dn=_owner_of(recipient))
                self._mailboxes[recipient] = mailbox
            if mailbox.pending >= self.max_pending_per_mailbox:
                raise MessagingError(f"mailbox {recipient} is full")
            message = Message(message_id=next(self._message_ids), sender=sender,
                              recipient=recipient, subject=subject, body=body)
            mailbox.messages.append(message)
            self._lock.notify_all()
            return message

    def publish(self, sender: str, topic: str, subject: str, body: Any) -> int:
        """Broadcast to every mailbox subscribed to ``topic``; returns the fan-out."""

        delivered = 0
        with self._lock:
            for mailbox in self._mailboxes.values():
                if topic not in mailbox.subscriptions:
                    continue
                if mailbox.pending >= self.max_pending_per_mailbox:
                    continue
                mailbox.messages.append(Message(
                    message_id=next(self._message_ids), sender=sender,
                    recipient=mailbox.address, subject=subject, body=body, topic=topic))
                delivered += 1
            if delivered:
                self._lock.notify_all()
        return delivered

    def subscribe(self, address: str, topic: str) -> None:
        self.mailbox(address)  # existence check
        with self._lock:
            self._mailboxes[address].subscriptions.add(topic)

    def unsubscribe(self, address: str, topic: str) -> None:
        with self._lock:
            mailbox = self._mailboxes.get(address)
            if mailbox is not None:
                mailbox.subscriptions.discard(topic)

    # -- receiving ----------------------------------------------------------------------
    def poll(self, address: str, *, max_messages: int = 100,
             wait: float = 0.0) -> list[Message]:
        """Drain up to ``max_messages`` messages; optionally long-poll for ``wait`` s."""

        deadline = time.time() + wait
        with self._lock:
            mailbox = self._mailboxes.get(address)
            if mailbox is None:
                raise MessagingError(f"no such mailbox: {address}")
            while not mailbox.messages and wait > 0:
                remaining = deadline - time.time()
                if remaining <= 0:
                    break
                self._lock.wait(remaining)
            mailbox.last_poll = time.time()
            drained = mailbox.messages[:max_messages]
            mailbox.messages = mailbox.messages[max_messages:]
            return drained

    def peek(self, address: str) -> int:
        """Number of pending messages without draining them."""

        return self.mailbox(address).pending

    # -- presence -----------------------------------------------------------------------
    def presence(self, owner_dn: str | None = None) -> list[dict[str, Any]]:
        """Presence records (address, online, pending) for all or one owner's mailboxes."""

        now = time.time()
        with self._lock:
            boxes: Iterable[Mailbox] = self._mailboxes.values()
            if owner_dn is not None:
                boxes = [m for m in boxes if m.owner_dn == owner_dn]
            return [{
                "address": m.address,
                "owner_dn": m.owner_dn,
                "online": m.is_online(presence_window=self.presence_window, when=now),
                "pending": m.pending,
                "last_poll": m.last_poll,
            } for m in boxes]
