"""The ``msg`` service: RPC access to the message broker.

Addresses are rooted in the caller's DN, so a user (or a job holding her
delegated proxy, which authenticates as her) may only register, poll and
unregister mailboxes she owns; anyone authenticated may *send*.  This is the
instant-messaging architecture of the paper's future-work section: jobs on
private networks post status outbound and poll for control messages, with the
Clarens server as the rendezvous point.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.messaging.broker import MessageBroker, MessagingError

__all__ = ["MessagingService"]


class MessagingService(ClarensService):
    """Store-and-forward messaging for users and their jobs."""

    service_name = "msg"

    def __init__(self, server) -> None:
        super().__init__(server)
        self.broker = MessageBroker()

    # -- address helpers ----------------------------------------------------------
    def _own_address(self, ctx: CallContext, resource: str = "") -> str:
        dn = ctx.require_dn()
        return f"{dn}#{resource}" if resource else dn

    def _require_owner(self, ctx: CallContext, address: str) -> str:
        dn = ctx.require_dn()
        owner = address.split("#", 1)[0]
        if owner != dn and not self.server.vo.is_admin(dn):
            raise AccessDeniedError(f"{dn} does not own mailbox {address}")
        return address

    # -- mailbox management ---------------------------------------------------------
    # Published as ``msg.register``; the Python name differs so it does not
    # shadow ClarensService.register (the framework registration hook).
    @rpc_method("register")
    def register_mailbox(self, ctx: CallContext, resource: str = "") -> dict[str, Any]:
        """Register a mailbox for the caller (optionally ``#<resource>``-tagged)."""

        address = self._own_address(ctx, resource)
        mailbox = self.broker.register(address, ctx.require_dn())
        return {"address": mailbox.address, "pending": mailbox.pending}

    @rpc_method()
    def unregister(self, ctx: CallContext, resource: str = "") -> bool:
        """Remove one of the caller's mailboxes."""

        return self.broker.unregister(self._own_address(ctx, resource))

    @rpc_method()
    def my_mailboxes(self, ctx: CallContext) -> list[str]:
        """Addresses of every mailbox the caller owns."""

        return self.broker.addresses_for(ctx.require_dn())

    # -- messaging --------------------------------------------------------------------
    @rpc_method()
    def send(self, ctx: CallContext, recipient: str, subject: str, body: Any) -> dict[str, Any]:
        """Send a direct message to an address (``dn`` or ``dn#resource``)."""

        try:
            message = self.broker.send(ctx.require_dn(), recipient, subject, body)
        except MessagingError as exc:
            raise NotFoundError(str(exc)) from exc
        return {"message_id": message.message_id, "sent_at": message.sent_at}

    @rpc_method()
    def poll(self, ctx: CallContext, resource: str = "", max_messages: int = 100,
             wait: float = 0.0) -> list[dict[str, Any]]:
        """Drain pending messages from one of the caller's mailboxes.

        ``wait`` enables long-polling (bounded to 30 s) so jobs behind NAT can
        wait for control messages without busy-looping.
        """

        address = self._own_address(ctx, resource)
        try:
            messages = self.broker.poll(address, max_messages=int(max_messages),
                                        wait=min(float(wait), 30.0))
        except MessagingError as exc:
            raise NotFoundError(str(exc)) from exc
        return [m.to_record() for m in messages]

    @rpc_method()
    def pending(self, ctx: CallContext, resource: str = "") -> int:
        """Number of messages waiting in one of the caller's mailboxes."""

        try:
            return self.broker.peek(self._own_address(ctx, resource))
        except MessagingError as exc:
            raise NotFoundError(str(exc)) from exc

    # -- topics --------------------------------------------------------------------------
    @rpc_method()
    def subscribe(self, ctx: CallContext, topic: str, resource: str = "") -> bool:
        """Subscribe one of the caller's mailboxes to a broadcast topic."""

        address = self._own_address(ctx, resource)
        self.broker.register(address, ctx.require_dn())
        self.broker.subscribe(address, topic)
        return True

    @rpc_method()
    def unsubscribe(self, ctx: CallContext, topic: str, resource: str = "") -> bool:
        """Remove a topic subscription."""

        self.broker.unsubscribe(self._own_address(ctx, resource), topic)
        return True

    @rpc_method()
    def publish(self, ctx: CallContext, topic: str, subject: str, body: Any) -> int:
        """Broadcast to every subscriber of ``topic``; returns the fan-out count."""

        return self.broker.publish(ctx.require_dn(), topic, subject, body)

    # -- presence -----------------------------------------------------------------------
    @rpc_method()
    def presence(self, ctx: CallContext, dn: str = "") -> list[dict[str, Any]]:
        """Presence for the caller's mailboxes (or, for admins, any DN / all)."""

        caller = ctx.require_dn()
        if dn and dn != caller:
            self.server.require_admin(ctx)
            return self.broker.presence(dn)
        if not dn and self.server.vo.is_admin(caller):
            return self.broker.presence(None)
        return self.broker.presence(caller)
