"""Job model."""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["Job", "JobState"]


class JobState(str, Enum):
    """Lifecycle states of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted job: a command line run in the owner's sandbox."""

    owner_dn: str
    command: str
    job_id: str = field(default_factory=lambda: uuid.uuid4().hex[:16])
    name: str = ""
    state: JobState = JobState.QUEUED
    submitted: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    exit_code: int | None = None
    stdout: str = ""
    stderr: str = ""
    #: Free-form metadata (dataset name, estimated events, priority hints).
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def wall_time(self) -> float | None:
        if self.started is None or self.finished is None:
            return None
        return self.finished - self.started

    def to_record(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "owner_dn": self.owner_dn,
            "command": self.command,
            "name": self.name,
            "state": self.state.value,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "exit_code": self.exit_code,
            "stdout": self.stdout,
            "stderr": self.stderr,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Job":
        return cls(
            owner_dn=record["owner_dn"],
            command=record["command"],
            job_id=record["job_id"],
            name=record.get("name", ""),
            state=JobState(record.get("state", "queued")),
            submitted=float(record.get("submitted", time.time())),
            started=record.get("started"),
            finished=record.get("finished"),
            exit_code=record.get("exit_code"),
            stdout=record.get("stdout", ""),
            stderr=record.get("stderr", ""),
            metadata=dict(record.get("metadata", {})),
        )
