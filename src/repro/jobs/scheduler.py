"""The job scheduler.

Executes queued jobs inside the owner's shell sandbox using the confined
interpreter.  It can run synchronously (``run_pending`` — deterministic, used
by tests and examples) or as a background thread with a configurable number
of worker slots (the "processing farm" behaviour the Monte-Carlo production
service expected).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.httpd.workers import WorkerPool
from repro.jobs.model import Job, JobState
from repro.jobs.queue import JobQueue
from repro.shell.interpreter import ShellInterpreter
from repro.shell.sandbox import SandboxManager

__all__ = ["JobScheduler"]

#: Maps an owner DN to the local sandbox user that should run the job.
UserMapper = Callable[[str], str]


class JobScheduler:
    """Runs queued jobs in per-owner sandboxes."""

    def __init__(self, queue: JobQueue, sandboxes: SandboxManager, *,
                 user_mapper: UserMapper | None = None, slots: int = 2,
                 poll_interval: float = 0.05) -> None:
        self.queue = queue
        self.sandboxes = sandboxes
        self.user_mapper = user_mapper or (lambda dn: "clarens")
        self.slots = max(1, slots)
        self.poll_interval = poll_interval
        self._pool: WorkerPool | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.jobs_executed = 0
        self._lock = threading.Lock()

    # -- execution of one job --------------------------------------------------------
    def execute(self, job: Job) -> Job:
        """Run one job to completion and persist its result."""

        job.state = JobState.RUNNING
        job.started = time.time()
        self.queue.update(job)
        try:
            user = self.user_mapper(job.owner_dn)
            sandbox = self.sandboxes.get_or_create(user)
            interpreter = ShellInterpreter(sandbox.path)
            result = interpreter.run(job.command)
            job.stdout = result.stdout
            job.stderr = result.stderr
            job.exit_code = result.exit_code
            job.state = JobState.COMPLETED if result.exit_code == 0 else JobState.FAILED
        except Exception as exc:  # noqa: BLE001 - job failures must not kill the scheduler
            job.stderr = f"{type(exc).__name__}: {exc}\n"
            job.exit_code = -1
            job.state = JobState.FAILED
        finally:
            job.finished = time.time()
            self.queue.update(job)
            with self._lock:
                self.jobs_executed += 1
        return job

    # -- synchronous draining -----------------------------------------------------------
    def run_pending(self, max_jobs: int | None = None) -> int:
        """Run queued jobs until the queue is empty (or ``max_jobs`` reached)."""

        executed = 0
        while max_jobs is None or executed < max_jobs:
            # Re-check cancellation between jobs: cancel() may have raced us.
            job = self.queue.next_queued()
            if job is None:
                break
            current = self.queue.get(job.job_id)
            if current is None or current.state is not JobState.QUEUED:
                continue
            self.execute(current)
            executed += 1
        return executed

    # -- background operation --------------------------------------------------------------
    def start(self) -> "JobScheduler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._pool = WorkerPool(self.slots, name="clarens-job")
        self._thread = threading.Thread(target=self._run, name="clarens-scheduler", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        assert self._pool is not None
        in_flight: list = []
        while not self._stop.is_set():
            in_flight = [task for task in in_flight if not task.done()]
            while len(in_flight) < self.slots:
                job = self.queue.next_queued()
                if job is None:
                    break
                in_flight.append(self._pool.submit(self.execute, job))
            self._stop.wait(self.poll_interval)

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "JobScheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
