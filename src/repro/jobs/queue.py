"""The job queue.

Jobs are persisted in the ``jobs`` database table (so a restart does not lose
queued or completed jobs) and handed to the scheduler in a fair-share order:
round-robin across owners, FIFO within an owner.  That is the behaviour the
RunJob/Monte-Carlo production use-case needs — one heavy user cannot starve
the rest of the collaboration.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.database import Database
from repro.jobs.model import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """Persistent queue of jobs with fair-share ordering."""

    def __init__(self, database: Database) -> None:
        self._table = database.table("jobs")
        self._table.create_index("owner_dn")
        self._table.create_index("state")
        self._lock = threading.Lock()
        #: Rotates across owners for fair-share dequeueing.
        self._last_owner: str | None = None

    # -- submission ----------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        self._table.insert(job.job_id, job.to_record())
        return job

    def get(self, job_id: str) -> Job | None:
        record = self._table.get(job_id, None)
        return Job.from_record(record) if record is not None else None

    def update(self, job: Job) -> None:
        self._table.put(job.job_id, job.to_record())

    # -- queries --------------------------------------------------------------------
    def jobs_for(self, owner_dn: str) -> list[Job]:
        return sorted(
            (Job.from_record(r) for r in self._table.lookup("owner_dn", owner_dn)),
            key=lambda j: j.submitted,
        )

    def jobs_in_state(self, state: JobState) -> list[Job]:
        return sorted(
            (Job.from_record(r) for r in self._table.lookup("state", state.value)),
            key=lambda j: j.submitted,
        )

    def all_jobs(self) -> list[Job]:
        return sorted((Job.from_record(r) for r in self._table.all()),
                      key=lambda j: j.submitted)

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {state.value: 0 for state in JobState}
        for record in self._table.all():
            counts[record.get("state", "queued")] = counts.get(record.get("state", "queued"), 0) + 1
        return counts

    # -- scheduling ------------------------------------------------------------------
    def next_queued(self) -> Job | None:
        """Pop the next job to run under fair-share ordering (or None).

        The job is *not* removed from the table; its state transition to
        RUNNING is the scheduler's responsibility via :meth:`update`.
        """

        with self._lock:
            queued = self.jobs_in_state(JobState.QUEUED)
            if not queued:
                return None
            owners = sorted({j.owner_dn for j in queued})
            # Start from the owner after the one we served last.
            if self._last_owner in owners:
                start = (owners.index(self._last_owner) + 1) % len(owners)
            else:
                start = 0
            ordered_owners = owners[start:] + owners[:start]
            for owner in ordered_owners:
                owner_jobs = [j for j in queued if j.owner_dn == owner]
                if owner_jobs:
                    self._last_owner = owner
                    return owner_jobs[0]
            return None

    def cancel(self, job_id: str) -> Job | None:
        """Mark a non-terminal job cancelled; returns the job or None."""

        job = self.get(job_id)
        if job is None or job.state.is_terminal:
            return job
        job.state = JobState.CANCELLED
        self.update(job)
        return job

    def purge_terminal(self, owner_dn: str | None = None) -> int:
        """Delete completed/failed/cancelled jobs; returns how many."""

        removed = 0
        for job in self.all_jobs():
            if not job.state.is_terminal:
                continue
            if owner_dn is not None and job.owner_dn != owner_dn:
                continue
            if self._table.delete(job.job_id):
                removed += 1
        return removed

    def bulk_submit(self, jobs: Iterable[Job]) -> int:
        count = 0
        for job in jobs:
            self.submit(job)
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._table)
