"""The ``job`` service.

RPC access to the job queue and scheduler: submit a command to run in your
sandbox, poll its state, fetch its output, cancel it, and (for
administrators) inspect the whole queue.  ``job.run_pending`` drives the
scheduler synchronously, which keeps the examples and tests deterministic;
deployments that want continuous execution call ``job.start_scheduler``.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.jobs.model import Job, JobState
from repro.jobs.queue import JobQueue
from repro.jobs.scheduler import JobScheduler

__all__ = ["JobService"]


class JobService(ClarensService):
    """Job submission, monitoring and control."""

    service_name = "job"

    def __init__(self, server) -> None:
        super().__init__(server)
        self.queue = JobQueue(server.db)
        shell_service = server.services.get("shell")
        if shell_service is not None:
            sandboxes = shell_service.sandboxes
            user_mapper = shell_service._map_user
        else:  # pragma: no cover - shell is registered before job by default
            from repro.shell.sandbox import SandboxManager

            sandboxes = SandboxManager(server.shell_root)
            user_mapper = lambda dn: "clarens"  # noqa: E731
        self.scheduler = JobScheduler(self.queue, sandboxes, user_mapper=user_mapper)

    def on_stop(self) -> None:
        self.scheduler.stop()

    # -- ownership helper ----------------------------------------------------------------
    def _get_owned(self, ctx: CallContext, job_id: str) -> Job:
        job = self.queue.get(job_id)
        if job is None:
            raise NotFoundError(f"no such job: {job_id}")
        dn = ctx.require_dn()
        if job.owner_dn != dn and not self.server.vo.is_admin(dn):
            raise AccessDeniedError("this job belongs to a different identity")
        return job

    # -- submission / monitoring --------------------------------------------------------
    @rpc_method()
    def submit(self, ctx: CallContext, command: str, name: str = "",
               metadata: dict = {}) -> dict[str, Any]:
        """Submit a command to run in the caller's sandbox; returns the job record."""

        job = Job(owner_dn=ctx.require_dn(), command=command, name=name,
                  metadata=dict(metadata or {}))
        self.queue.submit(job)
        return job.to_record()

    @rpc_method()
    def status(self, ctx: CallContext, job_id: str) -> dict[str, Any]:
        """The current state of a job (owner or administrator only)."""

        job = self._get_owned(ctx, job_id)
        record = job.to_record()
        # Output can be large; status keeps the record light.
        record.pop("stdout", None)
        record.pop("stderr", None)
        return record

    @rpc_method()
    def output(self, ctx: CallContext, job_id: str) -> dict[str, Any]:
        """The stdout/stderr and exit code of a (finished or running) job."""

        job = self._get_owned(ctx, job_id)
        return {"job_id": job.job_id, "state": job.state.value,
                "exit_code": job.exit_code, "stdout": job.stdout, "stderr": job.stderr}

    @rpc_method()
    def list(self, ctx: CallContext, owner_dn: str = "") -> list[dict[str, Any]]:
        """Jobs belonging to the caller (or, for admins, any owner / all)."""

        caller = ctx.require_dn()
        if owner_dn and owner_dn != caller:
            self.server.require_admin(ctx)
            jobs = self.queue.jobs_for(owner_dn)
        elif owner_dn == "" and self.server.vo.is_admin(caller):
            jobs = self.queue.all_jobs()
        else:
            jobs = self.queue.jobs_for(caller)
        return [{k: v for k, v in j.to_record().items() if k not in ("stdout", "stderr")}
                for j in jobs]

    @rpc_method()
    def cancel(self, ctx: CallContext, job_id: str) -> dict[str, Any]:
        """Cancel a queued or running job."""

        self._get_owned(ctx, job_id)
        job = self.queue.cancel(job_id)
        assert job is not None
        return {"job_id": job.job_id, "state": job.state.value}

    @rpc_method()
    def queue_counts(self, ctx: CallContext) -> dict[str, int]:
        """Number of jobs per state."""

        ctx.require_dn()
        return self.queue.counts()

    # -- execution control ------------------------------------------------------------------
    @rpc_method()
    def run_pending(self, ctx: CallContext, max_jobs: int = 0) -> int:
        """Synchronously execute queued jobs; returns how many ran (admins only)."""

        self.server.require_admin(ctx)
        return self.scheduler.run_pending(max_jobs or None)

    @rpc_method()
    def start_scheduler(self, ctx: CallContext) -> bool:
        """Start the background scheduler (administrators only)."""

        self.server.require_admin(ctx)
        self.scheduler.start()
        return True

    @rpc_method()
    def stop_scheduler(self, ctx: CallContext) -> bool:
        """Stop the background scheduler (administrators only)."""

        self.server.require_admin(ctx)
        self.scheduler.stop()
        return True

    @rpc_method()
    def purge(self, ctx: CallContext, all_owners: bool = False) -> int:
        """Delete finished jobs (yours by default; all with admin rights)."""

        caller = ctx.require_dn()
        if all_owners:
            self.server.require_admin(ctx)
            return self.queue.purge_terminal(None)
        return self.queue.purge_terminal(caller)

    # -- convenience for other services -------------------------------------------------------
    def states(self) -> list[str]:
        """All job state names (useful for portal rendering)."""

        return [state.value for state in JobState]
