"""Job submission service.

The portal lists "job submission" among its components, and Clarens was the
service layer for the Monte-Carlo Processing Service (RunJob) and the PROOF
Enabled Analysis Center.  This package provides the job substrate those
integrations assumed: a queue of jobs, a scheduler that executes them inside
the submitting user's shell sandbox, and RPC methods to submit, monitor,
cancel and collect output.
"""

from __future__ import annotations

from repro.jobs.model import Job, JobState
from repro.jobs.queue import JobQueue
from repro.jobs.scheduler import JobScheduler
from repro.jobs.service import JobService

__all__ = ["Job", "JobState", "JobQueue", "JobScheduler", "JobService"]
