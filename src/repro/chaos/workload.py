"""Sustained mixed traffic against a soak federation, over real sockets.

Each driver thread owns its own :class:`random.Random` (seeded from the run
seed plus the thread index, so interleaving is reproducible per thread) and
its own authenticated client per server.  Five operation kinds cover the
surfaces the fabric makes claims about:

* ``session`` — login / ping / logout churn through the PKI handshake;
* ``multicall`` — batched ``system.echo`` calls (admission charges N tokens);
* ``read`` — checksum-verified LFN download through the replica broker;
* ``write`` — upload a fresh LFN via chunked ``file.write`` + register;
* ``replicate`` — queue a cross-server transfer of an existing LFN.

Outcome accounting is deliberate: ``RETRY_LATER`` faults are *shed* (the
admission layer doing its job), transport errors against a server the
injector currently holds down are *expected*, checksum mismatches are
*integrity violations* (an invariant, never tolerated), and anything else
is an *error* the watchdog will fail the run over.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.chaos.injector import LINK_DROP_MARKER
from repro.client.client import ClarensClient
from repro.client.errors import ClientError
from repro.client.files import download_lfn
from repro.protocols.errors import Fault, FaultCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.harness import SoakServer

__all__ = ["WorkloadDriver", "WorkloadStats"]


class WorkloadStats:
    """Thread-safe operation counters shared by all driver threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.by_kind: dict[str, int] = {}
        self.errors = 0
        self.shed = 0
        self.expected_down = 0
        self.integrity_mismatches = 0
        self.error_samples: list[str] = []
        #: (server name, transfer_id) of every replicate the drivers queued.
        self.transfers: list[tuple[str, int]] = []

    def ok(self, kind: str) -> None:
        with self._lock:
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def record_error(self, kind: str, exc: BaseException) -> None:
        with self._lock:
            self.errors += 1
            if len(self.error_samples) < 10:
                self.error_samples.append(f"{kind}: {type(exc).__name__}: {exc}")

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            total = sum(self.by_kind.values())
            return {
                "total": total,
                "by_kind": dict(self.by_kind),
                "errors": self.errors,
                "shed": self.shed,
                "expected_down": self.expected_down,
                "integrity_mismatches": self.integrity_mismatches,
                "error_samples": list(self.error_samples),
            }


class WorkloadDriver:
    """Run ``threads`` mixed-traffic workers until :meth:`stop` is called."""

    def __init__(self, servers: list["SoakServer"], *, credential,
                 mix: dict[str, int], seed: int, threads: int,
                 pool_lfns: list[str], payload_bytes: int,
                 expect_unavailable=None, protocol: str = "xmlrpc") -> None:
        self.servers = servers
        self.credential = credential
        #: ``binary`` makes every workload client negotiate the compact
        #: binary codec — which a server restart forgets, so the soak also
        #: proves the downgrade-and-renegotiate path under fire.
        self.negotiate = protocol == "binary"
        #: Callable answering "is some server inside a fault window right
        #: now?" — a read whose only replica lives on a killed server fails
        #: legitimately; the same failure with the whole fleet healthy is an
        #: error.  Defaults to "is any server down".
        self.expect_unavailable = (
            expect_unavailable
            or (lambda: any(not s.alive for s in servers)))
        self.mix = dict(mix)
        self.seed = int(seed)
        self.threads = int(threads)
        self.pool_lfns = list(pool_lfns)
        self.payload_bytes = int(payload_bytes)
        self.stats = WorkloadStats()
        self._stop = threading.Event()
        self._workers: list[threading.Thread] = []
        # The challenge store keeps one outstanding nonce per DN, so two
        # concurrent logins under the shared workload identity would race
        # (the second challenge invalidates the first signature).  Real
        # deployments use distinct identities; the drivers share one, so
        # serialise the handshake.
        self._login_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        for index in range(self.threads):
            worker = threading.Thread(target=self._run, args=(index,),
                                      name=f"soak-workload-{index}",
                                      daemon=True)
            self._workers.append(worker)
            worker.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout)

    # -- one worker ----------------------------------------------------------
    def _run(self, index: int) -> None:
        rng = random.Random(self.seed * 1000003 + index)
        clients: dict[str, ClarensClient] = {}
        kinds = sorted(self.mix)
        weights = [self.mix[kind] for kind in kinds]
        written: list[str] = []          # this worker's completed uploads
        requested: set[tuple[str, str]] = set()   # (lfn, dst) already queued
        sequence = 0
        while not self._stop.is_set():
            target = rng.choice(self.servers)
            kind = rng.choices(kinds, weights=weights)[0]
            if not target.alive:
                time.sleep(0.02)
                continue
            try:
                sequence += 1
                self._one_op(kind, target, rng, clients, written,
                             requested, f"{index}-{sequence}")
            except Fault as exc:
                if exc.code == FaultCode.RETRY_LATER:
                    with self.stats._lock:
                        self.stats.shed += 1
                    time.sleep(0.01 + rng.random() * 0.03)
                else:
                    self.stats.record_error(kind, exc)
            except (ClientError, OSError) as exc:
                # A connection-shaped failure against a server the injector
                # just killed (or is restarting) is the chaos working as
                # intended; the same failure against a healthy server is not.
                clients.pop(target.name, None)
                if not target.alive:
                    with self.stats._lock:
                        self.stats.expected_down += 1
                elif _is_integrity(exc):
                    with self.stats._lock:
                        self.stats.integrity_mismatches += 1
                        self.stats.error_samples.append(
                            f"integrity {kind}: {exc}")
                else:
                    self.stats.record_error(kind, exc)
            except Exception as exc:  # noqa: BLE001 - accounted, not raised
                self.stats.record_error(kind, exc)
        for client in clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 - teardown
                pass

    def _client(self, target: "SoakServer",
                clients: dict[str, ClarensClient]) -> ClarensClient:
        client = clients.get(target.name)
        if client is None or target.generation != getattr(
                client, "_soak_generation", None):
            client = ClarensClient.for_url(target.url,
                                           negotiate=self.negotiate)
            with self._login_lock:
                client.login_with_credential(self.credential)
            client._soak_generation = target.generation
            clients[target.name] = client
        return client

    def _one_op(self, kind: str, target: "SoakServer", rng: random.Random,
                clients: dict[str, ClarensClient], written: list[str],
                requested: set[tuple[str, str]], tag: str) -> None:
        if kind == "session":
            fresh = ClarensClient.for_url(target.url,
                                          negotiate=self.negotiate)
            try:
                with self._login_lock:
                    fresh.login_with_credential(self.credential)
                if fresh.call("system.ping") != "pong":
                    raise ClientError("ping did not answer pong")
                fresh.logout()
            finally:
                fresh.close()
        elif kind == "multicall":
            client = self._client(target, clients)
            calls = [("system.echo", [f"{tag}-{i}"]) for i in range(4)]
            results = client.multicall(calls)
            for i, slot in enumerate(results):
                if isinstance(slot, Fault):
                    raise slot
                if slot != f"{tag}-{i}":
                    raise ClientError(f"multicall slot {i} corrupted: {slot!r}")
        elif kind == "read":
            candidates = self.pool_lfns + written
            lfn = rng.choice(candidates)
            client = self._client(target, clients)
            try:
                download_lfn(client, lfn)  # raises ClientError on checksum drift
            except Fault as exc:
                # Anti-entropy is eventually consistent: a server that has
                # not pulled this LFN yet answers NOT_FOUND, which is lag,
                # not loss (the quiesce convergence check proves it).
                if exc.code == FaultCode.NOT_FOUND:
                    self.stats.ok("read_miss")
                    return
                # A file whose every replica sits on a server the injector
                # currently holds down — or behind a link it is dropping
                # (a stacked drop plan may exhaust the channel's whole
                # retry budget) — is legitimately unreadable; the same
                # failure with the fleet healthy is a real error.
                if "every replica" in str(exc) and (
                        self.expect_unavailable()
                        or LINK_DROP_MARKER in str(exc)):
                    self.stats.ok("read_unavailable")
                    return
                raise
        elif kind == "write":
            client = self._client(target, clients)
            lfn = f"/lfn/soak/scratch/{target.name}/{tag}.bin"
            pfn = f"/soak/scratch/{target.name}/{tag}.bin"
            data = rng.randbytes(self.payload_bytes)
            client.call("file.write", pfn, data, False)
            client.call("replica.register", lfn, target.local_se, pfn,
                        len(data), hashlib.md5(data).hexdigest())
            written.append(lfn)
        elif kind == "replicate":
            # Replicate only this worker's own uploads: two engines racing
            # the same (lfn, destination) pair can legitimately end with one
            # engine's failure-cleanup deleting the other's completed copy —
            # and deletions do not propagate through anti-entropy, which is
            # the documented divergence satellite-3 covers, not a soak bug.
            if not written:
                self.stats.ok("replicate_skip")
                return
            lfn = rng.choice(written)
            client = self._client(target, clients)
            peers = [s for s in self.servers if s is not target and s.alive
                     and (lfn, s.name) not in requested]
            if not peers:
                self.stats.ok("replicate_skip")
                return
            dst = rng.choice(peers)
            requested.add((lfn, dst.name))
            try:
                record = client.call("replica.replicate", lfn, dst.name)
            except Fault as exc:
                # Already replicated there (or racing another worker): the
                # churn goal is met either way.
                if exc.code == FaultCode.RETRY_LATER:
                    raise
                self.stats.ok(kind)
                return
            with self.stats._lock:
                self.stats.transfers.append((target.name,
                                             int(record["transfer_id"])))
        else:  # pragma: no cover - mix() validates kinds
            raise ValueError(f"unknown workload kind {kind!r}")
        self.stats.ok(kind)


def _is_integrity(exc: BaseException) -> bool:
    text = str(exc)
    return "checksum mismatch" in text or "short read" in text
