"""Deterministic soak-and-chaos harness for the Clarens federation.

``repro.chaos`` boots a real N-server socket federation, drives sustained
mixed traffic, lands scheduled faults through the :mod:`repro.core.faults`
seams, and grades invariants continuously plus at quiescence — all from one
seed, so any failure replays with ``REPRO_TEST_SEED=<seed>``.  The CLI
entry point is ``scripts/run_soak.py``; the tier-1 smoke lives in
``tests/test_chaos_soak.py``.
"""

from repro.chaos.config import SMOKE_OVERRIDES, SoakConfig
from repro.chaos.harness import SoakHarness, SoakServer
from repro.chaos.injector import FaultEvent, FaultInjector, build_schedule
from repro.chaos.report import append_report, build_report, render_report
from repro.chaos.watchdog import Watchdog
from repro.chaos.workload import WorkloadDriver, WorkloadStats

__all__ = [
    "SMOKE_OVERRIDES", "SoakConfig", "SoakHarness", "SoakServer",
    "FaultEvent", "FaultInjector", "build_schedule",
    "append_report", "build_report", "render_report",
    "Watchdog", "WorkloadDriver", "WorkloadStats",
]
