"""Continuous and final invariant checks for a soak run.

The watchdog runs *while the faults land*, not after: a quarantined replica
must never be served even transiently, a calm identity must never be shed
no matter how greedy the workload identity is, and ``/healthz`` must track
injected reality (unreachable only inside a kill window, 200 otherwise).
After the workload stops it drives the fleet to quiescence — anti-entropy
rounds until every catalogue agrees — and grades the convergence claims.

Invariant catalogue (names as they appear in the report):

* ``shed_fairness`` — the calm probe identity (its own admission bucket)
  never receives ``RETRY_LATER``.
* ``quarantine_never_served`` — no quarantined replica ever appears among
  a broker's read candidates.
* ``healthz_consistent`` — every live server answers ``/healthz`` with
  HTTP 200; unreachability is tolerated only inside a kill window + grace.
* ``no_lost_transfers`` — at quiesce every engine is drained (no queued /
  running / retrying work) and every journal is empty.
* ``catalogue_convergence`` — after anti-entropy rounds, every server's
  normalized view of every soak LFN (replica set + states, with ``local``
  aliased to the owner's name) is identical.
* ``corruption_handled`` — the corrupted replica ended quarantined on its
  owner and the LFN healed back to >= its policy's copy count.
* ``workload_integrity`` — no checksum mismatch or short read ever reached
  a workload client, and no unexplained errors occurred.
"""

from __future__ import annotations

import json
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.client.client import ClarensClient
from repro.protocols.errors import Fault, FaultCode
from repro.replica.model import ReplicaState, TransferState

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.harness import SoakServer
    from repro.chaos.injector import FaultInjector
    from repro.chaos.workload import WorkloadStats

__all__ = ["Watchdog"]

SOAK_PREFIX = "/lfn/soak/"


class Watchdog:
    """Background invariant checks plus the final convergence grade."""

    def __init__(self, servers: list["SoakServer"], injector: "FaultInjector",
                 *, calm_credential, interval: float = 0.3,
                 quiesce_timeout: float = 20.0) -> None:
        self.servers = servers
        self.injector = injector
        self.calm_credential = calm_credential
        self.interval = float(interval)
        self.quiesce_timeout = float(quiesce_timeout)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.violations: list[str] = []
        self.calm_pings = 0
        self.healthz_checks = 0
        self._calm_clients: dict[str, ClarensClient] = {}
        #: LFNs the last failed quiesce round disagreed on — the harness
        #: dumps their full per-server state in the failure diagnostics.
        self.disputed_lfns: list[str] = []

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(target=self._run,
                                        name="soak-watchdog", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
        for client in self._calm_clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 - teardown
                pass

    def _violate(self, message: str) -> None:
        with self._lock:
            if len(self.violations) < 50:
                self.violations.append(message)

    # -- periodic loop -------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            for server in self.servers:
                if self._stop.is_set():
                    return
                self._check_one(server)

    def _check_one(self, server: "SoakServer") -> None:
        now = time.monotonic()
        in_down_window = self.injector.down_window(server.name, now)
        if server.alive:
            self._probe_calm(server, tolerate_down=in_down_window)
            self._probe_healthz(server, tolerate_down=in_down_window)
        if server.alive:
            self._scan_quarantine(server)

    def _probe_calm(self, server: "SoakServer", *,
                    tolerate_down: bool) -> None:
        try:
            client = self._calm_clients.get(server.name)
            if client is None or server.generation != getattr(
                    client, "_soak_generation", None):
                client = ClarensClient.for_url(server.url)
                client.login_with_credential(self.calm_credential)
                client._soak_generation = server.generation
                self._calm_clients[server.name] = client
            if client.call("system.ping") != "pong":
                self._violate(f"calm ping on {server.name} did not pong")
            with self._lock:
                self.calm_pings += 1
        except Fault as exc:
            if exc.code == FaultCode.RETRY_LATER:
                # The whole point: a quiet identity must never pay for a
                # greedy one under per-identity admission.
                self._violate(f"shed_fairness: calm identity shed on "
                              f"{server.name}: {exc}")
            else:
                self._violate(f"calm probe fault on {server.name}: {exc}")
        except Exception as exc:  # noqa: BLE001 - graded, not raised
            self._calm_clients.pop(server.name, None)
            if not tolerate_down and server.alive:
                self._violate(f"calm probe failed on healthy {server.name}: "
                              f"{type(exc).__name__}: {exc}")

    def _probe_healthz(self, server: "SoakServer", *,
                       tolerate_down: bool) -> None:
        try:
            client = ClarensClient.for_url(server.url)
            try:
                response = client.http_get("/healthz")
            finally:
                client.close()
            with self._lock:
                self.healthz_checks += 1
            if response.status == 503:
                # 503 means *critical* — every peer down.  One killed peer
                # out of N-1 only degrades; critical outside a kill window
                # on some peer is a lie.
                if not any(self.injector.down_window(other.name,
                                                     time.monotonic())
                           for other in self.servers if other is not server):
                    self._violate(f"healthz_consistent: {server.name} "
                                  "critical with no peer inside a kill window")
            elif response.status != 200:
                self._violate(f"healthz_consistent: {server.name} answered "
                              f"HTTP {response.status}")
            else:
                body = json.loads(response.body_bytes())
                if body.get("server") != server.name:
                    self._violate(f"healthz_consistent: {server.name} "
                                  f"reported itself as {body.get('server')!r}")
        except Exception as exc:  # noqa: BLE001 - graded, not raised
            if not tolerate_down and server.alive:
                self._violate(f"healthz_consistent: {server.name} unreachable "
                              f"outside any kill window: {exc}")

    def _scan_quarantine(self, server: "SoakServer") -> None:
        try:
            replica = server.server.services["replica"]
            catalogue, broker = replica.catalogue, replica.broker
            for lfn in catalogue.lfns(SOAK_PREFIX):
                entry = catalogue.entry(lfn)
                quarantined = {se for se, rec in entry["replicas"].items()
                               if rec["state"] == ReplicaState.QUARANTINED.value}
                if not quarantined:
                    continue
                served = {element.name
                          for _, element in broker.candidates(lfn)}
                leaked = quarantined & served
                if leaked:
                    self._violate(f"quarantine_never_served: {server.name} "
                                  f"offers quarantined replica(s) {leaked} "
                                  f"of {lfn}")
        except Exception:  # noqa: BLE001 - server may be mid-kill
            if server.alive and not self.injector.down_window(
                    server.name, time.monotonic()):
                raise

    # -- final grading -------------------------------------------------------
    def final_checks(self, stats: "WorkloadStats") -> tuple[
            dict[str, dict[str, Any]], float | None]:
        """Drive quiescence, then grade every invariant.

        Returns ``(invariants, convergence_latency_s)`` where each invariant
        is ``{"ok": bool, "detail": str}``.
        """

        started = time.monotonic()
        latency: float | None = None
        deadline = started + self.quiesce_timeout
        last_reason = "never attempted"
        while time.monotonic() < deadline:
            reason = self._quiesce_round()
            if reason is None:
                latency = time.monotonic() - started
                break
            last_reason = reason
            time.sleep(0.15)

        invariants: dict[str, dict[str, Any]] = {}

        def grade(name: str, ok: bool, detail: str = "") -> None:
            invariants[name] = {"ok": bool(ok), "detail": detail}

        snapshot = stats.snapshot()
        with self._lock:
            periodic = list(self.violations)
        for name in ("shed_fairness", "quarantine_never_served",
                     "healthz_consistent"):
            hits = [v for v in periodic if v.startswith(name)]
            grade(name, not hits, "; ".join(hits[:3]))
        other = [v for v in periodic
                 if not v.split(":")[0] in ("shed_fairness",
                                            "quarantine_never_served",
                                            "healthz_consistent")]
        grade("watchdog_probes", not other, "; ".join(other[:3]))

        sync_stats = "; ".join(
            f"{s.name}: {s.server.fabric.sync.stats()}"
            for s in self.servers if s.alive and s.server is not None)
        grade("catalogue_convergence", latency is not None,
              "" if latency is not None
              else f"not converged after {self.quiesce_timeout}s: "
                   f"{last_reason} [{sync_stats}]")
        grade("no_lost_transfers", *self._grade_transfers())
        grade("corruption_handled", *self._grade_corruption())
        grade("workload_integrity",
              snapshot["integrity_mismatches"] == 0
              and snapshot["errors"] == 0,
              f"{snapshot['integrity_mismatches']} mismatches, "
              f"{snapshot['errors']} errors: "
              + "; ".join(snapshot["error_samples"][:3]))
        injector_clean = not self.injector.errors
        grade("injector_clean", injector_clean,
              "; ".join(self.injector.errors[:3]))
        return invariants, latency

    def _quiesce_round(self) -> str | None:
        """One anti-entropy + drain check; None when fully quiesced."""

        for server in self.servers:
            if not server.alive:
                return f"{server.name} still down"
            try:
                server.server.fabric.sync.sync_once()
            except Exception as exc:  # noqa: BLE001 - retried next round
                return f"sync_once on {server.name}: {exc}"
        views: dict[str, dict[str, dict[str, str]]] = {}
        for server in self.servers:
            replica = server.server.services["replica"]
            for request in replica.engine.transfers():
                if not request.state.terminal:
                    return (f"transfer {request.transfer_id} on "
                            f"{server.name} still {request.state.value}")
            journal = replica.journal
            if journal is not None and journal.pending():
                return f"journal on {server.name} not empty"
            # Compare only the fabric-visible view: the local element is
            # aliased to the server's fabric name, and purely local elements
            # (the mass store) are excluded — exactly the normalisation
            # fabric.catalogue_entries applies on export, since peers can
            # never learn about replicas that are not exported.
            fabric_names = {s.name for s in self.servers}
            view: dict[str, dict[str, str]] = {}
            for lfn in replica.catalogue.lfns(SOAK_PREFIX):
                entry = replica.catalogue.entry(lfn)
                view[lfn] = {
                    (server.name if se == server.local_se else se):
                        rec["state"]
                    for se, rec in entry["replicas"].items()
                    if se == server.local_se or se in fabric_names}
            views[server.name] = view
        baseline_name = self.servers[0].name
        baseline = views[baseline_name]
        for name, view in views.items():
            if view != baseline:
                only_base = sorted(set(baseline) - set(view))
                only_view = sorted(set(view) - set(baseline))
                if only_base or only_view:
                    self.disputed_lfns = only_base[:5] + only_view[:5]
                    sample = (only_base or only_view)[0]
                    holder = baseline if only_base else view
                    return (f"{name} and {baseline_name} disagree on LFN "
                            f"set: only on {baseline_name}: {only_base[:3]}; "
                            f"only on {name}: {only_view[:3]}; "
                            f"e.g. {sample} = {holder[sample]}")
                for lfn in baseline:
                    if view[lfn] != baseline[lfn]:
                        self.disputed_lfns = [lfn]
                        return (f"{name} sees {lfn} as {view[lfn]}, "
                                f"{baseline_name} as {baseline[lfn]}")
        return None

    def _grade_transfers(self) -> tuple[bool, str]:
        problems = []
        for server in self.servers:
            if not server.alive:
                problems.append(f"{server.name} down at grading")
                continue
            replica = server.server.services["replica"]
            stuck = [r.transfer_id for r in replica.engine.transfers()
                     if not r.state.terminal]
            if stuck:
                problems.append(f"{server.name} transfers stuck: {stuck}")
            journal = replica.journal
            if journal is not None and len(journal):
                problems.append(f"{server.name} journal still has "
                                f"{len(journal)} row(s)")
        return not problems, "; ".join(problems)

    def _grade_corruption(self) -> tuple[bool, str]:
        target = self.injector.corrupt_target
        if target is None:
            return False, "corruption fault never executed"
        server_name, lfn = target
        owner = next(s for s in self.servers if s.name == server_name)
        replica = owner.server.services["replica"]
        try:
            entry = replica.catalogue.entry(lfn)
        except Exception as exc:  # noqa: BLE001 - graded
            return False, f"stat of corrupted {lfn} failed: {exc}"
        local = entry["replicas"].get(owner.local_se)
        if local is None:
            return False, f"{lfn} lost its local replica record"
        if local["state"] != ReplicaState.QUARANTINED.value:
            return False, (f"corrupted replica of {lfn} is "
                           f"{local['state']}, expected quarantined")
        active = [se for se, rec in entry["replicas"].items()
                  if rec["state"] == ReplicaState.ACTIVE.value]
        if len(active) < 2:
            return False, (f"{lfn} not healed: active replicas {active}")
        return True, f"quarantined on {owner.local_se}, active on {active}"
