"""Scheduled fault injection for a soak run.

The schedule is built *up front* from the run seed, so the same seed always
lands the same faults on the same servers at the same relative times — the
replay contract the harness advertises.  A deterministic skeleton guarantees
that every enabled fault kind actually occurs at least once per run (pure
sampling could roll a run that never kills anything); seeded extras add
link-drop noise on top.

Fault kinds and their mechanisms:

* ``kill`` — close a server's listening socket and the server itself, then
  boot a fresh instance on the same port after ``chaos_kill_hold`` seconds
  (``allow_reuse_address`` makes the rebind safe).  Exercises journal
  replay, channel reconnect and peer health transitions.
* ``link_drop`` — arm a ``fabric.channel.call`` fault rule against one peer
  name: the next few pooled calls toward that peer fail transport-style and
  the channel's discard/retry path must absorb them.
* ``corrupt`` — overwrite a protected LFN's local bytes on disk, then force
  a verified read so the broker quarantines the replica; the copy-count
  policy must heal it to another server while the run continues.
* ``journal_truncate`` — wipe a server's transfer journal mid-run; the
  in-memory engine must still drive every accepted transfer to a terminal
  state (the invariant the watchdog checks at quiesce).
* ``clock_skew`` — for a window, rewrite the timestamps of one server's
  outbound gossip an hour into the future; anti-entropy is pull-based and
  must converge regardless.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.chaos.config import SoakConfig
from repro.client.errors import ClientError
from repro.core.faults import FAULTS

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.harness import SoakServer

__all__ = ["FaultEvent", "FaultInjector", "LINK_DROP_MARKER",
           "build_schedule"]

#: Message carried by injected channel-drop errors.  The workload driver
#: recognises it when a read fails with "every replica ... failed": a
#: stacked drop schedule can legitimately exhaust a channel's whole retry
#: budget, and that is the fault landing, not an integrity violation.
LINK_DROP_MARKER = "injected link drop"


@dataclass
class FaultEvent:
    """One scheduled fault: when (fraction of the run), what, on whom."""

    at: float                 # fraction of chaos_duration in [0, 1)
    kind: str
    server: int               # index into the harness server list
    params: dict[str, Any] = field(default_factory=dict)


def build_schedule(config: SoakConfig, seed: int,
                   n_servers: int) -> list[FaultEvent]:
    """The full, deterministic fault schedule for one run."""

    rng = random.Random(seed ^ 0x5EEDFA17)
    enabled = set(config.fault_kinds())
    events: list[FaultEvent] = []
    # Deterministic skeleton: each enabled kind fires once, spread out and
    # placed so faults compose instead of masking each other (the corruption
    # target is never the killed server; the truncated journal belongs to a
    # server that stays up, so nothing is legitimately lost).
    if "link_drop" in enabled:
        events.append(FaultEvent(0.15, "link_drop",
                                 rng.randrange(n_servers), {"times": 2}))
    if "kill" in enabled:
        victim = 1 % n_servers
        events.append(FaultEvent(0.25, "kill", victim))
        events.append(FaultEvent(0.25, "restart", victim,
                                 {"delay": config.chaos_kill_hold}))
    if "corrupt" in enabled:
        events.append(FaultEvent(0.35, "corrupt", 0))
    if "journal_truncate" in enabled:
        events.append(FaultEvent(0.40, "journal_truncate",
                                 2 % n_servers))
    if "clock_skew" in enabled:
        events.append(FaultEvent(0.50, "clock_skew_on", 0,
                                 {"skew": 3600.0}))
        events.append(FaultEvent(0.65, "clock_skew_off", 0))
    # Seeded extras: more link drops, anywhere, any time in the middle band.
    if "link_drop" in enabled:
        for _ in range(rng.randrange(1, 4)):
            events.append(FaultEvent(0.10 + rng.random() * 0.70, "link_drop",
                                     rng.randrange(n_servers),
                                     {"times": 1 + rng.randrange(2)}))
    events.sort(key=lambda e: e.at)
    return events


class FaultInjector:
    """Execute a :func:`build_schedule` against live servers, keeping a
    ledger of what landed when (the watchdog grades health endpoints against
    that ledger, and the report counts faults from it)."""

    #: Seconds a server may legitimately look unhealthy after a fault ends
    #: (channel retries, health probe caching, restart warm-up).
    GRACE = 2.0

    def __init__(self, servers: list["SoakServer"], config: SoakConfig,
                 seed: int) -> None:
        self.servers = servers
        self.config = config
        self.schedule = build_schedule(config, seed, len(servers))
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        #: executed faults: {kind, server, at, until}
        self.ledger: list[dict[str, Any]] = []
        self.errors: list[str] = []
        self._skew_rule = None
        self.corrupt_target: tuple[str, str] | None = None   # (server, lfn)

    # -- lifecycle -----------------------------------------------------------
    def start(self, duration: float) -> None:
        self._thread = threading.Thread(target=self._run, args=(duration,),
                                        name="soak-injector", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 15.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
        if self._skew_rule is not None:
            self._skew_rule.cancel()
            self._skew_rule = None

    def fault_counts(self) -> dict[str, int]:
        with self._lock:
            counts: dict[str, int] = {}
            for entry in self.ledger:
                counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
            return counts

    def down_window(self, server_name: str, now: float) -> bool:
        """Is ``server_name`` inside a kill window (plus grace) at ``now``?"""

        with self._lock:
            for entry in self.ledger:
                if entry["kind"] != "kill":
                    continue
                if self.servers[entry["server"]].name != server_name:
                    continue
                until = entry.get("until") or now + 1.0   # restart pending
                if entry["at"] - 0.1 <= now <= until + self.GRACE:
                    return True
        return False

    # -- execution -----------------------------------------------------------
    def _run(self, duration: float) -> None:
        start = time.monotonic()
        for event in self.schedule:
            deadline = start + event.at * duration
            while not self._stop.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._stop.wait(min(remaining, 0.1))
            if self._stop.is_set():
                return
            try:
                self._execute(event)
            except Exception as exc:  # noqa: BLE001 - injector must not die
                with self._lock:
                    self.errors.append(f"{event.kind}@{event.server}: "
                                       f"{type(exc).__name__}: {exc}")

    def _execute(self, event: FaultEvent) -> None:
        target = self.servers[event.server]
        now = time.monotonic()
        if event.kind == "link_drop":
            FAULTS.inject(
                "fabric.channel.call", match={"peer": target.name},
                times=int(event.params.get("times", 2)),
                exc=ClientError(f"{LINK_DROP_MARKER} toward {target.name}"))
            self._record("link_drop", event.server, now, until=now)
        elif event.kind == "kill":
            target.kill()
            self._record("kill", event.server, now, until=None)
        elif event.kind == "restart":
            self._stop.wait(float(event.params.get("delay", 1.0)))
            if self._stop.is_set():
                # Leave no dead server behind: the teardown path closes
                # booted servers only.
                target.restart()
                return
            target.restart()
            with self._lock:
                for entry in reversed(self.ledger):
                    if entry["kind"] == "kill" and entry["server"] == event.server:
                        entry["until"] = time.monotonic()
                        break
            self._record("restart", event.server, time.monotonic(),
                         until=time.monotonic())
        elif event.kind == "corrupt":
            lfn = target.protected_lfns[0]
            target.corrupt_local_replica(lfn)
            self.corrupt_target = (target.name, lfn)
            self._record("corrupt", event.server, now, until=now)
        elif event.kind == "journal_truncate":
            journal = target.server.services["replica"].journal
            if journal is not None:
                journal.clear()
            self._record("journal_truncate", event.server, now, until=now)
        elif event.kind == "clock_skew_on":
            skew = float(event.params.get("skew", 3600.0))

            def _skew_entry(ctx: dict[str, Any]) -> None:
                ctx["entry"]["timestamp"] = ctx["entry"]["timestamp"] + skew

            self._skew_rule = FAULTS.inject(
                "fabric.gossip.entry", match={"source": target.name},
                times=None, call=_skew_entry)
            self._record("clock_skew", event.server, now, until=None)
        elif event.kind == "clock_skew_off":
            if self._skew_rule is not None:
                self._skew_rule.cancel()
                self._skew_rule = None
            with self._lock:
                for entry in reversed(self.ledger):
                    if entry["kind"] == "clock_skew":
                        entry["until"] = time.monotonic()
                        break
        else:  # pragma: no cover - schedule is built here
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _record(self, kind: str, server: int, at: float,
                until: float | None) -> None:
        with self._lock:
            self.ledger.append({"kind": kind, "server": server,
                                "at": at, "until": until})
