"""Soak-run configuration: fleet shape, workload mix, fault schedule knobs.

:class:`SoakConfig` mirrors the :class:`~repro.core.config.ServerConfig`
idiom — a flat dataclass of ``chaos_*`` knobs with ``#:`` doc comments, so
``scripts/gen_config_docs.py`` renders the same reference table for it and
``tests/test_docs.py`` keeps ``docs/config.md`` honest.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from repro.core.config import ConfigError

__all__ = ["SoakConfig", "SMOKE_OVERRIDES"]

#: Overrides applied by ``scripts/run_soak.py --smoke`` and the tier-1 test:
#: the same harness, shrunk to a seconds-scale three-server run.
SMOKE_OVERRIDES = {
    "chaos_duration": 6.0,
    "chaos_servers": 3,
    "chaos_workload_threads": 3,
    "chaos_lfns_per_server": 3,
    "chaos_payload_bytes": 2048,
}


@dataclass
class SoakConfig:
    """Configuration for one soak-and-chaos run."""

    #: Number of federated servers to boot (full mesh over real sockets).
    chaos_servers: int = 3
    #: Seconds of sustained workload before quiet-down and convergence
    #: checks begin.
    chaos_duration: float = 6.0
    #: Seed for every random choice the run makes (workload interleaving,
    #: fault placement).  0 draws a fresh seed; the chosen value is printed
    #: and accepted back via ``REPRO_TEST_SEED`` for replay.
    chaos_seed: int = 0
    #: Concurrent workload driver threads per run (each owns a client
    #: session per server).
    chaos_workload_threads: int = 3
    #: Relative workload mix as ``kind=weight`` pairs; kinds are
    #: ``session`` (login/ping/logout), ``multicall`` (batched echoes),
    #: ``read`` (verified LFN download), ``write`` (fresh LFN upload) and
    #: ``replicate`` (cross-server transfer churn).
    chaos_workload_mix: str = "session=2,multicall=2,read=5,write=3,replicate=1"
    #: Fault kinds the injector may schedule, comma-separated; subset of
    #: ``kill,link_drop,corrupt,journal_truncate,clock_skew``.
    chaos_fault_kinds: str = "kill,link_drop,corrupt,journal_truncate,clock_skew"
    #: Seconds a killed server stays down before the injector restarts it.
    chaos_kill_hold: float = 1.0
    #: Seconds the final convergence check may wait for the fleet to settle
    #: (journals drained, catalogues converged) before declaring failure.
    chaos_quiesce_timeout: float = 20.0
    #: Protected LFNs per server: seeded with exactly local + one peer copy
    #: and a two-copy policy, so corruption forces a visible heal.
    chaos_protected_lfns: int = 1
    #: Pool LFNs seeded per server for the read workload.
    chaos_lfns_per_server: int = 3
    #: Payload size in bytes for seeded and workload-written LFNs.
    chaos_payload_bytes: int = 2048
    #: Per-identity admission rate for the soak servers (requests/second);
    #: kept finite so shed-fairness is actually exercised.
    chaos_rate_limit: float = 200.0
    #: Admission burst allowance for the soak servers.
    chaos_rate_burst: int = 400
    #: Trend file the soak report is appended to, relative to the repo root
    #: unless absolute.
    chaos_report_path: str = "BENCH_pipeline.json"
    #: Socket frontend the federation boots on: ``threaded`` (the paper's
    #: thread-per-connection server) or ``async`` (the event-loop frontend).
    #: Maps straight onto the servers' ``server_transport`` knob.
    chaos_transport: str = "threaded"
    #: Wire protocol the workload clients speak: ``xmlrpc`` (the paper's
    #: default) or ``binary`` (clients negotiate the compact binary codec and
    #: must survive restarts downgrading them mid-session).
    chaos_protocol: str = "xmlrpc"

    def __post_init__(self) -> None:
        if self.chaos_servers < 2:
            raise ConfigError("chaos_servers must be >= 2 (need peers)")
        if self.chaos_duration <= 0:
            raise ConfigError("chaos_duration must be positive")
        if self.chaos_workload_threads < 1:
            raise ConfigError("chaos_workload_threads must be >= 1")
        if self.chaos_quiesce_timeout <= 0:
            raise ConfigError("chaos_quiesce_timeout must be positive")
        if self.chaos_payload_bytes < 16:
            raise ConfigError("chaos_payload_bytes must be >= 16")
        if self.chaos_lfns_per_server < 1 or self.chaos_protected_lfns < 1:
            raise ConfigError("need at least one pool and one protected LFN "
                              "per server")
        if self.chaos_rate_limit < 0 or self.chaos_rate_burst < 0:
            raise ConfigError("rate limit knobs cannot be negative")
        if self.chaos_transport not in ("threaded", "async"):
            raise ConfigError("chaos_transport must be 'threaded' or 'async', "
                              f"not {self.chaos_transport!r}")
        if self.chaos_protocol not in ("xmlrpc", "binary"):
            raise ConfigError("chaos_protocol must be 'xmlrpc' or 'binary', "
                              f"not {self.chaos_protocol!r}")
        self.mix()                            # validate eagerly
        self.fault_kinds()

    # -- parsed views --------------------------------------------------------
    def mix(self) -> dict[str, int]:
        """The workload mix as ``{kind: weight}`` with zero weights dropped."""

        known = {"session", "multicall", "read", "write", "replicate"}
        parsed: dict[str, int] = {}
        for part in self.chaos_workload_mix.split(","):
            part = part.strip()
            if not part:
                continue
            kind, _, weight = part.partition("=")
            kind = kind.strip()
            if kind not in known:
                raise ConfigError(f"unknown workload kind: {kind!r}")
            try:
                value = int(weight.strip() or "1")
            except ValueError as exc:
                raise ConfigError(f"bad weight for {kind!r}: {weight!r}") from exc
            if value < 0:
                raise ConfigError(f"negative weight for {kind!r}")
            if value:
                parsed[kind] = value
        if not parsed:
            raise ConfigError("chaos_workload_mix selects no work")
        return parsed

    def fault_kinds(self) -> list[str]:
        """The enabled fault kinds, validated, in declaration order."""

        known = ["kill", "link_drop", "corrupt", "journal_truncate",
                 "clock_skew"]
        wanted = [part.strip() for part in self.chaos_fault_kinds.split(",")
                  if part.strip()]
        for kind in wanted:
            if kind not in known:
                raise ConfigError(f"unknown fault kind: {kind!r}")
        return [kind for kind in known if kind in wanted]

    def resolve_seed(self) -> int:
        """The effective seed: explicit knob, then ``REPRO_TEST_SEED``, then
        a freshly drawn value."""

        if self.chaos_seed:
            return int(self.chaos_seed)
        env = os.environ.get("REPRO_TEST_SEED", "").strip()
        if env:
            return int(env)
        return random.SystemRandom().randrange(1, 2**31)
