"""Structured soak report: build the trend entry, append it, render it.

The report rides the same trend file as the pipeline benchmarks
(``BENCH_pipeline.json``), through the same tolerant appender in
``scripts/bench_trend.py``, so one file accumulates the repo's performance
*and* robustness trajectory.  Soak entries are distinguished by their
``"kind": "soak"`` marker.
"""

from __future__ import annotations

import datetime
import importlib.util
import json
import platform
import sys
from pathlib import Path
from typing import Any

__all__ = ["REPO_ROOT", "build_report", "append_report", "render_report"]

REPO_ROOT = Path(__file__).resolve().parents[3]


def _load_bench_trend():
    """Import ``scripts/bench_trend.py`` (not a package) by file path."""

    name = "repro_scripts_bench_trend"
    cached = sys.modules.get(name)
    if cached is not None:
        return cached
    path = REPO_ROOT / "scripts" / "bench_trend.py"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - repo damage
        raise RuntimeError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def build_report(*, seed: int, servers: int, duration: float,
                 ops: dict[str, Any], faults: dict[str, int],
                 invariants: dict[str, Any],
                 convergence_latency_s: float | None) -> dict[str, Any]:
    """One trend entry for a finished soak run."""

    total = int(ops.get("total", 0))
    return {
        "kind": "soak",
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "soak": {
            "seed": seed,
            "servers": servers,
            "duration_s": round(float(duration), 3),
            "ops": {
                "total": total,
                "errors": int(ops.get("errors", 0)),
                "by_kind": {k: int(v)
                            for k, v in sorted(ops.get("by_kind", {}).items())},
                "ops_per_second": round(total / duration, 1) if duration else 0.0,
            },
            "faults": {k: int(v) for k, v in sorted(faults.items())},
            "invariants": invariants,
            "convergence_latency_s": (round(convergence_latency_s, 3)
                                      if convergence_latency_s is not None
                                      else None),
        },
    }


def append_report(entry: dict[str, Any], *,
                  path: str | Path | None = None) -> Path:
    """Append ``entry`` to the trend file; returns the file written."""

    trend = _load_bench_trend()
    target = Path(path) if path is not None else Path(trend.TREND_FILE)
    if not target.is_absolute():
        target = REPO_ROOT / target
    trend.append_trend(entry, path=target)
    return target


def render_report(entry: dict[str, Any]) -> str:
    """Human-readable summary of one soak entry, for the CLI."""

    soak = entry["soak"]
    ops = soak["ops"]
    lines = [
        f"soak: {soak['servers']} servers, {soak['duration_s']}s, "
        f"seed {soak['seed']}",
        f"ops: {ops['total']} total ({ops['ops_per_second']}/s), "
        f"{ops['errors']} errors, mix {json.dumps(ops['by_kind'])}",
        f"faults: {json.dumps(soak['faults'])}",
    ]
    if soak["convergence_latency_s"] is not None:
        lines.append(f"convergence: {soak['convergence_latency_s']}s "
                     "after quiet-down")
    for name, verdict in sorted(soak["invariants"].items()):
        status = "ok" if verdict.get("ok") else "VIOLATED"
        detail = verdict.get("detail", "")
        lines.append(f"invariant {name}: {status}"
                     + (f" — {detail}" if detail else ""))
    return "\n".join(lines)
