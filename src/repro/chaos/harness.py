"""Boot an N-server federation and soak it: workload + faults + watchdog.

The harness owns the full run lifecycle: a private CA and credential cast,
one :class:`SoakServer` per federation member (stable port, on-disk state so
kill/restart exercises journal replay), seeded pool and protected LFNs,
then the three concurrent actors — :class:`~repro.chaos.workload
.WorkloadDriver`, :class:`~repro.chaos.injector.FaultInjector`,
:class:`~repro.chaos.watchdog.Watchdog` — for ``chaos_duration`` seconds,
a quiesce-and-grade pass, and a structured report appended to the trend
file.  Everything random descends from one seed; a failed run is replayed
with ``REPRO_TEST_SEED=<seed>``.
"""

from __future__ import annotations

import hashlib
import shutil
import socket
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.chaos.config import SoakConfig
from repro.chaos.injector import FaultInjector
from repro.chaos.report import append_report, build_report
from repro.chaos.watchdog import Watchdog
from repro.chaos.workload import WorkloadDriver
from repro.core.config import ServerConfig
from repro.core.faults import FAULTS
from repro.core.server import ClarensServer
from repro.pki.authority import CertificateAuthority

__all__ = ["SoakServer", "SoakHarness", "reserve_port"]

ADMIN_DN = "/O=soak.clarens.test/OU=People/CN=Soak Admin"


def reserve_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class SoakServer:
    """One federation member: stable identity, port and on-disk state.

    ``kill()`` tears the live instance down; ``restart()`` boots a fresh one
    against the same database and file root on the same port, replaying the
    transfer journal and re-applying copy-count policies (which live in
    memory by design).  ``generation`` increments per boot so clients know
    their sessions died with the old instance.
    """

    def __init__(self, name: str, port: int, *, credential, trust_store,
                 base_dir: Path, peer_specs: list[str],
                 overrides: dict[str, Any]) -> None:
        self.name = name
        self.port = port
        self.credential = credential
        self.trust_store = trust_store
        self.dn = str(credential.certificate.subject)
        self.data_dir = base_dir / name / "db"
        self.file_root = base_dir / name / "files"
        self.peer_specs = peer_specs          # filled in before first boot
        self.overrides = overrides
        self.local_se = overrides.get("replica_local_se", "local")
        self.server: ClarensServer | None = None
        self._sock = None
        self.alive = False
        self.generation = 0
        #: (prefix, copies) pairs re-applied on every boot.
        self.policies: list[tuple[str, int]] = []
        self.protected_lfns: list[str] = []

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}/"

    # -- lifecycle -----------------------------------------------------------
    def boot(self) -> None:
        if self.alive:
            return
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.file_root.mkdir(parents=True, exist_ok=True)
        config = ServerConfig(
            server_name=self.name, admins=[ADMIN_DN], host_dn=self.dn,
            data_dir=str(self.data_dir), file_root=str(self.file_root),
            fabric_peers=list(self.peer_specs), **self.overrides)
        self.server = ClarensServer(config, credential=self.credential,
                                    trust_store=self.trust_store)
        self._sock = self.server.frontend(port=self.port)
        self._sock.__enter__()
        for prefix, copies in self.policies:
            self.server.replica_policy.set_policy(prefix, copies)
        self.generation += 1
        self.alive = True

    def kill(self) -> None:
        if not self.alive:
            return
        self.alive = False                    # workload checks this first
        sock, server = self._sock, self.server
        self._sock = self.server = None
        if sock is not None:
            sock.__exit__(None, None, None)
        if server is not None:
            server.close()

    restart = boot

    def close(self) -> None:
        self.kill()

    # -- policy / seeding helpers -------------------------------------------
    def set_policy(self, prefix: str, copies: int) -> None:
        self.policies.append((prefix, copies))
        assert self.server is not None
        self.server.replica_policy.set_policy(prefix, copies)

    def seed_lfn(self, lfn: str, pfn: str, data: bytes) -> None:
        """Write ``data`` at ``pfn`` on the local element and register it."""

        assert self.server is not None
        path = self.file_root / pfn.lstrip("/")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
        replica = self.server.services["replica"]
        replica.catalogue.register(lfn, self.local_se, pfn, size=len(data),
                                   checksum=hashlib.md5(data).hexdigest())

    def corrupt_local_replica(self, lfn: str) -> None:
        """Flip the local bytes of ``lfn``, then force a verified read so
        the broker notices and quarantines the replica."""

        assert self.server is not None
        replica = self.server.services["replica"]
        record = replica.catalogue.replica_on(lfn, self.local_se)
        path = self.file_root / record.pfn.lstrip("/")
        original = path.read_bytes()
        path.write_bytes(b"\x00" * max(8, len(original) // 2))
        try:
            replica.broker.read_verified(lfn)
        except Exception:  # noqa: BLE001 - no healthy replica left is fine
            pass


class SoakHarness:
    """Run one soak: boot, seed, fire, grade, report."""

    def __init__(self, config: SoakConfig | None = None) -> None:
        self.config = config or SoakConfig()
        self.seed = self.config.resolve_seed()
        self.servers: list[SoakServer] = []
        self._tmp: Path | None = None

    # -- setup ---------------------------------------------------------------
    def _server_overrides(self) -> dict[str, Any]:
        config = self.config
        return {
            "server_transport": config.chaos_transport,
            "dispatch_rate_limit": config.chaos_rate_limit,
            "dispatch_burst": config.chaos_rate_burst,
            "replica_journal_enabled": True,
            "replica_transfer_workers": 2,
            "replica_max_attempts": 3,
            "replica_retry_delay": 0.05,
            "replica_heal_interval": 0.2,
            "replica_heal_backoff": 0.05,
            "fabric_gossip_interval": 0.2,
            "fabric_catalogue_sync": 0.5,
            "telemetry_enabled": True,
        }

    def setup(self) -> None:
        self._tmp = Path(tempfile.mkdtemp(prefix="repro-soak-"))
        ca = CertificateAuthority("/O=soak.clarens.test/CN=Soak CA",
                                  key_bits=512)
        self.workload_credential = ca.issue_user("Wanda Workload")
        self.calm_credential = ca.issue_user("Calm Carol")
        names = [f"soak-{i}" for i in range(self.config.chaos_servers)]
        ports = {name: reserve_port() for name in names}
        hosts = {name: ca.issue_host(f"{name}.soak.clarens.test")
                 for name in names}
        trust = ca.trust_store()
        overrides = self._server_overrides()
        for name in names:
            peer_specs = [
                f"{other}=http://127.0.0.1:{ports[other]}/"
                f"|{hosts[other].certificate.subject}"
                for other in names if other != name]
            self.servers.append(SoakServer(
                name, ports[name], credential=hosts[name], trust_store=trust,
                base_dir=self._tmp, peer_specs=peer_specs,
                overrides=dict(overrides)))
        for server in self.servers:
            server.boot()
        self._seed_data()

    def _seed_data(self) -> None:
        config = self.config
        payload = config.chaos_payload_bytes
        self.pool_lfns: list[str] = []
        pending: list[tuple[SoakServer, int]] = []
        for index, server in enumerate(self.servers):
            for n in range(config.chaos_lfns_per_server):
                lfn = f"/lfn/soak/pool/{server.name}/{n}.bin"
                server.seed_lfn(lfn, f"/soak/pool/{server.name}/{n}.bin",
                                _payload(lfn, payload))
                self.pool_lfns.append(lfn)
            # Protected LFNs start at exactly local + one remote copy, so a
            # corrupted local replica forces a *visible* heal to a third
            # server.  The remote copy deliberately skips the kill victim.
            partner = self.servers[(index + 2) % len(self.servers)]
            for n in range(config.chaos_protected_lfns):
                lfn = f"/lfn/soak/protected/{server.name}/{n}.bin"
                server.seed_lfn(lfn, f"/soak/protected/{server.name}/{n}.bin",
                                _payload(lfn, payload))
                server.protected_lfns.append(lfn)
                assert server.server is not None
                request = server.server.services["replica"].engine.submit(
                    lfn, partner.name, owner_dn=ADMIN_DN)
                pending.append((server, request.transfer_id))
            server.set_policy(f"/lfn/soak/protected/{server.name}/", 2)
        deadline = time.monotonic() + 15.0
        for server, transfer_id in pending:
            assert server.server is not None
            engine = server.server.services["replica"].engine
            while time.monotonic() < deadline:
                state = engine.get(transfer_id).state
                if state.terminal:
                    if state.value != "done":
                        raise RuntimeError(
                            f"seed replication {transfer_id} on "
                            f"{server.name} ended {state.value}")
                    break
                time.sleep(0.05)
            else:
                raise RuntimeError(f"seed replication {transfer_id} on "
                                   f"{server.name} never finished")

    # -- run -----------------------------------------------------------------
    def run(self) -> tuple[dict[str, Any], bool]:
        """Execute the soak; returns ``(report_entry, all_invariants_ok)``."""

        config = self.config
        try:
            self.setup()
            injector = FaultInjector(self.servers, config, self.seed)
            watchdog = Watchdog(self.servers, injector,
                                calm_credential=self.calm_credential,
                                quiesce_timeout=config.chaos_quiesce_timeout)
            driver = WorkloadDriver(
                self.servers, credential=self.workload_credential,
                mix=config.mix(), seed=self.seed,
                threads=config.chaos_workload_threads,
                pool_lfns=self.pool_lfns,
                payload_bytes=config.chaos_payload_bytes,
                protocol=config.chaos_protocol,
                expect_unavailable=lambda: any(
                    injector.down_window(s.name, time.monotonic())
                    for s in self.servers))
            started = time.monotonic()
            watchdog.start()
            driver.start()
            injector.start(config.chaos_duration)
            time.sleep(config.chaos_duration)
            driver.stop()
            injector.stop()
            elapsed = time.monotonic() - started
            invariants, latency = watchdog.final_checks(driver.stats)
            watchdog.stop()
            snapshot = driver.stats.snapshot()
            entry = build_report(
                seed=self.seed, servers=len(self.servers), duration=elapsed,
                ops=snapshot, faults=injector.fault_counts(),
                invariants=invariants, convergence_latency_s=latency)
            ok = all(v["ok"] for v in invariants.values())
            if not ok:
                entry["soak"]["diagnostics"] = self._failure_diagnostics(
                    watchdog)
            append_report(entry, path=config.chaos_report_path)
            return entry, ok
        finally:
            FAULTS.clear()
            self.teardown()

    def _failure_diagnostics(self, watchdog: Watchdog) -> list[str]:
        """Per-server state of every disputed LFN, for the failure report."""

        lines: list[str] = []
        for lfn in watchdog.disputed_lfns:
            for server in self.servers:
                if not server.alive or server.server is None:
                    lines.append(f"{lfn} @ {server.name}: server down")
                    continue
                replica = server.server.services["replica"]
                try:
                    entry = replica.catalogue.entry(lfn)
                    replicas = {se: rec["state"]
                                for se, rec in entry["replicas"].items()}
                    lines.append(f"{lfn} @ {server.name}: "
                                 f"v{entry['version']} {replicas}")
                except Exception as exc:  # noqa: BLE001 - diagnostics
                    lines.append(f"{lfn} @ {server.name}: no entry ({exc})")
                for request in replica.engine.transfers():
                    if request.lfn == lfn:
                        lines.append(
                            f"{lfn} @ {server.name}: transfer "
                            f"{request.transfer_id} -> {request.dst_se} "
                            f"{request.state.value} attempts="
                            f"{request.attempts} error={request.error!r}")
        return lines

    def teardown(self) -> None:
        for server in self.servers:
            try:
                server.close()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        self.servers = []
        if self._tmp is not None:
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._tmp = None


def _payload(lfn: str, size: int) -> bytes:
    """Deterministic, lfn-unique content (seed-stable across runs)."""

    block = hashlib.sha256(lfn.encode()).digest()
    return (block * (size // len(block) + 1))[:size]
