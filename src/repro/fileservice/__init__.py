"""Remote file access (paper section 2.3).

"In many big-science experiments data is stored in files rather than in
databases" — the file service lets collaborators read, list, checksum and
(where allowed) write files under a *virtual server root*, with per-file and
per-directory ACLs.  Files are served both through RPC methods
(``file.read`` with an offset and byte count) and plain HTTP GET requests
that use the zero-copy sendfile path.
"""

from __future__ import annotations

from repro.fileservice.service import FileService
from repro.fileservice.vfs import VirtualFileSystem, VFSError

__all__ = ["FileService", "VirtualFileSystem", "VFSError"]
