"""The virtual filesystem rooted at the server's configured directory.

"A virtual server root directory can be defined … which may be any directory
on the server system."  The VFS maps client-visible paths (always treated as
absolute within the virtual root) onto the real filesystem, refusing any path
that escapes the root, and implements the primitive operations the file
service methods and the HTTP GET handler are built from.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import shutil
import stat as statmod
from pathlib import Path
from typing import Iterator

__all__ = ["VirtualFileSystem", "VFSError"]


class VFSError(Exception):
    """Raised for invalid paths or filesystem failures inside the VFS."""


class VirtualFileSystem:
    """Path-safe file operations under a single root directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise VFSError(f"virtual root {self.root} is not a directory")

    # -- path handling -----------------------------------------------------------
    def resolve(self, virtual_path: str, *, must_exist: bool = False) -> Path:
        """Map a client path onto a real path, refusing escapes from the root."""

        cleaned = (virtual_path or "/").replace("\\", "/")
        candidate = (self.root / cleaned.lstrip("/")).resolve()
        if candidate != self.root and self.root not in candidate.parents:
            raise VFSError(f"path {virtual_path!r} escapes the virtual root")
        if must_exist and not candidate.exists():
            raise VFSError(f"no such file or directory: {virtual_path}")
        return candidate

    def virtual_path(self, real_path: Path) -> str:
        """The client-visible path for a real path under the root."""

        return "/" + str(real_path.resolve().relative_to(self.root)).replace(os.sep, "/")

    def exists(self, virtual_path: str) -> bool:
        try:
            return self.resolve(virtual_path).exists()
        except VFSError:
            return False

    # -- reading ------------------------------------------------------------------
    def read(self, virtual_path: str, offset: int = 0, length: int = -1) -> bytes:
        """Read up to ``length`` bytes starting at ``offset`` (the file.read semantics)."""

        path = self.resolve(virtual_path, must_exist=True)
        if not path.is_file():
            raise VFSError(f"{virtual_path} is not a regular file")
        if offset < 0:
            raise VFSError("offset must be non-negative")
        size = path.stat().st_size
        if offset > size:
            return b""
        with path.open("rb") as fh:
            fh.seek(offset)
            return fh.read(length if length >= 0 else size - offset)

    def size(self, virtual_path: str) -> int:
        path = self.resolve(virtual_path, must_exist=True)
        return path.stat().st_size

    def listdir(self, virtual_path: str = "/") -> list[dict]:
        """Directory entries with the fields the portal's file browser shows."""

        path = self.resolve(virtual_path, must_exist=True)
        if not path.is_dir():
            raise VFSError(f"{virtual_path} is not a directory")
        entries = []
        for child in sorted(path.iterdir(), key=lambda p: p.name):
            info = child.stat()
            entries.append({
                "name": child.name,
                "path": self.virtual_path(child),
                "type": "directory" if child.is_dir() else "file",
                "size": info.st_size if child.is_file() else 0,
                "mtime": info.st_mtime,
            })
        return entries

    def stat(self, virtual_path: str) -> dict:
        path = self.resolve(virtual_path, must_exist=True)
        info = path.stat()
        return {
            "path": self.virtual_path(path) if path != self.root else "/",
            "type": "directory" if path.is_dir() else "file",
            "size": info.st_size,
            "mtime": info.st_mtime,
            "ctime": info.st_ctime,
            "mode": statmod.filemode(info.st_mode),
        }

    def md5(self, virtual_path: str) -> str:
        """MD5 hex digest of a file ("to obtain a hash file for checking file integrity")."""

        path = self.resolve(virtual_path, must_exist=True)
        if not path.is_file():
            raise VFSError(f"{virtual_path} is not a regular file")
        digest = hashlib.md5()
        with path.open("rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()

    def find(self, pattern: str, virtual_path: str = "/", *, max_results: int = 10_000) -> list[str]:
        """Recursively find entries whose *name* matches a glob pattern."""

        start = self.resolve(virtual_path, must_exist=True)
        matches: list[str] = []
        for real in self._walk(start):
            if fnmatch.fnmatch(real.name, pattern):
                matches.append(self.virtual_path(real))
                if len(matches) >= max_results:
                    break
        return matches

    def _walk(self, start: Path) -> Iterator[Path]:
        for dirpath, dirnames, filenames in os.walk(start):
            base = Path(dirpath)
            for name in sorted(dirnames) + sorted(filenames):
                yield base / name

    # -- writing ---------------------------------------------------------------------
    def write(self, virtual_path: str, data: bytes, *, append: bool = False) -> int:
        path = self.resolve(virtual_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        mode = "ab" if append else "wb"
        with path.open(mode) as fh:
            fh.write(data)
        return len(data)

    def mkdir(self, virtual_path: str) -> str:
        path = self.resolve(virtual_path)
        path.mkdir(parents=True, exist_ok=True)
        return self.virtual_path(path)

    def delete(self, virtual_path: str, *, recursive: bool = False) -> bool:
        path = self.resolve(virtual_path)
        if path == self.root:
            raise VFSError("refusing to delete the virtual root")
        if not path.exists():
            return False
        if path.is_dir():
            if recursive:
                shutil.rmtree(path)
            else:
                try:
                    path.rmdir()
                except OSError as exc:
                    raise VFSError(f"directory not empty: {virtual_path}") from exc
        else:
            path.unlink()
        return True

    def copy(self, src: str, dst: str) -> str:
        src_path = self.resolve(src, must_exist=True)
        dst_path = self.resolve(dst)
        dst_path.parent.mkdir(parents=True, exist_ok=True)
        if src_path.is_dir():
            shutil.copytree(src_path, dst_path, dirs_exist_ok=True)
        else:
            shutil.copy2(src_path, dst_path)
        return self.virtual_path(dst_path)
