"""The ``file`` service.

Implements the methods named in the paper — ``file.read`` (filename, offset,
number of bytes), ``file.ls``, ``file.stat``, ``file.md5``, ``file.find`` —
plus write-side methods (upload, mkdir, delete) used by the shell sandbox and
the job service.  Every operation is subject to the hierarchical file ACLs of
section 2.3 (method ACLs extended with ``read`` and ``write`` fields), and
HTTP GET requests are served through the zero-copy
:class:`~repro.httpd.sendfile.FilePayload` path.
"""

from __future__ import annotations

import mimetypes
from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.acl.model import ACL, FileACL
from repro.fileservice.vfs import VFSError, VirtualFileSystem
from repro.httpd.message import HTTPError, HTTPRequest, HTTPResponse
from repro.httpd.sendfile import FilePayload

__all__ = ["FileService"]


class FileService(ClarensService):
    """Remote file access under the server's virtual root."""

    service_name = "file"

    def __init__(self, server) -> None:
        super().__init__(server)
        self.vfs = VirtualFileSystem(server.file_root)

    # -- ACL helpers -------------------------------------------------------------
    def _check(self, dn: str | None, path: str, operation: str) -> None:
        decision = self.server.acl.check_file(dn or "", path, operation)
        if not decision.allowed:
            raise AccessDeniedError(
                f"{operation} access to {path} denied: {decision.reason}")

    # -- read-side methods ----------------------------------------------------------
    @rpc_method()
    def read(self, ctx: CallContext, filename: str, offset: int = 0,
             nbytes: int = -1) -> bytes:
        """Read ``nbytes`` from ``filename`` starting at ``offset``.

        ``nbytes = -1`` reads to the end of file, capped by the server's
        ``max_read_bytes`` setting.
        """

        self._check(ctx.dn, filename, "read")
        limit = self.server.config.max_read_bytes
        if nbytes < 0 or nbytes > limit:
            nbytes = limit
        try:
            return self.vfs.read(filename, offset, nbytes)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def ls(self, ctx: CallContext, path: str = "/") -> list[dict[str, Any]]:
        """List a directory (name, path, type, size, mtime per entry)."""

        self._check(ctx.dn, path, "read")
        try:
            return self.vfs.listdir(path)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def stat(self, ctx: CallContext, path: str) -> dict[str, Any]:
        """Return file or directory metadata."""

        self._check(ctx.dn, path, "read")
        try:
            return self.vfs.stat(path)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def md5(self, ctx: CallContext, filename: str) -> str:
        """MD5 checksum of a file, for integrity verification after transfer."""

        self._check(ctx.dn, filename, "read")
        try:
            return self.vfs.md5(filename)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def find(self, ctx: CallContext, pattern: str, path: str = "/") -> list[str]:
        """Recursively find entries whose name matches a glob pattern."""

        self._check(ctx.dn, path, "read")
        try:
            return self.vfs.find(pattern, path)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def size(self, ctx: CallContext, filename: str) -> int:
        """Size of a file in bytes."""

        self._check(ctx.dn, filename, "read")
        try:
            return self.vfs.size(filename)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def exists(self, ctx: CallContext, path: str) -> bool:
        """Whether a path exists under the virtual root."""

        self._check(ctx.dn, path, "read")
        return self.vfs.exists(path)

    # -- write-side methods ------------------------------------------------------------
    @rpc_method()
    def write(self, ctx: CallContext, filename: str, data: bytes,
              append: bool = False) -> int:
        """Write (or append) bytes to a file; returns the number written."""

        self._check(ctx.dn, filename, "write")
        try:
            return self.vfs.write(filename, bytes(data), append=bool(append))
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def mkdir(self, ctx: CallContext, path: str) -> str:
        """Create a directory (and parents); returns its virtual path."""

        self._check(ctx.dn, path, "write")
        try:
            return self.vfs.mkdir(path)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def delete(self, ctx: CallContext, path: str, recursive: bool = False) -> bool:
        """Delete a file or directory; returns False when it did not exist."""

        self._check(ctx.dn, path, "write")
        try:
            return self.vfs.delete(path, recursive=bool(recursive))
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    @rpc_method()
    def copy(self, ctx: CallContext, src: str, dst: str) -> str:
        """Copy a file or directory within the virtual root."""

        self._check(ctx.dn, src, "read")
        self._check(ctx.dn, dst, "write")
        try:
            return self.vfs.copy(src, dst)
        except VFSError as exc:
            raise NotFoundError(str(exc)) from exc

    # -- file ACL administration ----------------------------------------------------------
    @rpc_method()
    def set_acl(self, ctx: CallContext, path: str, read_acl: dict, write_acl: dict) -> bool:
        """Attach a read/write ACL to a path (ACL managers only)."""

        dn = ctx.require_dn()
        file_acl = FileACL(read=ACL.from_record(read_acl), write=ACL.from_record(write_acl))
        self.server.acl.set_file_acl(path, file_acl, actor_dn=dn)
        return True

    @rpc_method()
    def get_acl(self, ctx: CallContext, path: str) -> dict:
        """Return the ACL attached directly to ``path`` (empty dict when none)."""

        self._check(ctx.dn, path, "read")
        file_acl = self.server.acl.get_file_acl(path)
        return file_acl.to_record() if file_acl is not None else {}

    # -- HTTP GET (the sendfile path) --------------------------------------------------------
    @staticmethod
    def _range_params(request: HTTPRequest) -> tuple[int, int]:
        """Validated ``offset``/``length`` query params (400 on bad input)."""

        try:
            offset = int(request.query.get("offset", "0"))
            length = int(request.query.get("length", "-1"))
        except ValueError as exc:
            raise HTTPError(400, f"invalid offset/length: {exc}") from exc
        if offset < 0:
            raise HTTPError(400, "offset must be non-negative")
        return offset, length

    def handle_get(self, request: HTTPRequest, remainder: str) -> HTTPResponse:
        """Serve ``GET <prefix>/file/<path>`` with a zero-copy file payload.

        ``GET <prefix>/file/.lfn/<logical name>`` resolves through the
        replica broker instead: the best replica is selected (local element
        first), local copies are still served zero-copy, and a failing
        replica fails over to the next one transparently.

        GET errors come back as XML error documents, as the paper describes.
        """

        dn = request.client_dn or request.headers.get("X-Clarens-DN")
        session_id = request.headers.get("X-Clarens-Session")
        if session_id:
            session = self.server.sessions.get(session_id)
            if session is not None and not session.is_expired():
                dn = session.dn
        if remainder.startswith(".lfn/"):
            return self._handle_get_lfn(request, dn,
                                        "/" + remainder[len(".lfn/"):])
        virtual = "/" + remainder
        decision = self.server.acl.check_file(dn or "", virtual, "read")
        if not decision.allowed:
            raise HTTPError(403, f"read access to {virtual} denied")
        try:
            real = self.vfs.resolve(virtual, must_exist=True)
        except VFSError as exc:
            raise HTTPError(404, str(exc)) from exc
        if real.is_dir():
            listing = self.vfs.listdir(virtual)
            body = "\n".join(entry["path"] for entry in listing).encode() + b"\n"
            return HTTPResponse.ok(body, content_type="text/plain")

        offset, length = self._range_params(request)
        content_type = mimetypes.guess_type(real.name)[0] or "application/octet-stream"
        try:
            payload = FilePayload(str(real), offset=offset, length=length)
        except (ValueError, FileNotFoundError) as exc:
            raise HTTPError(400, str(exc)) from exc
        return HTTPResponse.ok(payload, content_type=content_type,
                               extra_headers={"X-Clarens-File": virtual})

    def _handle_get_lfn(self, request: HTTPRequest, dn: str | None,
                        lfn: str) -> HTTPResponse:
        """Serve a logical file name through the replica broker."""

        from repro.replica.model import ReplicaError
        from repro.replica.storage import VFSStorageElement

        broker = self.server.replica_broker
        if broker is None:
            raise HTTPError(404, "the replica service is not enabled on this server")
        decision = self.server.acl.check_file(dn or "", lfn, "read")
        if not decision.allowed:
            raise HTTPError(403, f"read access to {lfn} denied")
        offset, length = self._range_params(request)
        # A ``hop`` marker means a peer server is already proxying this read
        # on a caller's behalf: serve it from directly-reachable elements only.
        # Without the guard, servers with stale catalogue views can proxy a
        # read around the fleet in a cycle, and on bounded request executors
        # that circular wait deadlocks every server until client timeouts
        # unwind it (observed as a fleet-wide outage in the async soak).
        proxy = "hop" not in request.query
        try:
            replica, element = broker.resolve(lfn, proxy=proxy)
        except ReplicaError as exc:
            raise HTTPError(404, str(exc)) from exc
        if isinstance(element, VFSStorageElement):
            # A local (or VFS-reachable) replica keeps the zero-copy path.
            try:
                real = element.vfs.resolve(replica.pfn, must_exist=True)
                payload = FilePayload(str(real), offset=offset, length=length)
            except Exception:
                payload = None              # fall through to the broker read
            if payload is not None:
                content_type = (mimetypes.guess_type(real.name)[0]
                                or "application/octet-stream")
                return HTTPResponse.ok(
                    payload, content_type=content_type,
                    extra_headers={"X-Clarens-LFN": lfn,
                                   "X-Clarens-Replica": element.name})
        # Non-VFS replicas are buffered in memory, so unlike the streaming
        # zero-copy branch this path enforces the server's read cap.
        try:
            size = int(broker.catalogue.entry(lfn)["size"])
        except ReplicaError as exc:
            raise HTTPError(404, str(exc)) from exc
        remaining = max(0, size - offset)
        wanted = remaining if length < 0 else min(length, remaining)
        limit = self.server.config.max_read_bytes
        if wanted > limit:
            raise HTTPError(
                413, f"a {wanted}-byte buffered read of {lfn} exceeds the "
                     f"{limit}-byte limit; request explicit offset/length "
                     f"ranges (or read through a server holding a local "
                     f"replica, which streams)")
        try:
            data = broker.read(lfn, offset, wanted, proxy=proxy)
        except ReplicaError as exc:
            raise HTTPError(404, str(exc)) from exc
        return HTTPResponse.ok(data, content_type="application/octet-stream",
                               extra_headers={"X-Clarens-LFN": lfn})
