"""Station servers.

"Clarens servers can publish service information using a UDP-based
application to so called station servers that in turn republish it to the
MonALISA network."  A :class:`StationServer` accepts publications from local
services (possibly lossy, as UDP would be), folds metric updates into its
GLUE view of the local site, and republishes everything onto the monitoring
bus under the ``monalisa.<station>`` topic hierarchy.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from repro.monitoring.bus import MessageBus
from repro.monitoring.glue import GlueSchema

__all__ = ["StationServer"]


class StationServer:
    """One MonALISA station server responsible for a site."""

    def __init__(self, name: str, bus: MessageBus, *, site_name: str | None = None) -> None:
        self.name = name
        self.site_name = site_name or name
        self.bus = bus
        self.schema = GlueSchema()
        self._lock = threading.Lock()
        self.publications_received = 0
        self.service_publications = 0

    # -- ingest from local services -----------------------------------------------
    def receive_metric(self, farm: str, node: str, key: str, value: float, *,
                       reliable: bool = False) -> None:
        """Receive one metric sample from a local node (UDP-like by default)."""

        with self._lock:
            self.schema.record_metric(self.site_name, farm, node, key, value)
            self.publications_received += 1
        self.bus.publish(
            f"monalisa.{self.name}.metric",
            {"site": self.site_name, "farm": farm, "node": node, "key": key, "value": value},
            source=self.name, reliable=reliable,
        )

    def receive_service_info(self, descriptor: Mapping[str, Any], *,
                             reliable: bool = False) -> None:
        """Receive a Clarens service descriptor and republish it to the network."""

        record = dict(descriptor)
        record.setdefault("published_at", time.time())
        record["station"] = self.name
        record["site"] = self.site_name
        with self._lock:
            site = self.schema.site(self.site_name)
            # Replace any previous descriptor for the same service name.
            site.services = [s for s in site.services if s.get("name") != record.get("name")]
            site.services.append(record)
            self.publications_received += 1
            self.service_publications += 1
        self.bus.publish(f"monalisa.{self.name}.service", record,
                         source=self.name, reliable=reliable)

    # -- views -------------------------------------------------------------------------
    def site_snapshot(self) -> dict:
        with self._lock:
            return self.schema.site(self.site_name).to_record()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "publications_received": self.publications_received,
                "service_publications": self.service_publications,
                "nodes": self.schema.node_count(),
            }
