"""A JINI-like lookup service with leases.

MonALISA's discovery layer is built on JINI: services register with a lookup
service under a lease which they must renew, and clients query the lookup
service by attribute matching.  The Clarens discovery server "becomes a fully
fledged JINI client, aggregating discovery information from the JINI
network".  This module provides the lease/lookup behaviour the discovery
registry builds on.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Lease", "LookupService"]

DEFAULT_LEASE_SECONDS = 120.0


@dataclass
class Lease:
    """A registration lease."""

    lease_id: int
    entry_id: str
    granted: float
    duration: float

    @property
    def expires(self) -> float:
        return self.granted + self.duration

    def is_expired(self, when: float | None = None) -> bool:
        when = time.time() if when is None else when
        return when > self.expires


@dataclass
class _Entry:
    entry_id: str
    attributes: dict[str, Any]
    lease: Lease
    registered: float = field(default_factory=time.time)


class LookupService:
    """Attribute-matching registration/lookup with lease expiry."""

    def __init__(self, *, default_lease: float = DEFAULT_LEASE_SECONDS) -> None:
        self.default_lease = default_lease
        self._entries: dict[str, _Entry] = {}
        self._lease_counter = itertools.count(1)
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------------
    def register(self, entry_id: str, attributes: Mapping[str, Any], *,
                 lease_seconds: float | None = None) -> Lease:
        """Register (or refresh) an entry; returns its lease."""

        duration = lease_seconds if lease_seconds is not None else self.default_lease
        with self._lock:
            lease = Lease(lease_id=next(self._lease_counter), entry_id=entry_id,
                          granted=time.time(), duration=duration)
            self._entries[entry_id] = _Entry(entry_id=entry_id,
                                             attributes=dict(attributes), lease=lease)
            return lease

    def renew(self, entry_id: str, *, lease_seconds: float | None = None) -> Lease | None:
        """Renew an entry's lease; returns None when the entry is unknown."""

        with self._lock:
            entry = self._entries.get(entry_id)
            if entry is None:
                return None
            duration = lease_seconds if lease_seconds is not None else entry.lease.duration
            entry.lease = Lease(lease_id=next(self._lease_counter), entry_id=entry_id,
                                granted=time.time(), duration=duration)
            return entry.lease

    def cancel(self, entry_id: str) -> bool:
        with self._lock:
            return self._entries.pop(entry_id, None) is not None

    # -- queries --------------------------------------------------------------------
    def _purge_locked(self, now: float) -> None:
        expired = [eid for eid, entry in self._entries.items() if entry.lease.is_expired(now)]
        for eid in expired:
            del self._entries[eid]

    def purge_expired(self) -> int:
        with self._lock:
            before = len(self._entries)
            self._purge_locked(time.time())
            return before - len(self._entries)

    def get(self, entry_id: str) -> dict[str, Any] | None:
        with self._lock:
            self._purge_locked(time.time())
            entry = self._entries.get(entry_id)
            return dict(entry.attributes) if entry is not None else None

    def match(self, **criteria: Any) -> list[dict[str, Any]]:
        """Entries whose attributes equal every criterion (empty criteria = all)."""

        with self._lock:
            self._purge_locked(time.time())
            results = []
            for entry in self._entries.values():
                if all(entry.attributes.get(k) == v for k, v in criteria.items()):
                    record = dict(entry.attributes)
                    record["_entry_id"] = entry.entry_id
                    record["_lease_expires"] = entry.lease.expires
                    results.append(record)
            return results

    def entry_count(self) -> int:
        with self._lock:
            self._purge_locked(time.time())
            return len(self._entries)
