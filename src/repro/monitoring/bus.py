"""An in-process publish/subscribe message bus.

Stands in for the UDP + JINI transport of the MonALISA network.  Topics are
dotted strings; subscribers register a callback for a topic prefix.  Delivery
is synchronous by default (deterministic for tests) with an optional loss
probability to model the UDP publications the paper mentions ("Clarens
servers can publish service information using a UDP-based application").
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Message", "MessageBus", "Subscription"]

Callback = Callable[["Message"], None]


@dataclass(frozen=True)
class Message:
    """One published message."""

    topic: str
    payload: dict[str, Any]
    timestamp: float
    source: str = ""


@dataclass
class Subscription:
    """A registered subscriber."""

    topic_prefix: str
    callback: Callback
    id: int = 0
    delivered: int = field(default=0)

    def matches(self, topic: str) -> bool:
        return topic == self.topic_prefix or topic.startswith(self.topic_prefix + ".") \
            or self.topic_prefix == "*"


class MessageBus:
    """Topic-based pub/sub with optional lossy delivery."""

    def __init__(self, *, loss_probability: float = 0.0,
                 rng: random.Random | None = None) -> None:
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")
        self.loss_probability = loss_probability
        self._rng = rng or random.Random()
        self._subs: dict[int, Subscription] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self.published = 0
        self.delivered = 0
        self.dropped = 0

    # -- subscription -------------------------------------------------------------
    def subscribe(self, topic_prefix: str, callback: Callback) -> int:
        """Register a callback for a topic prefix; returns a subscription id."""

        with self._lock:
            sub_id = self._next_id
            self._next_id += 1
            self._subs[sub_id] = Subscription(topic_prefix=topic_prefix,
                                              callback=callback, id=sub_id)
            return sub_id

    def unsubscribe(self, sub_id: int) -> bool:
        with self._lock:
            return self._subs.pop(sub_id, None) is not None

    def subscriptions(self) -> list[Subscription]:
        with self._lock:
            return list(self._subs.values())

    # -- publication ----------------------------------------------------------------
    def publish(self, topic: str, payload: dict[str, Any], *, source: str = "",
                reliable: bool = True) -> Message:
        """Publish a message; unreliable publications may be dropped."""

        message = Message(topic=topic, payload=dict(payload),
                          timestamp=time.time(), source=source)
        with self._lock:
            subscribers = [s for s in self._subs.values() if s.matches(topic)]
            self.published += 1
        for sub in subscribers:
            if not reliable and self.loss_probability and self._rng.random() < self.loss_probability:
                with self._lock:
                    self.dropped += 1
                continue
            sub.callback(message)
            sub.delivered += 1
            with self._lock:
                self.delivered += 1
        return message

    # -- introspection -----------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "published": self.published,
                "delivered": self.delivered,
                "dropped": self.dropped,
                "subscriptions": len(self._subs),
            }
