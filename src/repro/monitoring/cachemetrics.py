"""Publishing cache statistics onto the monitoring network.

The caches introduced by :mod:`repro.cache` sit on the paper's measured hot
path (the per-request session and ACL checks), so their hit rates belong on
the same monitoring substrate as every other server metric.  A
:class:`CacheStatsReporter` snapshots a :class:`~repro.cache.core.CacheRegistry`
and republishes each cache's counters:

* onto a :class:`~repro.monitoring.bus.MessageBus` under
  ``cache.stats.<cache name>`` (plus ``cache.stats.totals``), or
* into a :class:`~repro.monitoring.station.StationServer` as per-node metric
  samples, so cache behaviour shows up in the GLUE site view alongside CPU
  and network numbers, or
* into a :class:`~repro.telemetry.metrics.MetricsRegistry`
  (:meth:`CacheStatsReporter.publish_to_registry`) for deployments that
  scrape ``GET /metrics`` instead of running a reporter loop.

On a ``telemetry_enabled`` server the bus/station plumbing here is
superseded by the registry's scrape-time collectors (see
:func:`repro.telemetry.bridge.register_server_collectors`), which sample
the same :meth:`~repro.cache.core.CacheRegistry.stats_snapshot` lazily; the
reporter remains for paper-mode deployments and the station integration.
"""

from __future__ import annotations

from repro.cache.core import CacheRegistry
from repro.monitoring.bus import MessageBus
from repro.monitoring.station import StationServer

__all__ = ["CacheStatsReporter"]

#: The numeric stats folded into station-server metric samples.
_METRIC_KEYS = ("hits", "misses", "evictions", "expirations", "invalidations",
                "size", "hit_rate")


class CacheStatsReporter:
    """Snapshots a cache registry and republishes it for monitoring."""

    def __init__(self, registry: CacheRegistry, *, source: str = "",
                 topic_prefix: str = "cache.stats") -> None:
        self.registry = registry
        self.source = source
        self.topic_prefix = topic_prefix
        self.publications = 0

    def snapshot(self) -> dict:
        return self.registry.stats_snapshot()

    def publish(self, bus: MessageBus, *, reliable: bool = True) -> int:
        """Publish one message per cache plus the totals; returns the count."""

        snapshot = self.snapshot()
        count = 0
        for name, stats in snapshot["caches"].items():
            bus.publish(f"{self.topic_prefix}.{name}", stats,
                        source=self.source, reliable=reliable)
            count += 1
        bus.publish(f"{self.topic_prefix}.totals", snapshot["totals"],
                    source=self.source, reliable=reliable)
        self.publications += 1
        return count + 1

    def publish_to_station(self, station: StationServer, *,
                           farm: str = "caches") -> int:
        """Fold cache counters into a station server's GLUE view.

        Each cache becomes one node in ``farm``; returns how many metric
        samples were delivered.
        """

        snapshot = self.snapshot()
        samples = 0
        for name, stats in snapshot["caches"].items():
            for key in _METRIC_KEYS:
                if key in stats and stats[key] is not None:
                    station.receive_metric(farm, name, f"cache_{key}",
                                           float(stats[key]), reliable=True)
                    samples += 1
        return samples

    def publish_to_registry(self, registry) -> bool:
        """Wire this reporter's cache registry into a telemetry registry.

        Registers the same scrape-time collectors a telemetry-enabled server
        uses (``clarens_cache_operations_total`` / ``clarens_cache_size``),
        so tools holding a bare
        :class:`~repro.telemetry.metrics.MetricsRegistry` see live counters
        on every scrape rather than a one-shot push.  Idempotent: returns
        whether this call did the wiring (False when the families already
        exist — e.g. on a server whose telemetry attached first).

        .. deprecated:: the old behaviour wrote a ``clarens_cache_stat``
           push gauge; that family is gone — scrape-time sampling replaces
           it everywhere.
        """

        from repro.telemetry.bridge import register_cache_collectors

        return register_cache_collectors(self.registry, registry)
