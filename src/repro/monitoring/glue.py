"""GLUE-like schema for monitoring data.

"Information provided to MonALISA is usually arranged roughly as described by
the so-called GLUE schema, as a hierarchy of servers, farms, nodes and
key/numerical value pairs."  This module models that hierarchy — sites
containing farms containing nodes, each node carrying metric key/value pairs —
plus a synthetic generator used by the discovery-scale benchmark to stand in
for the 90+ real sites MonALISA was monitoring in 2005.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Node", "Farm", "Site", "GlueSchema", "generate_synthetic_grid"]


@dataclass
class Node:
    """A compute node and its latest metric values."""

    name: str
    metrics: dict[str, float] = field(default_factory=dict)
    updated: float = field(default_factory=time.time)

    def update(self, key: str, value: float) -> None:
        self.metrics[key] = float(value)
        self.updated = time.time()

    def to_record(self) -> dict:
        return {"name": self.name, "metrics": dict(self.metrics), "updated": self.updated}


@dataclass
class Farm:
    """A computing farm: a named collection of nodes."""

    name: str
    nodes: dict[str, Node] = field(default_factory=dict)

    def node(self, name: str) -> Node:
        if name not in self.nodes:
            self.nodes[name] = Node(name=name)
        return self.nodes[name]

    def total_metric(self, key: str) -> float:
        return sum(node.metrics.get(key, 0.0) for node in self.nodes.values())

    def to_record(self) -> dict:
        return {"name": self.name, "nodes": [n.to_record() for n in self.nodes.values()]}


@dataclass
class Site:
    """A grid site: farms plus site-level attributes (location, contact)."""

    name: str
    farms: dict[str, Farm] = field(default_factory=dict)
    attributes: dict[str, str] = field(default_factory=dict)
    services: list[dict] = field(default_factory=list)

    def farm(self, name: str) -> Farm:
        if name not in self.farms:
            self.farms[name] = Farm(name=name)
        return self.farms[name]

    def node_count(self) -> int:
        return sum(len(f.nodes) for f in self.farms.values())

    def to_record(self) -> dict:
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "farms": [f.to_record() for f in self.farms.values()],
            "services": list(self.services),
        }


class GlueSchema:
    """The full monitored hierarchy: a set of sites."""

    def __init__(self) -> None:
        self.sites: dict[str, Site] = {}

    def site(self, name: str) -> Site:
        if name not in self.sites:
            self.sites[name] = Site(name=name)
        return self.sites[name]

    def iter_nodes(self) -> Iterator[tuple[str, str, Node]]:
        for site in self.sites.values():
            for farm in site.farms.values():
                for node in farm.nodes.values():
                    yield site.name, farm.name, node

    def record_metric(self, site: str, farm: str, node: str, key: str, value: float) -> None:
        self.site(site).farm(farm).node(node).update(key, value)

    def site_count(self) -> int:
        return len(self.sites)

    def node_count(self) -> int:
        return sum(site.node_count() for site in self.sites.values())

    def to_record(self) -> dict:
        return {"sites": [s.to_record() for s in self.sites.values()]}


#: Metric names published by 2005-era MonALISA farm modules.
_DEFAULT_METRICS = ("cpu_usage", "load1", "mem_used_mb", "disk_free_gb",
                    "net_in_mbps", "net_out_mbps")


def generate_synthetic_grid(n_sites: int, *, farms_per_site: int = 2,
                            nodes_per_farm: int = 25,
                            rng: random.Random | None = None) -> GlueSchema:
    """Generate a synthetic grid hierarchy of the scale MonALISA monitored.

    The paper's deployment monitored "more than 90 sites … from 1 PC to dozens
    of computing farms with 100s of compute nodes"; this generator produces a
    comparable synthetic population for the discovery benchmarks.
    """

    rng = rng or random.Random(2005)
    schema = GlueSchema()
    regions = ("us", "eu", "asia", "sa")
    for i in range(n_sites):
        region = regions[i % len(regions)]
        site = schema.site(f"{region}-site-{i:03d}")
        site.attributes.update({
            "region": region,
            "vo": rng.choice(["cms", "atlas", "ligo", "sdss"]),
            "contact": f"admin@site{i:03d}.example.org",
        })
        for f in range(max(1, int(rng.gauss(farms_per_site, 1)))):
            farm = site.farm(f"farm-{f}")
            for n in range(max(1, int(rng.gauss(nodes_per_farm, nodes_per_farm / 3)))):
                node = farm.node(f"node-{n:03d}")
                for metric in _DEFAULT_METRICS:
                    node.update(metric, round(rng.uniform(0, 100), 2))
    return schema
