"""MonALISA-style monitoring substrate (paper section 2.4).

The real deployment used the MonALISA framework — a network of JINI-based
station servers monitoring "more than 90 sites", arranged according to the
GLUE schema as a hierarchy of servers, farms, nodes and key/value pairs —
as the transport for Clarens service discovery: Clarens servers publish
service information via UDP to station servers, which republish it to the
MonALISA network, and discovery servers aggregate it.

This package is the in-process equivalent:

* :mod:`repro.monitoring.bus`      -- a publish/subscribe message bus (the
  "network"), with per-topic subscriptions and optional lossy (UDP-like)
  delivery.
* :mod:`repro.monitoring.glue`     -- the GLUE-like schema: sites, farms,
  nodes, and metric key/value pairs.
* :mod:`repro.monitoring.station`  -- station servers that receive
  publications from services and republish them onto the bus.
* :mod:`repro.monitoring.monalisa` -- the aggregating repository that
  discovery servers query (the JINI lookup role).
* :mod:`repro.monitoring.lookup`   -- a JINI-like lookup/lease service.
* :mod:`repro.monitoring.cachemetrics` -- republishes :mod:`repro.cache`
  statistics (the hot-path caches) onto the bus / station servers.
"""

from __future__ import annotations

from repro.monitoring.bus import MessageBus
from repro.monitoring.cachemetrics import CacheStatsReporter
from repro.monitoring.glue import Farm, GlueSchema, Node, Site
from repro.monitoring.lookup import Lease, LookupService
from repro.monitoring.monalisa import MonALISARepository
from repro.monitoring.station import StationServer

__all__ = [
    "MessageBus",
    "GlueSchema",
    "Site",
    "Farm",
    "Node",
    "StationServer",
    "MonALISARepository",
    "LookupService",
    "Lease",
    "CacheStatsReporter",
]
