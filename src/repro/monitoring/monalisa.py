"""The MonALISA repository: the aggregating view of the monitoring network.

A :class:`MonALISARepository` subscribes to every ``monalisa.*`` topic on the
bus, maintains the global GLUE hierarchy (sites/farms/nodes/metrics) and the
set of published service descriptors, and exposes the query interface the
Clarens discovery server uses ("the JClarens server … aggregat[es] discovery
information from the JINI network [and] is consequently able to respond to
service searches far more rapidly by using the local database").
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.monitoring.bus import Message, MessageBus
from repro.monitoring.glue import GlueSchema
from repro.monitoring.lookup import LookupService

__all__ = ["MonALISARepository"]


class MonALISARepository:
    """Aggregates monitoring and service-discovery information from the bus."""

    def __init__(self, bus: MessageBus, *, service_lease_seconds: float = 300.0) -> None:
        self.bus = bus
        self.schema = GlueSchema()
        self.lookup = LookupService(default_lease=service_lease_seconds)
        self._lock = threading.Lock()
        self.metric_updates = 0
        self._subscription = bus.subscribe("monalisa", self._on_message)

    # -- bus ingestion -------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        if message.topic.endswith(".metric"):
            payload = message.payload
            with self._lock:
                self.schema.record_metric(payload["site"], payload["farm"],
                                          payload["node"], payload["key"],
                                          payload["value"])
                self.metric_updates += 1
        elif message.topic.endswith(".service"):
            descriptor = dict(message.payload)
            name = descriptor.get("name", "")
            url = descriptor.get("url", "")
            entry_id = f"{name}@{url}" if url else name
            # Service attributes (VO, tier, region, ...) are promoted to the
            # top level so lookup criteria can match them directly.
            attributes = descriptor.get("attributes")
            if isinstance(attributes, dict):
                descriptor = {**attributes, **descriptor}
            self.lookup.register(entry_id, descriptor)

    # -- queries -----------------------------------------------------------------------
    def find_services(self, **criteria: Any) -> list[dict[str, Any]]:
        """Service descriptors whose attributes match every criterion."""

        return self.lookup.match(**criteria)

    def find_services_by_module(self, module: str) -> list[dict[str, Any]]:
        """Descriptors of servers that publish a given service module (e.g. ``file``)."""

        return [d for d in self.lookup.match() if module in d.get("services", [])]

    def service_count(self) -> int:
        return self.lookup.entry_count()

    def sites(self) -> list[str]:
        with self._lock:
            return sorted(self.schema.sites)

    def site_metrics(self, site: str, key: str) -> float:
        """Sum of a metric over every node of a site (0.0 for unknown sites)."""

        with self._lock:
            if site not in self.schema.sites:
                return 0.0
            return sum(farm.total_metric(key) for farm in self.schema.sites[site].farms.values())

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "sites": self.schema.site_count(),
                "nodes": self.schema.node_count(),
                "metric_updates": self.metric_updates,
                "services": self.lookup.entry_count(),
                "generated_at": time.time(),
            }

    # -- telemetry export --------------------------------------------------------------
    def export_to_registry(self, registry) -> bool:
        """Expose this repository's aggregate view on a telemetry registry.

        Registers scrape-time callbacks (``clarens_monalisa_*``) sampling
        :meth:`snapshot` and the per-site node counts, so the aggregator's
        health shows up on ``GET /metrics`` beside the server's own series.
        Idempotent: returns whether this call registered the families.
        """

        def totals():
            snap = self.snapshot()
            return [({"kind": "sites"}, snap["sites"]),
                    ({"kind": "nodes"}, snap["nodes"]),
                    ({"kind": "services"}, snap["services"])]

        def updates():
            return [({}, self.snapshot()["metric_updates"])]

        try:
            registry.register_callback(
                "clarens_monalisa_entities",
                "Aggregated GLUE entities and service descriptors by kind.",
                "gauge", totals)
        except ValueError:
            return False
        registry.register_callback(
            "clarens_monalisa_metric_updates_total",
            "Metric samples ingested from the monitoring bus.",
            "counter", updates)
        return True

    # -- lifecycle -------------------------------------------------------------------------
    def close(self) -> None:
        self.bus.unsubscribe(self._subscription)
