"""Portal components.

Each component produces one self-contained HTML page whose embedded
JavaScript drives the corresponding Clarens services over JSON-RPC —
"JavaScript components that execute Web Service calls to Web Services".  The
shared JavaScript runtime (``clarens_rpc``) posts to the server's RPC
endpoint with the session id stored in ``localStorage``, mirroring the
original browser client's cookie handling.
"""

from __future__ import annotations

from typing import Mapping

from repro.portal.templates import render_template

__all__ = [
    "PortalComponent",
    "FileBrowserComponent",
    "VOManagerComponent",
    "ACLManagerComponent",
    "DiscoveryComponent",
    "JobSubmissionComponent",
]

#: Shared JavaScript: a tiny JSON-RPC client plus session handling.
CLARENS_JS_RUNTIME = """
var clarens = {
  endpoint: "{{ rpc_path }}",
  sessionId: window.localStorage ? localStorage.getItem("clarens_session") : null,
  call: function (method, params, onResult, onError) {
    var xhr = new XMLHttpRequest();
    xhr.open("POST", this.endpoint, true);
    xhr.setRequestHeader("Content-Type", "application/json");
    if (this.sessionId) {
      xhr.setRequestHeader("X-Clarens-Session", this.sessionId);
    }
    xhr.onreadystatechange = function () {
      if (xhr.readyState !== 4) { return; }
      var payload = JSON.parse(xhr.responseText || "{}");
      if (payload.error) { (onError || console.error)(payload.error); }
      else { onResult(payload.result); }
    };
    xhr.send(JSON.stringify({jsonrpc: "2.0", id: 1, method: method, params: params || []}));
  },
  setSession: function (sessionId) {
    this.sessionId = sessionId;
    if (window.localStorage) { localStorage.setItem("clarens_session", sessionId); }
  }
};
"""

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
  <meta charset="utf-8">
  <title>Clarens portal &mdash; {{ title }}</title>
  <style>
    body { font-family: sans-serif; margin: 2em; }
    h1 { color: #223a63; }
    table { border-collapse: collapse; }
    td, th { border: 1px solid #aab; padding: 4px 8px; }
    #status { color: #666; font-size: 90%; }
    nav a { margin-right: 1em; }
  </style>
  <script>
  {{ runtime }}
  </script>
</head>
<body>
  <h1>{{ title }}</h1>
  <nav>
    {% for link in nav_links %}<a href="{{ link }}">{{ link }}</a>{% endfor %}
  </nav>
  <div id="status">server: {{ server_name }} &middot; endpoint: {{ rpc_path }}</div>
  {{ body }}
  <script>
  {{ script }}
  </script>
</body>
</html>
"""


class PortalComponent:
    """Base class: a titled page with a body and a driving script.

    ``title`` and ``slug`` are class-level attributes overridden by each
    component; ``rpc_path`` and ``server_name`` are per-instance deployment
    parameters.
    """

    title: str = "Clarens"
    slug: str = "index"

    def __init__(self, rpc_path: str = "/clarens/rpc", server_name: str = "clarens") -> None:
        self.rpc_path = rpc_path
        self.server_name = server_name

    def body_html(self) -> str:
        return "<p>Welcome to the Clarens grid portal.</p>"

    def script_js(self) -> str:
        return ""

    def render(self, nav_links: Mapping[str, str] | list[str] | None = None) -> str:
        runtime = render_template(CLARENS_JS_RUNTIME, {"rpc_path": self.rpc_path})
        return render_template(_PAGE_TEMPLATE, {
            "title": self.title,
            "runtime": runtime,
            "body": self.body_html(),
            "script": self.script_js(),
            "rpc_path": self.rpc_path,
            "server_name": self.server_name,
            "nav_links": list(nav_links or []),
        })


class FileBrowserComponent(PortalComponent):
    """Remote file browsing "with a look and feel similar to conventional file browsers"."""

    title = "Remote files"
    slug = "files"

    def body_html(self) -> str:
        return (
            '<div><input id="path" value="/" size="60">'
            '<button onclick="browse()">Browse</button></div>'
            '<table id="listing"><tr><th>Name</th><th>Type</th><th>Size</th></tr></table>'
        )

    def script_js(self) -> str:
        return """
function browse() {
  var path = document.getElementById("path").value;
  clarens.call("file.ls", [path], function (entries) {
    var table = document.getElementById("listing");
    table.innerHTML = "<tr><th>Name</th><th>Type</th><th>Size</th></tr>";
    entries.forEach(function (entry) {
      var row = table.insertRow(-1);
      row.insertCell(0).textContent = entry.name;
      row.insertCell(1).textContent = entry.type;
      row.insertCell(2).textContent = entry.size;
    });
  });
}
"""


class VOManagerComponent(PortalComponent):
    """Virtual-organization management."""

    title = "Virtual organizations"
    slug = "vo"

    def body_html(self) -> str:
        return (
            '<div><button onclick="loadGroups()">Refresh groups</button></div>'
            '<ul id="groups"></ul>'
            '<div><input id="newgroup" placeholder="group name">'
            '<button onclick="createGroup()">Create group</button></div>'
        )

    def script_js(self) -> str:
        return """
function loadGroups() {
  clarens.call("vo.list_groups", [""], function (groups) {
    var list = document.getElementById("groups");
    list.innerHTML = "";
    groups.forEach(function (name) {
      var item = document.createElement("li");
      item.textContent = name;
      list.appendChild(item);
    });
  });
}
function createGroup() {
  var name = document.getElementById("newgroup").value;
  clarens.call("vo.create_group", [name, [], [], ""], loadGroups);
}
"""


class ACLManagerComponent(PortalComponent):
    """Access-control management."""

    title = "Access control"
    slug = "acl"

    def body_html(self) -> str:
        return (
            '<div><input id="method" placeholder="method (e.g. file.read)">'
            '<button onclick="checkAccess()">Check my access</button></div>'
            '<pre id="result"></pre>'
        )

    def script_js(self) -> str:
        return """
function checkAccess() {
  var method = document.getElementById("method").value;
  clarens.call("acl.check_method", [method, ""], function (decision) {
    document.getElementById("result").textContent = JSON.stringify(decision, null, 2);
  });
}
"""


class DiscoveryComponent(PortalComponent):
    """Service discovery browsing: query servers and navigate to them."""

    title = "Service discovery"
    slug = "discovery"

    def body_html(self) -> str:
        return (
            '<div><input id="module" placeholder="service module (e.g. file)">'
            '<button onclick="findServers()">Find servers</button></div>'
            '<table id="servers"><tr><th>Name</th><th>URL</th><th>Services</th></tr></table>'
        )

    def script_js(self) -> str:
        return """
function findServers() {
  var module = document.getElementById("module").value;
  clarens.call("discovery.find", ["", module, "", ""], function (servers) {
    var table = document.getElementById("servers");
    table.innerHTML = "<tr><th>Name</th><th>URL</th><th>Services</th></tr>";
    servers.forEach(function (server) {
      var row = table.insertRow(-1);
      row.insertCell(0).textContent = server.name;
      row.insertCell(1).textContent = server.url;
      row.insertCell(2).textContent = server.services.join(", ");
    });
  });
}
"""


class JobSubmissionComponent(PortalComponent):
    """Job submission and monitoring."""

    title = "Job submission"
    slug = "jobs"

    def body_html(self) -> str:
        return (
            '<div><input id="command" size="60" placeholder="command to run in your sandbox">'
            '<button onclick="submitJob()">Submit</button>'
            '<button onclick="listJobs()">Refresh</button></div>'
            '<table id="jobs"><tr><th>Id</th><th>Name</th><th>State</th></tr></table>'
        )

    def script_js(self) -> str:
        return """
function submitJob() {
  var command = document.getElementById("command").value;
  clarens.call("job.submit", [command, "portal job", {}], listJobs);
}
function listJobs() {
  clarens.call("job.list", [""], function (jobs) {
    var table = document.getElementById("jobs");
    table.innerHTML = "<tr><th>Id</th><th>Name</th><th>State</th></tr>";
    jobs.forEach(function (job) {
      var row = table.insertRow(-1);
      row.insertCell(0).textContent = job.job_id;
      row.insertCell(1).textContent = job.name;
      row.insertCell(2).textContent = job.state;
    });
  });
}
"""
