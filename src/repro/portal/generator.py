"""Portal page generation.

:class:`PortalGenerator` writes the static portal — an index page plus one
page per component — into an output directory.  Pointing the output directory
inside the server's file root makes the portal reachable through the file
service's GET handler, which is how the original served its pages ("Clarens
is able to serve web pages in response to HTTP GET requests").
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.portal.components import (
    ACLManagerComponent,
    DiscoveryComponent,
    FileBrowserComponent,
    JobSubmissionComponent,
    PortalComponent,
    VOManagerComponent,
)
from repro.portal.templates import render_template

__all__ = ["PortalGenerator", "DEFAULT_COMPONENTS"]

DEFAULT_COMPONENTS: tuple[type[PortalComponent], ...] = (
    FileBrowserComponent,
    VOManagerComponent,
    ACLManagerComponent,
    DiscoveryComponent,
    JobSubmissionComponent,
)

_INDEX_BODY = """
<p>This portal provides browser access to the Clarens services hosted by
<strong>{{ server_name }}</strong>:</p>
<ul>
{% for page in pages %}<li><a href="{{ page }}.html">{{ page }}</a></li>{% endfor %}
</ul>
<p>All pages talk to the server's RPC endpoint ({{ rpc_path }}) with JSON-RPC
calls issued from the embedded JavaScript; nothing needs to be installed
beyond a web browser.</p>
"""


class PortalGenerator:
    """Generates the static portal pages for one server."""

    def __init__(self, *, rpc_path: str = "/clarens/rpc", server_name: str = "clarens",
                 components: Sequence[type[PortalComponent]] = DEFAULT_COMPONENTS) -> None:
        self.rpc_path = rpc_path
        self.server_name = server_name
        self.component_classes = tuple(components)

    @classmethod
    def for_server(cls, server) -> "PortalGenerator":
        """Build a generator configured from a ClarensServer instance."""

        return cls(rpc_path=server.config.rpc_path(), server_name=server.config.server_name)

    # -- rendering --------------------------------------------------------------------
    def components(self) -> list[PortalComponent]:
        built = []
        for component_cls in self.component_classes:
            component = component_cls()
            component.rpc_path = self.rpc_path
            component.server_name = self.server_name
            built.append(component)
        return built

    def render_index(self, pages: Sequence[str]) -> str:
        index = PortalComponent(rpc_path=self.rpc_path, server_name=self.server_name)
        index.title = f"Clarens portal — {self.server_name}"

        body = render_template(_INDEX_BODY, {
            "server_name": self.server_name,
            "pages": list(pages),
            "rpc_path": self.rpc_path,
        })
        index.body_html = lambda: body  # type: ignore[method-assign]
        return index.render(nav_links=[f"{page}.html" for page in pages])

    def render_all(self) -> dict[str, str]:
        """Render every page; returns ``{filename: html}``."""

        components = self.components()
        nav = [f"{c.slug}.html" for c in components]
        pages = {"index.html": self.render_index([c.slug for c in components])}
        for component in components:
            pages[f"{component.slug}.html"] = component.render(nav_links=["index.html"] + nav)
        return pages

    # -- writing ------------------------------------------------------------------------
    def write(self, output_dir: str | Path) -> list[Path]:
        """Write all pages into ``output_dir``; returns the written paths."""

        output = Path(output_dir)
        output.mkdir(parents=True, exist_ok=True)
        written = []
        for filename, html in self.render_all().items():
            path = output / filename
            path.write_text(html, encoding="utf-8")
            written.append(path)
        return sorted(written)
