"""A minimal template engine for the portal pages.

Supports ``{{ name }}`` substitution and ``{% for item in items %}…{% endfor %}``
loops over string sequences — just enough to generate the static HTML/JS pages
without pulling in a templating dependency the 2005 portal never had.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

__all__ = ["render_template", "TemplateError"]

_VAR_RE = re.compile(r"\{\{\s*([A-Za-z_][A-Za-z0-9_.]*)\s*\}\}")
_FOR_RE = re.compile(
    r"\{%\s*for\s+([A-Za-z_][A-Za-z0-9_]*)\s+in\s+([A-Za-z_][A-Za-z0-9_.]*)\s*%\}"
    r"(.*?)"
    r"\{%\s*endfor\s*%\}",
    re.DOTALL,
)


class TemplateError(ValueError):
    """Raised for unknown variables or malformed loops."""


def _lookup(name: str, context: Mapping[str, Any]) -> Any:
    value: Any = context
    for part in name.split("."):
        if isinstance(value, Mapping) and part in value:
            value = value[part]
        elif hasattr(value, part):
            value = getattr(value, part)
        else:
            raise TemplateError(f"unknown template variable {name!r}")
    return value


def render_template(template: str, context: Mapping[str, Any]) -> str:
    """Render ``template`` with ``{{ var }}`` and ``{% for %}`` constructs."""

    def render_for(match: re.Match) -> str:
        var, source, body = match.group(1), match.group(2), match.group(3)
        items = _lookup(source, context)
        parts = []
        for item in items:
            local = dict(context)
            local[var] = item
            parts.append(render_template(body, local))
        return "".join(parts)

    expanded = _FOR_RE.sub(render_for, template)

    def render_var(match: re.Match) -> str:
        return str(_lookup(match.group(1), context))

    return _VAR_RE.sub(render_var, expanded)
