"""Grid portal generation (paper section 3).

"The portal is implemented as a series of static web pages that embed
JavaScript scripts to handle communication and web service calls using
dynamic HTML", eliminating any client-side install beyond a browser.  This
package generates those static pages: an index plus one component page each
for remote file browsing, ACL management, VO management, service discovery
and job submission.  The JavaScript embedded in each page posts JSON-RPC
requests to the server's RPC endpoint — the same endpoint and protocol the
Python client uses.
"""

from __future__ import annotations

from repro.portal.components import (
    ACLManagerComponent,
    DiscoveryComponent,
    FileBrowserComponent,
    JobSubmissionComponent,
    PortalComponent,
    VOManagerComponent,
)
from repro.portal.generator import PortalGenerator
from repro.portal.templates import TemplateError, render_template

__all__ = [
    "PortalGenerator",
    "PortalComponent",
    "FileBrowserComponent",
    "VOManagerComponent",
    "ACLManagerComponent",
    "DiscoveryComponent",
    "JobSubmissionComponent",
    "render_template",
    "TemplateError",
]
