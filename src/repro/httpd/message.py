"""HTTP message objects and wire parsing.

The framework deals in :class:`HTTPRequest`/:class:`HTTPResponse` values
regardless of transport (loopback or socket), so the Clarens dispatcher is
written once and exercised identically by unit tests, benchmarks, and the
real server.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.httpd.sendfile import FilePayload

__all__ = ["HTTPRequest", "HTTPResponse", "HTTPError", "Headers", "REASON_PHRASES",
           "HTTPRequestParser", "MAX_HEADER_BYTES", "MAX_BODY_BYTES"]

#: Wire limits shared by every socket frontend (threaded and async): the
#: header section of one request may not exceed MAX_HEADER_BYTES and a
#: declared Content-Length may not exceed MAX_BODY_BYTES.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

REASON_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """An error that maps directly onto an HTTP status response."""

    def __init__(self, status: int, message: str = "") -> None:
        super().__init__(message or REASON_PHRASES.get(status, "error"))
        self.status = status
        self.message = message or REASON_PHRASES.get(status, "error")


class Headers:
    """A case-insensitive multi-dict for HTTP headers (last value wins on get)."""

    def __init__(self, initial: Mapping[str, str] | None = None) -> None:
        self._items: list[tuple[str, str]] = []
        if initial:
            for key, value in initial.items():
                self.add(key, value)

    def add(self, key: str, value: str) -> None:
        self._items.append((str(key), str(value)))

    def set(self, key: str, value: str) -> None:
        lowered = key.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]
        self._items.append((str(key), str(value)))

    def get(self, key: str, default: str | None = None) -> str | None:
        lowered = key.lower()
        result = default
        for k, v in self._items:
            if k.lower() == lowered:
                result = v
        return result

    def get_all(self, key: str) -> list[str]:
        lowered = key.lower()
        return [v for k, v in self._items if k.lower() == lowered]

    def remove(self, key: str) -> None:
        lowered = key.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and any(k.lower() == key.lower() for k, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        clone = Headers()
        clone._items = list(self._items)
        return clone


@dataclass
class HTTPRequest:
    """An HTTP request as seen by the Clarens handler."""

    method: str = "GET"
    path: str = "/"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    http_version: str = "HTTP/1.1"
    #: The DN string of the verified client certificate, when the request
    #: arrived over (simulated) TLS with client authentication — the same
    #: information Apache's mod_ssl exports to mod_python.
    client_dn: str | None = None
    #: Peer address, for logging.
    remote_addr: str = "127.0.0.1"

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)

    # -- URL helpers ---------------------------------------------------------
    @property
    def raw_path(self) -> str:
        return self.path

    @property
    def url_path(self) -> str:
        """The path with the query string stripped and percent-decoding applied."""

        path = self.path.split("?", 1)[0]
        return urllib.parse.unquote(path)

    @property
    def query(self) -> dict[str, str]:
        """Query-string parameters (last value wins)."""

        if "?" not in self.path:
            return {}
        qs = self.path.split("?", 1)[1]
        return {k: v[-1] for k, v in urllib.parse.parse_qs(qs, keep_blank_values=True).items()}

    @property
    def content_type(self) -> str | None:
        return self.headers.get("Content-Type")

    def wants_keepalive(self) -> bool:
        connection = (self.headers.get("Connection") or "").lower()
        if self.http_version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    # -- wire format ---------------------------------------------------------
    def to_bytes(self) -> bytes:
        headers = self.headers.copy()
        if self.body and "Content-Length" not in headers:
            headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.method} {self.path} {self.http_version}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPRequest":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        if not lines or not lines[0]:
            raise HTTPError(400, "empty request")
        parts = lines[0].split()
        if len(parts) != 3:
            raise HTTPError(400, f"malformed request line: {lines[0]!r}")
        method, path, version = parts
        headers = Headers()
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise HTTPError(400, f"malformed header line: {line!r}")
            key, _, value = line.partition(":")
            headers.add(key.strip(), value.strip())
        return cls(method=method, path=path, headers=headers, body=body, http_version=version)


@dataclass
class HTTPResponse:
    """An HTTP response; the body may be bytes or a :class:`FilePayload`."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes | FilePayload = b""

    def __post_init__(self) -> None:
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    def body_bytes(self) -> bytes:
        """Materialize the body as bytes (reads the file for FilePayloads)."""

        if isinstance(self.body, FilePayload):
            return self.body.read_all()
        return self.body

    def content_length(self) -> int:
        if isinstance(self.body, FilePayload):
            return self.body.length
        return len(self.body)

    def to_bytes(self) -> bytes:
        headers = self.headers.copy()
        headers.set("Content-Length", str(self.content_length()))
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPResponse":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        if not lines or not lines[0].startswith("HTTP/"):
            raise HTTPError(400, "malformed response status line")
        parts = lines[0].split(" ", 2)
        status = int(parts[1])
        headers = Headers()
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers.add(key.strip(), value.strip())
        return cls(status=status, headers=headers, body=body)

    # -- constructors --------------------------------------------------------
    @classmethod
    def ok(cls, body: bytes | FilePayload, content_type: str = "application/octet-stream",
           extra_headers: Mapping[str, str] | None = None) -> "HTTPResponse":
        headers = Headers({"Content-Type": content_type})
        for key, value in (extra_headers or {}).items():
            headers.set(key, value)
        return cls(status=200, headers=headers, body=body)

    @classmethod
    def error(cls, status: int, message: str = "", content_type: str = "text/plain") -> "HTTPResponse":
        message = message or REASON_PHRASES.get(status, "error")
        return cls(status=status, headers=Headers({"Content-Type": content_type}),
                   body=message.encode())

    @classmethod
    def xml_error(cls, status: int, message: str) -> "HTTPResponse":
        """GET errors are returned as XML documents (paper, section 2)."""

        body = (
            "<?xml version='1.0'?><error>"
            f"<code>{status}</code><message>{_xml_escape(message)}</message></error>"
        ).encode()
        return cls(status=status, headers=Headers({"Content-Type": "text/xml"}), body=body)


def _xml_escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


# ---------------------------------------------------------------------------
# Incremental request parsing (shared by both socket frontends)
# ---------------------------------------------------------------------------

class HTTPRequestParser:
    """An incremental HTTP/1.1 request parser over a byte stream.

    Both socket frontends — the threaded :class:`~repro.httpd.server
    .SocketHTTPServer` and the event-loop :class:`~repro.httpd.aio
    .AsyncHTTPServer` — feed raw socket bytes in with :meth:`feed` and pull
    complete :class:`HTTPRequest` objects out with :meth:`next_request`, so
    the wire rules live in exactly one place:

    * the header section is bounded by ``max_header_bytes`` (413, enforced
      *while buffering* so a slow-loris header stream is rejected as soon as
      it crosses the limit, not once it completes);
    * a malformed request line or header line is a 400;
    * ``Transfer-Encoding: chunked`` is an explicit 501 (not a misleading
      411);
    * ``Content-Length`` must be a non-negative integer no larger than
      ``max_body_bytes`` (400 / 413), and POST/PUT without one is a 411.

    Keep-alive connections carrying pipelined requests just keep feeding:
    any bytes after one request's body start the next request's head.
    """

    def __init__(self, *, max_header_bytes: int = MAX_HEADER_BYTES,
                 max_body_bytes: int = MAX_BODY_BYTES) -> None:
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._buffer = bytearray()
        #: Parsed head awaiting its body (method, path, version, headers,
        #: content length), or None while reading a head.
        self._pending: tuple[str, str, str, Headers, int] | None = None

    # -- feeding -------------------------------------------------------------
    def feed(self, data: bytes) -> None:
        """Buffer ``data``; raises :class:`HTTPError` 413 when an incomplete
        header section has already outgrown the limit."""

        self._buffer.extend(data)
        if (self._pending is None
                and len(self._buffer) > self.max_header_bytes
                and b"\r\n\r\n" not in self._buffer
                and b"\n\n" not in self._buffer):
            raise HTTPError(413, "header section too large")

    @property
    def buffered(self) -> int:
        """Bytes buffered but not yet returned as a request."""

        return len(self._buffer)

    @property
    def mid_request(self) -> bool:
        """True when a request head or body is partially buffered (an EOF
        now would truncate a request rather than end an idle connection)."""

        return self._pending is not None or bool(self._buffer)

    def body_bytes_needed(self) -> int:
        """How many body bytes the pending request still waits for (0 when
        no head is parsed yet or the body is already complete)."""

        if self._pending is None:
            return 0
        return max(0, self._pending[4] - len(self._buffer))

    # -- pulling -------------------------------------------------------------
    def next_request(self) -> HTTPRequest | None:
        """The next complete request, or None until more bytes arrive.

        Raises :class:`HTTPError` on protocol violations; the connection
        should answer with the error status and close.
        """

        if self._pending is None and not self._parse_head():
            return None
        assert self._pending is not None
        method, path, version, headers, length = self._pending
        if len(self._buffer) < length:
            return None
        body = bytes(self._buffer[:length])
        del self._buffer[:length]
        self._pending = None
        return HTTPRequest(method=method, path=path, headers=headers,
                           body=body, http_version=version)

    def _parse_head(self) -> bool:
        head, separator = _split_head(self._buffer)
        if head is None:
            if len(self._buffer) > self.max_header_bytes:
                raise HTTPError(413, "header section too large")
            return False
        if len(head) + len(separator) > self.max_header_bytes:
            raise HTTPError(413, "header section too large")
        del self._buffer[:len(head) + len(separator)]

        lines = head.decode("latin-1").splitlines()
        # Be liberal about leading blank lines between pipelined requests
        # (RFC 9112 §2.2 allows a CRLF before the request line).
        while lines and not lines[0].strip():
            lines.pop(0)
        if not lines:
            raise HTTPError(400, "empty request")
        parts = lines[0].split()
        if len(parts) != 3:
            raise HTTPError(400, f"malformed request line: {lines[0]!r}")
        method, path, version = parts

        headers = Headers()
        for line in lines[1:]:
            if not line.strip():
                continue
            if ":" not in line:
                raise HTTPError(400, f"malformed header: {line!r}")
            key, _, value = line.partition(":")
            headers.add(key.strip(), value.strip())

        self._pending = (method, path, version, headers,
                         _body_length(method, headers, self.max_body_bytes))
        return True


def _split_head(buffer: bytearray) -> tuple[bytes | None, bytes]:
    """The raw header section and its terminator, or ``(None, b"")``."""

    index = buffer.find(b"\r\n\r\n")
    if index >= 0:
        return bytes(buffer[:index]), b"\r\n\r\n"
    index = buffer.find(b"\n\n")
    if index >= 0:
        return bytes(buffer[:index]), b"\n\n"
    return None, b""


def _body_length(method: str, headers: Headers, max_body_bytes: int) -> int:
    """The declared body length, enforcing the shared framing rules."""

    transfer_encoding = headers.get("Transfer-Encoding")
    if transfer_encoding is not None and "chunked" in transfer_encoding.lower():
        # Chunked bodies are not implemented; say so explicitly instead of
        # falling into the misleading 411/"Content-Length required" path.
        raise HTTPError(501, "Transfer-Encoding: chunked is not supported; "
                             "send a Content-Length body")
    length_header = headers.get("Content-Length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HTTPError(400, "invalid Content-Length") from exc
        if length < 0 or length > max_body_bytes:
            raise HTTPError(413, "request body too large")
        return length
    if method.upper() in ("POST", "PUT"):
        raise HTTPError(411, "Content-Length required")
    return 0


def _unused(*args: Any) -> None:  # pragma: no cover
    pass
