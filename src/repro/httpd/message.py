"""HTTP message objects and wire parsing.

The framework deals in :class:`HTTPRequest`/:class:`HTTPResponse` values
regardless of transport (loopback or socket), so the Clarens dispatcher is
written once and exercised identically by unit tests, benchmarks, and the
real server.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.httpd.sendfile import FilePayload

__all__ = ["HTTPRequest", "HTTPResponse", "HTTPError", "Headers", "REASON_PHRASES"]

REASON_PHRASES = {
    200: "OK",
    201: "Created",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """An error that maps directly onto an HTTP status response."""

    def __init__(self, status: int, message: str = "") -> None:
        super().__init__(message or REASON_PHRASES.get(status, "error"))
        self.status = status
        self.message = message or REASON_PHRASES.get(status, "error")


class Headers:
    """A case-insensitive multi-dict for HTTP headers (last value wins on get)."""

    def __init__(self, initial: Mapping[str, str] | None = None) -> None:
        self._items: list[tuple[str, str]] = []
        if initial:
            for key, value in initial.items():
                self.add(key, value)

    def add(self, key: str, value: str) -> None:
        self._items.append((str(key), str(value)))

    def set(self, key: str, value: str) -> None:
        lowered = key.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]
        self._items.append((str(key), str(value)))

    def get(self, key: str, default: str | None = None) -> str | None:
        lowered = key.lower()
        result = default
        for k, v in self._items:
            if k.lower() == lowered:
                result = v
        return result

    def get_all(self, key: str) -> list[str]:
        lowered = key.lower()
        return [v for k, v in self._items if k.lower() == lowered]

    def remove(self, key: str) -> None:
        lowered = key.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and any(k.lower() == key.lower() for k, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        clone = Headers()
        clone._items = list(self._items)
        return clone


@dataclass
class HTTPRequest:
    """An HTTP request as seen by the Clarens handler."""

    method: str = "GET"
    path: str = "/"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    http_version: str = "HTTP/1.1"
    #: The DN string of the verified client certificate, when the request
    #: arrived over (simulated) TLS with client authentication — the same
    #: information Apache's mod_ssl exports to mod_python.
    client_dn: str | None = None
    #: Peer address, for logging.
    remote_addr: str = "127.0.0.1"

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)

    # -- URL helpers ---------------------------------------------------------
    @property
    def raw_path(self) -> str:
        return self.path

    @property
    def url_path(self) -> str:
        """The path with the query string stripped and percent-decoding applied."""

        path = self.path.split("?", 1)[0]
        return urllib.parse.unquote(path)

    @property
    def query(self) -> dict[str, str]:
        """Query-string parameters (last value wins)."""

        if "?" not in self.path:
            return {}
        qs = self.path.split("?", 1)[1]
        return {k: v[-1] for k, v in urllib.parse.parse_qs(qs, keep_blank_values=True).items()}

    @property
    def content_type(self) -> str | None:
        return self.headers.get("Content-Type")

    def wants_keepalive(self) -> bool:
        connection = (self.headers.get("Connection") or "").lower()
        if self.http_version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    # -- wire format ---------------------------------------------------------
    def to_bytes(self) -> bytes:
        headers = self.headers.copy()
        if self.body and "Content-Length" not in headers:
            headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.method} {self.path} {self.http_version}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPRequest":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        if not lines or not lines[0]:
            raise HTTPError(400, "empty request")
        parts = lines[0].split()
        if len(parts) != 3:
            raise HTTPError(400, f"malformed request line: {lines[0]!r}")
        method, path, version = parts
        headers = Headers()
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise HTTPError(400, f"malformed header line: {line!r}")
            key, _, value = line.partition(":")
            headers.add(key.strip(), value.strip())
        return cls(method=method, path=path, headers=headers, body=body, http_version=version)


@dataclass
class HTTPResponse:
    """An HTTP response; the body may be bytes or a :class:`FilePayload`."""

    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes | FilePayload = b""

    def __post_init__(self) -> None:
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    def body_bytes(self) -> bytes:
        """Materialize the body as bytes (reads the file for FilePayloads)."""

        if isinstance(self.body, FilePayload):
            return self.body.read_all()
        return self.body

    def content_length(self) -> int:
        if isinstance(self.body, FilePayload):
            return self.body.length
        return len(self.body)

    def to_bytes(self) -> bytes:
        headers = self.headers.copy()
        headers.set("Content-Length", str(self.content_length()))
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPResponse":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        if not lines or not lines[0].startswith("HTTP/"):
            raise HTTPError(400, "malformed response status line")
        parts = lines[0].split(" ", 2)
        status = int(parts[1])
        headers = Headers()
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers.add(key.strip(), value.strip())
        return cls(status=status, headers=headers, body=body)

    # -- constructors --------------------------------------------------------
    @classmethod
    def ok(cls, body: bytes | FilePayload, content_type: str = "application/octet-stream",
           extra_headers: Mapping[str, str] | None = None) -> "HTTPResponse":
        headers = Headers({"Content-Type": content_type})
        for key, value in (extra_headers or {}).items():
            headers.set(key, value)
        return cls(status=200, headers=headers, body=body)

    @classmethod
    def error(cls, status: int, message: str = "", content_type: str = "text/plain") -> "HTTPResponse":
        message = message or REASON_PHRASES.get(status, "error")
        return cls(status=status, headers=Headers({"Content-Type": content_type}),
                   body=message.encode())

    @classmethod
    def xml_error(cls, status: int, message: str) -> "HTTPResponse":
        """GET errors are returned as XML documents (paper, section 2)."""

        body = (
            "<?xml version='1.0'?><error>"
            f"<code>{status}</code><message>{_xml_escape(message)}</message></error>"
        ).encode()
        return cls(status=status, headers=Headers({"Content-Type": "text/xml"}), body=body)


def _xml_escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _unused(*args: Any) -> None:  # pragma: no cover
    pass
