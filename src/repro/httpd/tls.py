"""Simulated SSL/TLS.

The real Clarens terminated SSL in Apache; the paper reports that informal
tests showed SSL/TLS-encrypted connections "reduce performance by up to 50%".
To reproduce that observation without OpenSSL, this module provides a
behavioural TLS stand-in with the properties the framework relies on:

* a handshake in which the client verifies the server's certificate chain,
  optionally presents its own certificate (mutual auth — how Clarens learns
  the client DN), proves key possession by signing the handshake transcript,
  and both sides derive a shared session key via RSA key transport;
* a record layer that actually spends CPU per byte (HMAC-SHA-256 keystream
  generation plus a per-record MAC), so enabling "TLS" has a realistic
  relative cost in the benchmarks.

It is *not* secure cryptography; it is a simulation with genuine work.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Sequence

from repro.pki.certificate import Certificate, TrustStore, VerificationError, verify_chain
from repro.pki.credentials import Credential
from repro.pki.proxy import verify_proxy_chain

__all__ = ["TLSError", "TLSContext", "TLSChannel", "perform_handshake"]

_KEYSTREAM_BLOCK = 64  # SHA-512 digest size; one hash call per 64 bytes.


class TLSError(Exception):
    """Raised when the simulated handshake or record layer fails."""


@dataclass
class TLSContext:
    """Configuration for one side of a TLS endpoint."""

    credential: Credential | None = None
    trust_store: TrustStore | None = None
    require_client_cert: bool = False
    #: Maps revoked serials per issuer; consulted during chain verification.
    revoked_serials: dict = field(default_factory=dict)

    def certificate_chain(self) -> Sequence[Certificate]:
        if self.credential is None:
            return ()
        return self.credential.full_chain()


def _derive_keystream_key(secret: bytes, label: bytes) -> bytes:
    return hmac.new(secret, label, hashlib.sha256).digest()


class _RecordCipher:
    """Counter-mode keystream cipher + per-record MAC.

    Each record is ``len(4 bytes) || ciphertext || mac(16 bytes)``.  The
    keystream is made of keyed-BLAKE2b(counter, block) digests — one hash pass
    per 64 bytes, which is real per-byte CPU work (so enabling "TLS" has a
    measurable relative cost, as the paper observed) without being as
    disproportionately slow as an HMAC-per-block construction would be
    relative to the rest of this pure-Python server.
    """

    MAC_LEN = 16

    def __init__(self, key: bytes, mac_key: bytes) -> None:
        self._key = key[:64]
        self._mac_key = mac_key[:64]
        self._enc_counter = 0
        self._dec_counter = 0

    def _keystream(self, counter: int, length: int) -> bytes:
        blocks = []
        block_index = 0
        while len(blocks) * _KEYSTREAM_BLOCK < length:
            msg = struct.pack(">QQ", counter, block_index)
            blocks.append(hashlib.blake2b(msg, key=self._key, digest_size=64).digest())
            block_index += 1
        return b"".join(blocks)[:length]

    def _xor(self, data: bytes, stream: bytes) -> bytes:
        if not data:
            return b""
        # Whole-buffer XOR via big-integer arithmetic: orders of magnitude
        # faster than a per-byte Python loop on multi-kilobyte records.
        n = len(data)
        return (int.from_bytes(data, "big") ^ int.from_bytes(stream[:n], "big")).to_bytes(n, "big")

    def _mac(self, counter: int, ciphertext: bytes) -> bytes:
        return hashlib.blake2b(struct.pack(">Q", counter) + ciphertext,
                               key=self._mac_key, digest_size=self.MAC_LEN).digest()

    def encrypt(self, plaintext: bytes) -> bytes:
        counter = self._enc_counter
        self._enc_counter += 1
        stream = self._keystream(counter, len(plaintext))
        ciphertext = self._xor(plaintext, stream)
        mac = self._mac(counter, ciphertext)
        return struct.pack(">I", len(ciphertext)) + ciphertext + mac

    def decrypt(self, record: bytes) -> bytes:
        if len(record) < 4 + self.MAC_LEN:
            raise TLSError("record too short")
        (length,) = struct.unpack(">I", record[:4])
        if len(record) != 4 + length + self.MAC_LEN:
            raise TLSError("record length mismatch")
        ciphertext = record[4:4 + length]
        mac = record[4 + length:]
        counter = self._dec_counter
        if not hmac.compare_digest(mac, self._mac(counter, ciphertext)):
            raise TLSError("record MAC verification failed")
        self._dec_counter += 1
        stream = self._keystream(counter, len(ciphertext))
        return self._xor(ciphertext, stream)


@dataclass
class HandshakeResult:
    """Outcome of a successful handshake."""

    session_secret: bytes
    client_dn: str | None
    server_dn: str


class TLSChannel:
    """A bidirectional encrypted channel derived from a handshake secret.

    Separate cipher states are kept for each direction so a client channel and
    a server channel constructed from the same :class:`HandshakeResult`
    interoperate (client "send" pairs with server "recv" and vice versa).
    """

    def __init__(self, result: HandshakeResult, *, is_client: bool) -> None:
        secret = result.session_secret
        c2s_key = _derive_keystream_key(secret, b"c2s-key")
        c2s_mac = _derive_keystream_key(secret, b"c2s-mac")
        s2c_key = _derive_keystream_key(secret, b"s2c-key")
        s2c_mac = _derive_keystream_key(secret, b"s2c-mac")
        if is_client:
            self._send_cipher = _RecordCipher(c2s_key, c2s_mac)
            self._recv_cipher = _RecordCipher(s2c_key, s2c_mac)
        else:
            self._send_cipher = _RecordCipher(s2c_key, s2c_mac)
            self._recv_cipher = _RecordCipher(c2s_key, c2s_mac)
        self.client_dn = result.client_dn
        self.server_dn = result.server_dn

    def wrap(self, data: bytes) -> bytes:
        """Encrypt outbound application data into a record."""

        return self._send_cipher.encrypt(data)

    def unwrap(self, record: bytes) -> bytes:
        """Decrypt an inbound record into application data."""

        return self._recv_cipher.decrypt(record)


def _verify_peer(chain: Sequence[Certificate], trust_store: TrustStore,
                 revoked: dict) -> str:
    """Verify a peer chain (plain or proxy) and return the authenticated DN."""

    if not chain:
        raise TLSError("peer presented no certificate")
    if any(c.is_proxy for c in chain):
        owner = verify_proxy_chain(list(chain), trust_store, revoked_serials=revoked)
        return str(owner)
    end_entity = verify_chain(list(chain), trust_store, revoked_serials=revoked)
    return str(end_entity.subject)


def perform_handshake(client: TLSContext, server: TLSContext,
                      *, rng=None) -> tuple[TLSChannel, TLSChannel]:
    """Run the simulated handshake and return (client_channel, server_channel).

    The message flow mirrors TLS-with-client-auth:

    1. server -> client: certificate chain.
    2. client: verifies the chain against its trust store.
    3. client -> server: its own chain (if any), an RSA-encrypted pre-master
       secret, and a signature over the transcript proving key possession.
    4. server: verifies the client chain, checks the signature, decrypts the
       secret.  Both sides derive the record-layer keys from the secret.
    """

    if server.credential is None:
        raise TLSError("server endpoint has no credential")
    if client.trust_store is None:
        raise TLSError("client has no trust store to verify the server against")

    server_chain = list(server.certificate_chain())
    try:
        server_dn = _verify_peer(server_chain, client.trust_store, server.revoked_serials)
    except (VerificationError, TLSError) as exc:
        raise TLSError(f"server certificate rejected: {exc}") from exc

    pre_master = (rng.randbytes(32) if rng is not None else os.urandom(32))
    encrypted_secret = server.credential.certificate.public_key.encrypt_secret(pre_master)

    transcript = json.dumps({
        "server": server_dn,
        "secret_fingerprint": hashlib.sha256(pre_master).hexdigest(),
    }, sort_keys=True).encode()

    client_dn: str | None = None
    client_chain: list[Certificate] = []
    client_signature: int | None = None
    if client.credential is not None:
        client_chain = list(client.certificate_chain())
        client_signature = client.credential.private_key.sign(transcript)

    # --- server side processing ------------------------------------------
    if server.require_client_cert and not client_chain:
        raise TLSError("server requires a client certificate and none was presented")
    if client_chain:
        if server.trust_store is None:
            raise TLSError("server cannot verify client certificates without a trust store")
        try:
            client_dn = _verify_peer(client_chain, server.trust_store, client.revoked_serials)
        except (VerificationError, TLSError) as exc:
            raise TLSError(f"client certificate rejected: {exc}") from exc
        if client_signature is None or not client_chain[0].public_key.verify(
                transcript, client_signature):
            raise TLSError("client failed proof of key possession")

    try:
        recovered = server.credential.private_key.decrypt_secret(encrypted_secret)
    except ValueError as exc:
        raise TLSError(f"pre-master secret recovery failed: {exc}") from exc
    if recovered != pre_master:
        raise TLSError("pre-master secret mismatch")

    result = HandshakeResult(session_secret=pre_master, client_dn=client_dn, server_dn=server_dn)
    return TLSChannel(result, is_client=True), TLSChannel(result, is_client=False)
