"""A threaded socket HTTP server.

This is the "real network" frontend: a small HTTP/1.1 server built on the
standard library's :mod:`socketserver`, speaking plain HTTP (the simulated
TLS layer is an in-process construct; real-socket deployments of the
reproduction run unencrypted, as the paper's performance test did).  It
routes requests through the same handler callable as the loopback transport,
supports keep-alive, and uses :class:`~repro.httpd.sendfile.FilePayload`
bodies via ``os.sendfile`` where possible.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from typing import Callable

from repro.httpd.accesslog import AccessLog
from repro.httpd.message import (HTTPError, HTTPRequest, HTTPRequestParser,
                                 HTTPResponse)
from repro.httpd.sendfile import FilePayload

__all__ = ["SocketHTTPServer"]

Handler = Callable[[HTTPRequest], HTTPResponse]


def _read_request(rfile) -> HTTPRequest | None:
    """Read one HTTP request from a buffered socket file, or None at EOF.

    Framing and limits live in the shared :class:`HTTPRequestParser` (the
    async frontend feeds the same parser), so the two servers cannot drift
    on what constitutes a well-formed request.  This blocking wrapper reads
    header lines one at a time and the body in one exact-length read.
    """

    parser = HTTPRequestParser()
    while True:
        request = parser.next_request()
        if request is not None:
            return request
        needed = parser.body_bytes_needed()
        if needed:
            data = rfile.read(needed)
        else:
            data = rfile.readline(parser.max_header_bytes + 2)
        if not data:
            if parser.mid_request:
                raise HTTPError(400, "request truncated")
            return None
        parser.feed(data)


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """Handles one TCP connection, possibly carrying multiple requests."""

    # Keep-alive RPC means a stream of small request/response pairs; with
    # Nagle on, a response head flushed separately from its body can stall
    # ~40ms against the client's delayed ACK.  (asyncio disables Nagle on
    # every TCP transport; the threaded frontend must match.)
    disable_nagle_algorithm = True

    def handle(self) -> None:  # noqa: D102 - socketserver API
        owner: SocketHTTPServer = self.server.owner  # type: ignore[attr-defined]
        self.connection.settimeout(owner.request_timeout)
        while True:
            start = time.perf_counter()
            try:
                request = _read_request(self.rfile)
            except HTTPError as exc:
                self._send(HTTPResponse.error(exc.status, exc.message), "GET", "-", None, start)
                return
            except (socket.timeout, ConnectionError, OSError):
                return
            if request is None:
                return
            request.remote_addr = self.client_address[0]
            try:
                response = owner.handler(request)
            except Exception as exc:  # noqa: BLE001 - never kill the connection loop
                response = HTTPResponse.error(500, f"internal server error: {exc}")
            keep_alive = request.wants_keepalive() and owner.keep_alive
            response.headers.set("Connection", "keep-alive" if keep_alive else "close")
            self._send(response, request.method, request.path, request.client_dn, start)
            if not keep_alive:
                return

    def _send(self, response: HTTPResponse, method: str, path: str,
              client_dn: str | None, start: float) -> None:
        owner: SocketHTTPServer = self.server.owner  # type: ignore[attr-defined]
        body = response.body
        headers = response.headers.copy()
        headers.set("Content-Length", str(response.content_length()))
        headers.set("Server", "Clarens-repro/1.0")
        lines = [f"HTTP/1.1 {response.status} {response.reason}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            self.wfile.write(head)
            if isinstance(body, FilePayload):
                if owner.sendfile_enabled:
                    # Kernel-to-kernel: flush the buffered head, then hand
                    # the file descriptor pair to os.sendfile (FilePayload
                    # falls back to chunked copies where it is unavailable).
                    self.wfile.flush()
                    body.sendfile_to(self.connection)
                    owner.sendfile_sends += 1
                else:
                    for chunk in body.chunks():
                        self.wfile.write(chunk)
            elif body:
                self.wfile.write(body)
            self.wfile.flush()
        except (BrokenPipeError, ConnectionError, OSError):
            return
        finally:
            owner.access_log.log(
                remote_addr=self.client_address[0],
                client_dn=client_dn,
                method=method,
                path=path,
                status=response.status,
                response_bytes=response.content_length(),
                duration_s=time.perf_counter() - start,
            )


class _TCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()

    def get_request(self):  # noqa: D102 - socketserver API
        request, client_address = super().get_request()
        with self._connections_lock:
            self._connections.add(request)
        return request, client_address

    def shutdown_request(self, request) -> None:  # noqa: D102
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        """Sever every established connection (half-close both directions).

        ``shutdown()`` only stops the accept loop; daemon handler threads
        blocked in a keep-alive read would otherwise keep serving requests
        against a stopped server indefinitely — a restarted instance on the
        same port then splits the world between clients holding old
        connections (frozen state) and clients that reconnect.  Shutting the
        sockets down (not closing them — the handler thread still owns the
        fd) makes those reads fail so the connection loops exit.
        """

        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class SocketHTTPServer:
    """A threaded HTTP server bound to a host/port."""

    def __init__(self, handler: Handler, *, host: str = "127.0.0.1", port: int = 0,
                 keep_alive: bool = True, request_timeout: float = 30.0,
                 access_log: AccessLog | None = None,
                 sendfile_enabled: bool = True) -> None:
        self.handler = handler
        self.keep_alive = keep_alive
        self.request_timeout = request_timeout
        self.access_log = access_log or AccessLog()
        #: Serve FilePayload bodies via os.sendfile (chunked writes when off).
        self.sendfile_enabled = sendfile_enabled
        #: File responses that went through the sendfile fast path.
        self.sendfile_sends = 0
        self._server = _TCPServer((host, port), _ConnectionHandler, bind_and_activate=True)
        self._server.owner = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SocketHTTPServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="clarens-httpd", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.close_all_connections()
        self._server.server_close()
        self._thread.join(timeout=5)
        self._thread = None

    def __enter__(self) -> "SocketHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
