"""URL-form routing.

Apache "invokes PClarens based on the form of the URL specified by the
client (other URLs are handled transparently by the Apache server according
to its configuration)" — section 2 of the paper.  The :class:`Router`
reproduces that: the longest matching path prefix wins, and unmatched paths
fall through to a default handler (normally a 404 or a static-file handler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.httpd.message import HTTPError, HTTPRequest, HTTPResponse

__all__ = ["Route", "Router"]

#: A handler receives the request and the path remainder after the prefix.
Handler = Callable[[HTTPRequest, str], HTTPResponse]


@dataclass(frozen=True)
class Route:
    """A prefix route: handler plus allowed methods."""

    prefix: str
    handler: Handler
    methods: tuple[str, ...] = ("GET", "POST")

    def matches(self, path: str) -> bool:
        if not path.startswith(self.prefix):
            return False
        if len(path) == len(self.prefix):
            return True
        # Only match at path-segment boundaries, so /clarens does not
        # swallow /clarensology.
        return self.prefix.endswith("/") or path[len(self.prefix)] == "/"

    def remainder(self, path: str) -> str:
        rest = path[len(self.prefix):]
        return rest.lstrip("/")


class Router:
    """Longest-prefix-match URL router with a configurable fallback."""

    def __init__(self, default_handler: Handler | None = None) -> None:
        self._routes: list[Route] = []
        self._default = default_handler

    def add(self, prefix: str, handler: Handler,
            methods: Iterable[str] = ("GET", "POST")) -> Route:
        """Register a handler for a URL prefix (normalized to start with '/')."""

        if not prefix.startswith("/"):
            prefix = "/" + prefix
        route = Route(prefix=prefix.rstrip("/") or "/", handler=handler,
                      methods=tuple(m.upper() for m in methods))
        self._routes.append(route)
        # Longest prefixes first so the most specific route wins.
        self._routes.sort(key=lambda r: len(r.prefix), reverse=True)
        return route

    def set_default(self, handler: Handler) -> None:
        self._default = handler

    def resolve(self, request: HTTPRequest) -> tuple[Route | None, str]:
        path = request.url_path
        for route in self._routes:
            if route.matches(path):
                return route, route.remainder(path)
        return None, path.lstrip("/")

    def dispatch(self, request: HTTPRequest) -> HTTPResponse:
        """Route a request to its handler, mapping errors onto HTTP statuses."""

        route, remainder = self.resolve(request)
        try:
            if route is None:
                if self._default is None:
                    raise HTTPError(404, f"no handler for {request.url_path}")
                return self._default(request, remainder)
            if request.method not in route.methods:
                raise HTTPError(405, f"{request.method} not allowed on {route.prefix}")
            return route.handler(request, remainder)
        except HTTPError as exc:
            if request.method == "GET":
                return HTTPResponse.xml_error(exc.status, exc.message)
            return HTTPResponse.error(exc.status, exc.message)

    def routes(self) -> list[Route]:
        return list(self._routes)
