"""HTTP server substrate (the "Apache + mod_python" layer).

In the paper's architecture (Figure 1) the Apache web server receives HTTP
GET/POST requests, hands Clarens-form URLs to mod_python, terminates SSL
transparently, and serves file responses with the zero-copy ``sendfile()``
path.  This package reproduces that substrate:

* :mod:`repro.httpd.message`   -- HTTP request/response objects and parsing.
* :mod:`repro.httpd.router`    -- URL-form routing (Clarens prefix vs static).
* :mod:`repro.httpd.tls`       -- simulated SSL/TLS (certificate handshake +
  keystream record layer with real CPU cost).
* :mod:`repro.httpd.sendfile`  -- zero-copy-style file payloads.
* :mod:`repro.httpd.loopback`  -- an in-process transport used by tests and by
  the Figure 4 benchmark (measures framework overhead, not kernel sockets).
* :mod:`repro.httpd.server`    -- a real threaded socket HTTP server.
* :mod:`repro.httpd.aio`       -- the event-loop HTTP frontend (one asyncio
  loop for every connection, shared parser, bounded-executor offload).
* :mod:`repro.httpd.workers`   -- the Apache-like worker pool model.
* :mod:`repro.httpd.accesslog` -- common-log-format access logging.
"""

from __future__ import annotations

from repro.httpd.aio import AsyncHTTPServer
from repro.httpd.loopback import LoopbackConnection, LoopbackTransport
from repro.httpd.message import (HTTPError, HTTPRequest, HTTPRequestParser,
                                 HTTPResponse)
from repro.httpd.router import Route, Router
from repro.httpd.sendfile import FilePayload
from repro.httpd.server import SocketHTTPServer
from repro.httpd.tls import TLSChannel, TLSContext, TLSError

__all__ = [
    "HTTPRequest",
    "HTTPResponse",
    "HTTPError",
    "Route",
    "Router",
    "FilePayload",
    "LoopbackTransport",
    "LoopbackConnection",
    "SocketHTTPServer",
    "AsyncHTTPServer",
    "HTTPRequestParser",
    "TLSContext",
    "TLSChannel",
    "TLSError",
]
