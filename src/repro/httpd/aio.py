"""An event-loop HTTP frontend.

The threaded :class:`~repro.httpd.server.SocketHTTPServer` burns one pooled
thread per connection and parks it on a blocking keep-alive read — fine for
the paper's 79 clients, hostile to the ROADMAP's "thousands of concurrent
clients per server".  :class:`AsyncHTTPServer` is the drop-in alternative:
one asyncio event loop owns every connection, parses requests incrementally
with the same :class:`~repro.httpd.message.HTTPRequestParser` the threaded
server uses (the wire rules cannot drift between frontends), and dispatches
into the same handler callable.

Three properties matter:

* **Pipelining amortisation** — all complete requests buffered on a
  connection are parsed as one batch, dispatched with a *single* executor
  hop, and answered with a single write + drain, so a pipelining client
  pays one syscall round-trip per batch instead of one per call.
* **The offload seam** — the Clarens handler stack (session lookups, ACL
  checks, the database) is synchronous by design; batches run on a bounded
  :class:`~concurrent.futures.ThreadPoolExecutor` so a slow method never
  stalls the accept/parse loop.  ``executor_workers=0`` runs handlers
  inline on the loop (benchmark mode for sub-millisecond handlers).
* **Backpressure, not queues** — a ``max_connections`` budget rejects
  surplus connections at accept, and an optional admission ``gate`` is
  consulted per request *before* it is queued for the executor; a gate
  refusal is answered through ``overload_handler`` (429/RETRY_LATER when
  wired by :meth:`ClarensServer.async_server`) instead of growing an
  unbounded backlog.

:class:`FilePayload` bodies are streamed chunk-by-chunk with the blocking
file reads offloaded to the executor, so a large ``GET file/.lfn/<name>``
never holds the loop.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro.httpd.accesslog import AccessLog
from repro.httpd.message import (HTTPError, HTTPRequest, HTTPRequestParser,
                                 HTTPResponse)
from repro.httpd.sendfile import FilePayload

__all__ = ["AsyncHTTPServer"]

Handler = Callable[[HTTPRequest], HTTPResponse]
#: Admits one request or raises; returns an optional release callable the
#: server invokes once the request finishes (AdmissionController.admit shape).
Gate = Callable[[HTTPRequest], Callable[[], None] | None]
#: Builds the response for a refused request (or refused connection, when the
#: request argument is None).  The exception is the gate's refusal, if any.
OverloadHandler = Callable[[HTTPRequest | None, BaseException | None],
                           HTTPResponse]

_READ_CHUNK = 1 << 16


def _default_overload(request: HTTPRequest | None,
                      exc: BaseException | None) -> HTTPResponse:
    message = str(exc) if exc else "server is at capacity; retry later"
    return HTTPResponse.error(429, message)


class AsyncHTTPServer:
    """An asyncio HTTP/1.1 server sharing the threaded server's interface.

    ``start()``/``stop()``/``address``/``url`` and the context-manager
    protocol mirror :class:`~repro.httpd.server.SocketHTTPServer`, so every
    call site (``ClarensServer``, the chaos harness, tests) can swap
    frontends without caring which one it holds.
    """

    def __init__(self, handler: Handler, *, host: str = "127.0.0.1", port: int = 0,
                 keep_alive: bool = True, request_timeout: float = 30.0,
                 executor_workers: int = 8, max_connections: int = 0,
                 gate: Gate | None = None,
                 overload_handler: OverloadHandler | None = None,
                 access_log: AccessLog | None = None,
                 sendfile_enabled: bool = True) -> None:
        if executor_workers < 0:
            raise ValueError("executor_workers cannot be negative")
        if max_connections < 0:
            raise ValueError("max_connections cannot be negative")
        self.handler = handler
        self.keep_alive = keep_alive
        self.request_timeout = request_timeout
        self.executor_workers = executor_workers
        self.max_connections = max_connections
        self.gate = gate
        self.overload_handler = overload_handler or _default_overload
        self.access_log = access_log or AccessLog()
        #: Try ``loop.sendfile`` for FilePayload bodies before falling back
        #: to executor-offloaded chunked copies.
        self.sendfile_enabled = sendfile_enabled
        # Bind eagerly, like the threaded server, so ``address`` is valid
        # (and port collisions surface) before the loop thread exists.
        self._sock = socket.create_server((host, port), backlog=128)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._stopping = False
        # -- counters (introspection for tests and benchmarks) --------------
        self.connections_accepted = 0
        self.connections_rejected = 0
        self.requests_served = 0
        self.requests_rejected = 0
        self.batches_served = 0
        self.sendfile_sends = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AsyncHTTPServer":
        if self._thread is not None:
            return self
        if self.executor_workers > 0 and self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.executor_workers,
                thread_name_prefix="clarens-aio-worker")
        self._ready.clear()
        self._startup_error = None
        self._stopping = False
        self._thread = threading.Thread(target=self._thread_main,
                                        name="clarens-aio-httpd", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=5)
        self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "AsyncHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the event loop ------------------------------------------------------
    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()
                self._loop = None

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._serve_connection,
                                            sock=self._sock)
        self._ready.set()
        await self._stop_event.wait()
        self._stopping = True
        server.close()
        # Sever in-flight connections: a stopped server must not keep
        # serving clients parked on old keep-alive sockets (the same
        # split-world hazard SocketHTTPServer.close_all_connections fixes).
        for writer in list(self._connections):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        await server.wait_closed()
        current = asyncio.current_task()
        tasks = [t for t in asyncio.all_tasks() if t is not current]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- connections ---------------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if self._stopping:
            writer.transport.abort()
            return
        if self.max_connections and len(self._connections) >= self.max_connections:
            self.connections_rejected += 1
            await self._write_refusal(writer, None, None)
            return
        self._connections.add(writer)
        self.connections_accepted += 1
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - transport may already be gone
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        parser = HTTPRequestParser()
        peername = writer.get_extra_info("peername")
        remote_addr = peername[0] if isinstance(peername, tuple) else "127.0.0.1"
        while True:
            batch: list[HTTPRequest] = []
            try:
                while True:
                    request = parser.next_request()
                    if request is None:
                        break
                    request.remote_addr = remote_addr
                    batch.append(request)
            except HTTPError as exc:
                await self._write_error(writer, exc, remote_addr)
                return
            if not batch:
                # ``request_timeout`` covers idle keep-alive waits and
                # slow-loris dribbles alike, exactly like the threaded
                # server's socket timeout.
                try:
                    data = await asyncio.wait_for(reader.read(_READ_CHUNK),
                                                  timeout=self.request_timeout)
                except (asyncio.TimeoutError, TimeoutError):
                    return
                if not data:
                    return  # EOF: idle close, or a request truncated mid-wire
                try:
                    parser.feed(data)
                except HTTPError as exc:
                    await self._write_error(writer, exc, remote_addr)
                    return
                continue
            if not await self._respond_batch(batch, writer, remote_addr):
                return

    async def _respond_batch(self, batch: list[HTTPRequest],
                             writer: asyncio.StreamWriter,
                             remote_addr: str) -> bool:
        """Dispatch one pipelined batch and write every response.

        Returns False when the connection must close (a request asked for
        ``Connection: close`` — any pipelined requests behind it are
        dropped, the client disowned them).
        """

        start = time.perf_counter()
        keep_alive = True
        for index, request in enumerate(batch):
            if not (request.wants_keepalive() and self.keep_alive):
                keep_alive = False
                batch = batch[:index + 1]
                break

        responses: list[HTTPResponse | None] = [None] * len(batch)
        jobs: list[tuple[int, HTTPRequest, Callable[[], None] | None]] = []
        for index, request in enumerate(batch):
            release: Callable[[], None] | None = None
            if self.gate is not None:
                try:
                    release = self.gate(request)
                except Exception as exc:  # noqa: BLE001 - refusal, not failure
                    self.requests_rejected += 1
                    responses[index] = self.overload_handler(request, exc)
                    continue
            jobs.append((index, request, release))
        if jobs:
            if self._executor is None:
                results = self._run_jobs(jobs)
            else:
                loop = asyncio.get_running_loop()
                results = await loop.run_in_executor(
                    self._executor, self._run_jobs, jobs)
            for (index, _, _), response in zip(jobs, results):
                responses[index] = response
        self.batches_served += 1

        buffer = bytearray()
        last = len(batch) - 1
        for index, (request, response) in enumerate(zip(batch, responses)):
            assert response is not None
            connection_alive = keep_alive or index < last
            response.headers.set("Connection",
                                 "keep-alive" if connection_alive else "close")
            buffer += _render_head(response)
            body = response.body
            if isinstance(body, FilePayload):
                writer.write(bytes(buffer))
                buffer.clear()
                await writer.drain()
                await self._stream_file(writer, body)
            elif body:
                buffer += body
            self.requests_served += 1
            self.access_log.log(
                remote_addr=remote_addr,
                client_dn=request.client_dn,
                method=request.method,
                path=request.path,
                status=response.status,
                response_bytes=response.content_length(),
                duration_s=time.perf_counter() - start,
            )
        if buffer:
            writer.write(bytes(buffer))
        await writer.drain()
        return keep_alive

    def _run_jobs(self, jobs) -> list[HTTPResponse]:
        """Run one batch's admitted requests on an executor thread."""

        results: list[HTTPResponse] = []
        for _, request, release in jobs:
            try:
                results.append(self.handler(request))
            except Exception as exc:  # noqa: BLE001 - never kill the loop
                results.append(
                    HTTPResponse.error(500, f"internal server error: {exc}"))
            finally:
                if release is not None:
                    release()
        return results

    async def _stream_file(self, writer: asyncio.StreamWriter,
                           payload: FilePayload) -> None:
        loop = asyncio.get_running_loop()
        if payload.length <= 0:
            return
        if self.sendfile_enabled:
            # Zero-copy fast path: hand the file descriptor to the event
            # loop's sendfile (head bytes were already written and drained).
            # ``fallback=False`` keeps a loop without sendfile support from
            # silently buffering the whole file; we fall through to the
            # executor-offloaded chunked path instead.
            try:
                with open(payload.path, "rb") as fh:
                    await loop.sendfile(writer.transport, fh,
                                        offset=payload.offset,
                                        count=payload.length, fallback=False)
                self.sendfile_sends += 1
                return
            except (asyncio.SendfileNotAvailableError, NotImplementedError,
                    AttributeError, RuntimeError):
                # No native sendfile on this loop/transport (or the
                # transport is mid-close): the chunked path below either
                # serves the bytes or surfaces the connection error.
                pass
        chunks = payload.chunks()
        while True:
            if self._executor is None:
                chunk = next(chunks, b"")
            else:
                chunk = await loop.run_in_executor(self._executor,
                                                   next, chunks, b"")
            if not chunk:
                return
            writer.write(chunk)
            await writer.drain()

    # -- error/refusal writes ------------------------------------------------
    async def _write_error(self, writer: asyncio.StreamWriter, exc: HTTPError,
                           remote_addr: str) -> None:
        response = HTTPResponse.error(exc.status, exc.message)
        response.headers.set("Connection", "close")
        try:
            writer.write(_render_head(response) + response.body_bytes())
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        self.access_log.log(remote_addr=remote_addr, client_dn=None,
                            method="GET", path="-", status=response.status,
                            response_bytes=response.content_length(),
                            duration_s=0.0)

    async def _write_refusal(self, writer: asyncio.StreamWriter,
                             request: HTTPRequest | None,
                             exc: BaseException | None) -> None:
        response = self.overload_handler(request, exc)
        response.headers.set("Connection", "close")
        try:
            writer.write(_render_head(response) + response.body_bytes())
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass


def _render_head(response: HTTPResponse) -> bytes:
    headers = response.headers
    headers.set("Content-Length", str(response.content_length()))
    headers.set("Server", "Clarens-repro/1.0")
    lines = [f"HTTP/1.1 {response.status} {response.reason}"]
    lines.extend(f"{k}: {v}" for k, v in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
