"""Worker pool.

Apache's prefork/worker model hands each accepted connection to a worker
process; PClarens inherited that concurrency model.  The reproduction's
equivalent is a bounded thread pool with per-task exception capture, used by
the socket server for connection handling and by the asynchronous client/
benchmark harness for concurrent in-flight requests.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["WorkerPool", "TaskResult"]


@dataclass
class TaskResult:
    """Outcome of one submitted task."""

    value: Any = None
    error: BaseException | None = None
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("task did not complete in time")
        if self.error is not None:
            raise self.error
        return self.value

    def _complete(self, value: Any = None, error: BaseException | None = None) -> None:
        self.value = value
        self.error = error
        self._event.set()


class WorkerPool:
    """A fixed-size pool of daemon worker threads."""

    def __init__(self, size: int = 8, *, name: str = "clarens-worker") -> None:
        if size < 1:
            raise ValueError("worker pool needs at least one worker")
        self.size = size
        self._queue: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._shutdown = threading.Event()
        for idx in range(size):
            thread = threading.Thread(target=self._run, name=f"{name}-{idx}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            func, args, kwargs, result = item
            try:
                result._complete(value=func(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - report to caller
                result._complete(error=exc)
            finally:
                self._queue.task_done()

    def submit(self, func: Callable, *args: Any, **kwargs: Any) -> TaskResult:
        """Schedule ``func(*args, **kwargs)`` and return its pending result."""

        if self._shutdown.is_set():
            raise RuntimeError("worker pool has been shut down")
        result = TaskResult()
        self._queue.put((func, args, kwargs, result))
        return result

    def map(self, func: Callable, items) -> list[Any]:
        """Run ``func`` over ``items`` on the pool and return results in order."""

        results = [self.submit(func, item) for item in items]
        return [r.result() for r in results]

    def pending(self) -> int:
        return self._queue.qsize()

    def shutdown(self, wait: bool = True) -> None:
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=5)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
