"""Access logging in Apache common log format.

The Clarens server sat behind Apache, whose access log was the operational
record of every service call.  The reproduction keeps an in-memory ring of
recent entries (useful in tests and the portal status page) and can mirror
them to a file.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

__all__ = ["AccessLogEntry", "AccessLog"]


@dataclass(frozen=True)
class AccessLogEntry:
    """One logged request."""

    timestamp: float
    remote_addr: str
    client_dn: str | None
    method: str
    path: str
    status: int
    response_bytes: int
    duration_s: float

    def common_log_line(self) -> str:
        """Render in Apache common log format (with the DN as the user field)."""

        when = time.strftime("%d/%b/%Y:%H:%M:%S +0000", time.gmtime(self.timestamp))
        user = self.client_dn or "-"
        return (
            f'{self.remote_addr} - "{user}" [{when}] '
            f'"{self.method} {self.path} HTTP/1.1" {self.status} {self.response_bytes} '
            f"{self.duration_s * 1000:.3f}ms"
        )


class AccessLog:
    """Thread-safe bounded access log with optional file mirroring."""

    def __init__(self, *, capacity: int = 10_000, path: str | None = None) -> None:
        self._entries: deque[AccessLogEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._path = Path(path) if path else None
        self._counts: dict[int, int] = {}

    def record(self, entry: AccessLogEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            self._counts[entry.status] = self._counts.get(entry.status, 0) + 1
        if self._path is not None:
            with self._path.open("a", encoding="utf-8") as fh:
                fh.write(entry.common_log_line() + "\n")

    def log(self, *, remote_addr: str, client_dn: str | None, method: str, path: str,
            status: int, response_bytes: int, duration_s: float) -> AccessLogEntry:
        entry = AccessLogEntry(
            timestamp=time.time(),
            remote_addr=remote_addr,
            client_dn=client_dn,
            method=method,
            path=path,
            status=status,
            response_bytes=response_bytes,
            duration_s=duration_s,
        )
        self.record(entry)
        return entry

    def entries(self) -> list[AccessLogEntry]:
        with self._lock:
            return list(self._entries)

    def status_counts(self) -> dict[int, int]:
        with self._lock:
            return dict(self._counts)

    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def error_rate(self) -> float:
        with self._lock:
            total = sum(self._counts.values())
            if not total:
                return 0.0
            errors = sum(c for status, c in self._counts.items() if status >= 400)
            return errors / total
