"""In-process loopback transport.

The paper's performance test measures "the overhead that the PClarens server
system imposes on service request, with control passing through all parts of
the server used by a typical service" — not the kernel's TCP stack.  The
loopback transport does exactly that: a client-side connection object passes
:class:`~repro.httpd.message.HTTPRequest` values straight into the server's
handler callable (the same callable the socket server uses) and returns the
:class:`~repro.httpd.message.HTTPResponse`.

When TLS is enabled the request and response bodies really are run through
the simulated record layer (serialize → encrypt → decrypt → parse) so the
encryption overhead benchmark measures genuine extra work, and the verified
client DN is attached to the request exactly as Apache's mod_ssl would have
exported it.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.httpd.message import HTTPRequest, HTTPResponse
from repro.httpd.tls import TLSChannel, TLSContext, perform_handshake

__all__ = ["LoopbackTransport", "LoopbackConnection"]

Handler = Callable[[HTTPRequest], HTTPResponse]


class LoopbackConnection:
    """One client "connection" to a loopback transport.

    A connection mirrors an HTTP keep-alive connection: it may carry many
    requests, optionally protected by one TLS handshake performed at
    connection setup (as with a real TLS connection, the handshake cost is
    paid once and the per-request cost is the record layer).
    """

    def __init__(self, transport: "LoopbackTransport",
                 client_tls: TLSContext | None = None) -> None:
        self._transport = transport
        self._client_channel: TLSChannel | None = None
        self._server_channel: TLSChannel | None = None
        self._client_dn: str | None = None
        self.requests_sent = 0
        if transport.server_tls is not None:
            client_ctx = client_tls or TLSContext(trust_store=transport.client_trust_store)
            if client_ctx.trust_store is None:
                client_ctx.trust_store = transport.client_trust_store
            client_channel, server_channel = perform_handshake(client_ctx, transport.server_tls)
            self._client_channel = client_channel
            self._server_channel = server_channel
            self._client_dn = server_channel.client_dn
        elif client_tls is not None and client_tls.credential is not None:
            # Unencrypted transport but the caller supplied a credential: the
            # DN still travels with the request (matching tests that exercise
            # authenticated but unencrypted deployments).
            self._client_dn = str(client_tls.credential.certificate.subject)

    @property
    def client_dn(self) -> str | None:
        return self._client_dn

    @property
    def encrypted(self) -> bool:
        return self._client_channel is not None

    def request(self, request: HTTPRequest) -> HTTPResponse:
        """Send one request and return the response."""

        self.requests_sent += 1
        if self._client_channel is None:
            if self._client_dn is not None and request.client_dn is None:
                request.client_dn = self._client_dn
            return self._transport.handle(request)

        # Encrypted path: serialize, wrap, unwrap server-side, parse, handle,
        # then do the reverse for the response.  This is where the "up to 50%"
        # SSL overhead of the paper comes from.
        assert self._server_channel is not None
        wire = self._client_channel.wrap(request.to_bytes())
        server_plain = self._server_channel.unwrap(wire)
        server_request = HTTPRequest.from_bytes(server_plain)
        server_request.client_dn = self._client_dn
        server_request.remote_addr = request.remote_addr
        response = self._transport.handle(server_request)
        wire_response = self._server_channel.wrap(response.to_bytes())
        plain_response = self._client_channel.unwrap(wire_response)
        return HTTPResponse.from_bytes(plain_response)

    def close(self) -> None:
        self._client_channel = None
        self._server_channel = None


class LoopbackTransport:
    """A server-side endpoint that accepts loopback connections."""

    def __init__(self, handler: Handler, *,
                 server_tls: TLSContext | None = None,
                 client_trust_store=None) -> None:
        self._handler = handler
        self.server_tls = server_tls
        #: Trust store handed to clients that do not bring their own, so the
        #: common case "connect to this server securely" needs no ceremony.
        self.client_trust_store = client_trust_store
        self._stats_lock = threading.Lock()
        self.requests_handled = 0

    def connect(self, client_tls: TLSContext | None = None) -> LoopbackConnection:
        """Open a new (keep-alive) connection to this transport."""

        return LoopbackConnection(self, client_tls=client_tls)

    def handle(self, request: HTTPRequest) -> HTTPResponse:
        with self._stats_lock:
            self.requests_handled += 1
        return self._handler(request)
