"""Zero-copy-style file payloads.

The paper notes that for remote file access "Network I/O is handed off to the
web server, which uses the zero-copy ``sendfile()`` system call where
available to minimize CPU usage and increase throughput".  A
:class:`FilePayload` defers reading the file: the socket server can hand the
file descriptor to ``os.sendfile`` directly, and the loopback transport can
stream it in large chunks without building the whole body in memory.
The file-throughput benchmark (TXT-SC03 in DESIGN.md) compares this path to
the chunked ``file.read()`` RPC path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["FilePayload", "DEFAULT_CHUNK_SIZE"]

DEFAULT_CHUNK_SIZE = 1 << 20  # 1 MiB


@dataclass
class FilePayload:
    """A region of a file to be sent as a response body."""

    path: str
    offset: int = 0
    length: int = -1  # -1 means "to end of file"
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        path = Path(self.path)
        if not path.is_file():
            raise FileNotFoundError(f"no such file: {self.path}")
        size = path.stat().st_size
        if self.offset < 0 or self.offset > size:
            raise ValueError(f"offset {self.offset} outside file of size {size}")
        if self.length < 0:
            self.length = size - self.offset
        else:
            self.length = min(self.length, size - self.offset)

    # -- consumption ---------------------------------------------------------
    def read_all(self) -> bytes:
        """Materialize the payload (used by the loopback transport and tests)."""

        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            return fh.read(self.length)

    def chunks(self) -> Iterator[bytes]:
        """Yield the payload in ``chunk_size`` pieces without loading it all."""

        remaining = self.length
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            while remaining > 0:
                chunk = fh.read(min(self.chunk_size, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
                yield chunk

    def sendfile_to(self, sock) -> int:
        """Send the payload over a socket, using ``os.sendfile`` when available.

        Returns the number of bytes sent.  Falls back to chunked ``send`` when
        the platform or socket type does not support ``sendfile``.
        """

        sent_total = 0
        with open(self.path, "rb") as fh:
            if hasattr(os, "sendfile"):
                try:
                    offset = self.offset
                    remaining = self.length
                    while remaining > 0:
                        sent = os.sendfile(sock.fileno(), fh.fileno(), offset, remaining)
                        if sent == 0:
                            break
                        offset += sent
                        remaining -= sent
                        sent_total += sent
                    return sent_total
                except (OSError, ValueError):
                    sent_total = 0  # fall back below
            fh.seek(self.offset)
            remaining = self.length
            while remaining > 0:
                chunk = fh.read(min(self.chunk_size, remaining))
                if not chunk:
                    break
                sock.sendall(chunk)
                remaining -= len(chunk)
                sent_total += len(chunk)
        return sent_total
