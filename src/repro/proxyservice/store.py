"""Password-protected storage of proxy certificates.

The store keeps each proxy encrypted at rest under a key derived from the
owner's chosen password (PBKDF2-HMAC-SHA256 + the same keystream cipher the
simulated TLS layer uses), keyed by the owner DN.  Retrieval requires the DN
and the password — exactly the MyProxy-style login flow the paper describes.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import struct
import time
from typing import Any

from repro.database import Database
from repro.pki.proxy import ProxyCertificate

__all__ = ["ProxyStore", "ProxyStoreError"]

_PBKDF2_ITERATIONS = 20_000
_KEYSTREAM_BLOCK = 64


class ProxyStoreError(Exception):
    """Raised for missing proxies or bad passwords."""


def _derive_key(password: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", password.encode(), salt, _PBKDF2_ITERATIONS)


def _keystream(key: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while len(blocks) * _KEYSTREAM_BLOCK < length:
        blocks.append(hmac.new(key, struct.pack(">Q", counter), hashlib.sha512).digest())
        counter += 1
    return b"".join(blocks)[:length]


def _encrypt(key: bytes, plaintext: bytes) -> bytes:
    stream = _keystream(key, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    mac = hmac.new(key, ciphertext, hashlib.sha256).digest()[:16]
    return ciphertext + mac


def _decrypt(key: bytes, blob: bytes) -> bytes:
    if len(blob) < 16:
        raise ProxyStoreError("stored proxy blob is truncated")
    ciphertext, mac = blob[:-16], blob[-16:]
    expected = hmac.new(key, ciphertext, hashlib.sha256).digest()[:16]
    if not hmac.compare_digest(mac, expected):
        raise ProxyStoreError("incorrect password for stored proxy")
    stream = _keystream(key, len(ciphertext))
    return bytes(a ^ b for a, b in zip(ciphertext, stream))


class ProxyStore:
    """Database-backed, password-protected proxy storage."""

    def __init__(self, database: Database) -> None:
        self._table = database.table("stored_proxies")
        self._table.create_index("owner_dn")

    # -- storage ----------------------------------------------------------------------
    def store(self, owner_dn: str, proxy: ProxyCertificate, password: str) -> dict[str, Any]:
        """Encrypt and store a proxy under (owner DN, password)."""

        if not password:
            raise ProxyStoreError("a non-empty password is required to store a proxy")
        salt = os.urandom(16)
        key = _derive_key(password, salt)
        plaintext = json.dumps(proxy.to_dict()).encode()
        blob = _encrypt(key, plaintext)
        record = {
            "owner_dn": str(owner_dn),
            "salt": base64.b64encode(salt).decode("ascii"),
            "blob": base64.b64encode(blob).decode("ascii"),
            "stored_at": time.time(),
            "not_after": proxy.certificate.not_after,
            "limited": proxy.limited,
            "delegation_depth": proxy.delegation_depth,
        }
        self._table.put(str(owner_dn), record)
        return {"owner_dn": str(owner_dn), "not_after": proxy.certificate.not_after}

    def retrieve(self, owner_dn: str, password: str) -> ProxyCertificate:
        """Decrypt and return the stored proxy for (owner DN, password)."""

        record = self._table.get(str(owner_dn), None)
        if record is None:
            raise ProxyStoreError(f"no proxy stored for {owner_dn}")
        salt = base64.b64decode(record["salt"])
        blob = base64.b64decode(record["blob"])
        key = _derive_key(password, salt)
        plaintext = _decrypt(key, blob)
        try:
            data = json.loads(plaintext.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProxyStoreError("stored proxy payload is corrupt") from exc
        return ProxyCertificate.from_dict(data)

    def delete(self, owner_dn: str) -> bool:
        return self._table.delete(str(owner_dn))

    def info(self, owner_dn: str) -> dict[str, Any] | None:
        """Metadata about a stored proxy (no secret material)."""

        record = self._table.get(str(owner_dn), None)
        if record is None:
            return None
        return {
            "owner_dn": record["owner_dn"],
            "stored_at": record["stored_at"],
            "not_after": record["not_after"],
            "limited": record["limited"],
            "delegation_depth": record["delegation_depth"],
        }

    def owners(self) -> list[str]:
        return sorted(r["owner_dn"] for r in self._table.all())

    def purge_expired(self, when: float | None = None) -> int:
        when = time.time() if when is None else when
        removed = 0
        for key, record in self._table.items():
            if float(record.get("not_after", 0)) < when:
                if self._table.delete(key):
                    removed += 1
        return removed
