"""The ``proxy`` service.

Methods:

* ``proxy.store``    -- store a proxy certificate under a password.
* ``proxy.retrieve`` -- retrieve a stored proxy (DN + password).
* ``proxy.login``    -- create a session from a stored proxy, "by only knowing
  the certificate distinguished name and password that was used to store it".
* ``proxy.attach``   -- attach a stored proxy to the *current* session,
  renewing it and recording the delegation in the session attributes.
* ``proxy.info`` / ``proxy.delete`` / ``proxy.delegate`` -- housekeeping and
  delegation of a fresh (deeper) proxy from a stored one.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError, AuthenticationError, NotFoundError
from repro.core.service import ClarensService, rpc_method
from repro.pki.proxy import ProxyCertificate, issue_proxy, verify_proxy_chain
from repro.pki.certificate import VerificationError
from repro.proxyservice.store import ProxyStore, ProxyStoreError

__all__ = ["ProxyService"]


class ProxyService(ClarensService):
    """Proxy-certificate storage, retrieval, login and delegation."""

    service_name = "proxy"

    def __init__(self, server) -> None:
        super().__init__(server)
        self.store_backend = ProxyStore(server.db)

    # -- storage ----------------------------------------------------------------------
    @rpc_method(anonymous=True)
    def store(self, proxy: dict, password: str) -> dict[str, Any]:
        """Store a proxy certificate (dict form) under a password.

        The proxy chain is verified against the server's trust store before it
        is accepted, so the store never holds forged material.  Storing is
        allowed without a session because its whole point is to enable the
        first login.
        """

        proxy_cert = ProxyCertificate.from_dict(proxy)
        try:
            owner = verify_proxy_chain(proxy_cert, self.server.trust_store)
        except VerificationError as exc:
            raise AuthenticationError(f"refusing to store an invalid proxy: {exc}") from exc
        return self.store_backend.store(str(owner), proxy_cert, password)

    @rpc_method(anonymous=True)
    def retrieve(self, owner_dn: str, password: str) -> dict[str, Any]:
        """Retrieve a stored proxy (certificate plus unencrypted private key)."""

        try:
            proxy = self.store_backend.retrieve(owner_dn, password)
        except ProxyStoreError as exc:
            raise AuthenticationError(str(exc)) from exc
        return proxy.to_dict()

    @rpc_method(anonymous=True)
    def login(self, owner_dn: str, password: str) -> dict[str, Any]:
        """Create a session from a stored proxy (DN + password only)."""

        try:
            proxy = self.store_backend.retrieve(owner_dn, password)
        except ProxyStoreError as exc:
            raise AuthenticationError(str(exc)) from exc
        session = self.server.authenticator.login_with_proxy(proxy)
        return {"session_id": session.session_id, "dn": session.dn,
                "expires": session.expires, "method": session.method}

    @rpc_method()
    def attach(self, ctx: CallContext, owner_dn: str, password: str) -> dict[str, Any]:
        """Attach a stored proxy to the current session (renewal / delegation).

        The stored proxy must belong to the session's DN; attaching renews the
        session and records the proxy's expiry in the session attributes so
        services can honour delegation.
        """

        if ctx.session is None:
            raise AuthenticationError("proxy.attach requires an existing session")
        try:
            proxy = self.store_backend.retrieve(owner_dn, password)
        except ProxyStoreError as exc:
            raise AuthenticationError(str(exc)) from exc
        if proxy.owner_dn != ctx.require_dn() and not self.server.vo.is_admin(ctx.require_dn()):
            raise AccessDeniedError("the stored proxy belongs to a different identity")
        session = self.server.sessions.renew(ctx.session.session_id)
        self.server.sessions.set_attribute(session.session_id, "proxy", {
            "owner_dn": str(proxy.owner_dn),
            "not_after": proxy.certificate.not_after,
            "limited": proxy.limited,
            "delegation_depth": proxy.delegation_depth,
        })
        return {"session_id": session.session_id, "expires": session.expires,
                "proxy_not_after": proxy.certificate.not_after}

    # -- delegation ---------------------------------------------------------------------
    @rpc_method()
    def delegate(self, ctx: CallContext, owner_dn: str, password: str,
                 lifetime: float = 3600.0, limited: bool = True) -> dict[str, Any]:
        """Issue a delegated (deeper) proxy from a stored proxy and return it.

        This lets a job or collaborator "use the proxy on behalf of the user"
        without ever seeing the original credential.
        """

        caller = ctx.require_dn()
        try:
            proxy = self.store_backend.retrieve(owner_dn, password)
        except ProxyStoreError as exc:
            raise AuthenticationError(str(exc)) from exc
        if proxy.owner_dn != caller and not self.server.vo.is_admin(caller):
            raise AccessDeniedError("cannot delegate from a proxy you do not own")
        delegated = issue_proxy(proxy.credential, lifetime=float(lifetime),
                                limited=bool(limited) or proxy.limited)
        return delegated.to_dict()

    # -- housekeeping ------------------------------------------------------------------------
    @rpc_method()
    def info(self, ctx: CallContext, owner_dn: str = "") -> dict[str, Any]:
        """Metadata about a stored proxy (defaults to the caller's own)."""

        target = owner_dn or ctx.require_dn()
        if target != ctx.require_dn() and not self.server.vo.is_admin(ctx.require_dn()):
            raise AccessDeniedError("cannot inspect another identity's stored proxy")
        info = self.store_backend.info(target)
        if info is None:
            raise NotFoundError(f"no proxy stored for {target}")
        return info

    @rpc_method()
    def delete(self, ctx: CallContext, owner_dn: str = "") -> bool:
        """Delete a stored proxy (your own, or any as an administrator)."""

        target = owner_dn or ctx.require_dn()
        if target != ctx.require_dn() and not self.server.vo.is_admin(ctx.require_dn()):
            raise AccessDeniedError("cannot delete another identity's stored proxy")
        return self.store_backend.delete(target)

    @rpc_method()
    def list_owners(self, ctx: CallContext) -> list[str]:
        """DNs with stored proxies (administrators only)."""

        self.server.require_admin(ctx)
        return self.store_backend.owners()

    @rpc_method()
    def purge_expired(self, ctx: CallContext) -> int:
        """Remove expired stored proxies (administrators only)."""

        self.server.require_admin(ctx)
        return self.store_backend.purge_expired()
