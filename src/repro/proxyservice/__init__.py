"""The proxy service (paper section 2.6).

Stores proxy certificates server-side so a user can later log in "by only
knowing the certificate distinguished name and password that was used to
store it", can let others act on their behalf (delegation), and can attach a
stored proxy to an existing session to renew it or add delegation rights to a
session initiated with a plain browser certificate.
"""

from __future__ import annotations

from repro.proxyservice.service import ProxyService
from repro.proxyservice.store import ProxyStore, ProxyStoreError

__all__ = ["ProxyStore", "ProxyStoreError", "ProxyService"]
