"""The ``.clarens_user_map`` file.

"Each mapping tuple consists of a system user name string, followed by a list
of user distinguished name strings, a list of group name strings, and a final
list reserved for future use."  The on-disk format used here is one mapping
per line::

    joe : /DC=org/DC=doegrids/OU=People/CN=Joe User ; cms.admins, cms.ops ;

i.e. ``user : dn[,dn...] ; group[,group...] ; reserved`` with ``#`` comments.
A DN entry may be a prefix, like VO membership lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.pki.dn import DN, DNParseError

__all__ = ["UserMapEntry", "UserMap", "UserMapError"]


class UserMapError(Exception):
    """Raised when the user map file is malformed."""


@dataclass
class UserMapEntry:
    """One mapping tuple: local user, DNs, groups, reserved."""

    user: str
    dns: list[str] = field(default_factory=list)
    groups: list[str] = field(default_factory=list)
    reserved: list[str] = field(default_factory=list)

    def matches_dn(self, dn: str) -> bool:
        for listed in self.dns:
            if listed == dn:
                return True
            try:
                if DN.parse(listed).is_prefix_of(DN.parse(dn)):
                    return True
            except DNParseError:
                continue
        return False

    def to_line(self) -> str:
        return (f"{self.user} : {','.join(self.dns)} ; "
                f"{','.join(self.groups)} ; {','.join(self.reserved)}")


class UserMap:
    """The parsed user map with DN and group based resolution."""

    def __init__(self, entries: Iterable[UserMapEntry] = ()) -> None:
        self.entries: list[UserMapEntry] = list(entries)

    # -- parsing --------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "UserMap":
        entries = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split(";")]
            head = parts[0]
            if ":" not in head:
                raise UserMapError(f"line {lineno}: expected 'user : dn,...' but got {head!r}")
            user, _, dn_part = head.partition(":")
            user = user.strip()
            if not user:
                raise UserMapError(f"line {lineno}: empty local user name")
            dns = [d.strip() for d in dn_part.split(",") if d.strip()]
            groups = []
            reserved = []
            if len(parts) > 1:
                groups = [g.strip() for g in parts[1].split(",") if g.strip()]
            if len(parts) > 2:
                reserved = [r.strip() for r in parts[2].split(",") if r.strip()]
            entries.append(UserMapEntry(user=user, dns=dns, groups=groups, reserved=reserved))
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path) -> "UserMap":
        path = Path(path)
        if not path.exists():
            return cls([])
        return cls.parse(path.read_text())

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        lines = ["# Clarens shell service user map",
                 "# user : dn[,dn...] ; group[,group...] ; reserved"]
        lines.extend(entry.to_line() for entry in self.entries)
        path.write_text("\n".join(lines) + "\n")
        return path

    # -- resolution -------------------------------------------------------------------
    def resolve(self, dn: str,
                group_membership: Callable[[str, str], bool] | None = None) -> str | None:
        """Map a DN to a local user name, or None when unmapped.

        DN entries are checked first (most specific); group entries match when
        ``group_membership(dn, group)`` is true for any listed group.
        """

        for entry in self.entries:
            if entry.matches_dn(dn):
                return entry.user
        if group_membership is not None:
            for entry in self.entries:
                if any(group_membership(dn, group) for group in entry.groups):
                    return entry.user
        return None

    def add(self, entry: UserMapEntry) -> None:
        self.entries.append(entry)

    def users(self) -> list[str]:
        return sorted({entry.user for entry in self.entries})

    def __len__(self) -> int:
        return len(self.entries)
