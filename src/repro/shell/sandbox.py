"""Per-user command sandboxes.

"Execution takes place in a sandbox owned by the local system user.  This
sandbox can be created or re-used for subsequent commands and is visible to
the file service."  A sandbox here is a directory under the server's shell
root, named after the mapped local user, which the file service can reach
because the shell root lives under (or is registered with) the virtual file
root.
"""

from __future__ import annotations

import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Sandbox", "SandboxManager"]


@dataclass
class Sandbox:
    """One user's sandbox directory."""

    user: str
    path: Path
    created: float = field(default_factory=time.time)
    commands_run: int = 0

    def exists(self) -> bool:
        return self.path.is_dir()

    def to_record(self) -> dict:
        return {
            "user": self.user,
            "path": str(self.path),
            "created": self.created,
            "commands_run": self.commands_run,
        }


class SandboxManager:
    """Creates and re-uses sandboxes under a root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sandboxes: dict[str, Sandbox] = {}
        self._lock = threading.Lock()
        # Re-adopt sandboxes left by a previous server process.
        for child in self.root.iterdir():
            if child.is_dir():
                self._sandboxes[child.name] = Sandbox(user=child.name, path=child)

    def get_or_create(self, user: str) -> Sandbox:
        """Return the user's sandbox, creating the directory on first use."""

        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in user)
        if not safe:
            raise ValueError("cannot create a sandbox for an empty user name")
        with self._lock:
            sandbox = self._sandboxes.get(safe)
            if sandbox is None or not sandbox.exists():
                path = self.root / safe
                path.mkdir(parents=True, exist_ok=True)
                sandbox = Sandbox(user=safe, path=path)
                self._sandboxes[safe] = sandbox
            return sandbox

    def get(self, user: str) -> Sandbox | None:
        with self._lock:
            return self._sandboxes.get(user)

    def destroy(self, user: str) -> bool:
        with self._lock:
            sandbox = self._sandboxes.pop(user, None)
        if sandbox is None:
            return False
        shutil.rmtree(sandbox.path, ignore_errors=True)
        return True

    def list_sandboxes(self) -> list[Sandbox]:
        with self._lock:
            return list(self._sandboxes.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sandboxes)
