"""A confined command interpreter.

The original shell service forked ``/bin/sh`` as the mapped local user.  A
portable reproduction cannot switch UNIX users, so commands run through this
allow-listed interpreter instead: a small set of file-oriented commands
(``ls``, ``cat``, ``echo``, ``mkdir``, ``rm``, ``cp``, ``mv``, ``touch``,
``wc``, ``grep``, ``find``, ``pwd``, ``head``, ``tail``) implemented directly
in Python and confined to the caller's sandbox directory.  Command syntax
supports arguments with shell-style quoting, ``>`` / ``>>`` redirection into
sandbox files, and ``&&`` sequencing — enough to drive the job-service and
analysis examples.
"""

from __future__ import annotations

import fnmatch
import shlex
import shutil
from dataclasses import dataclass
from pathlib import Path

__all__ = ["CommandResult", "ShellInterpreter", "ShellCommandError", "ALLOWED_COMMANDS"]

ALLOWED_COMMANDS = (
    "ls", "cat", "echo", "mkdir", "rm", "cp", "mv", "touch",
    "wc", "grep", "find", "pwd", "head", "tail",
)


class ShellCommandError(Exception):
    """Raised for unknown commands or path escapes."""


@dataclass
class CommandResult:
    """The outcome of one command line."""

    command: str
    exit_code: int
    stdout: str
    stderr: str

    def to_record(self) -> dict:
        return {
            "command": self.command,
            "exit_code": self.exit_code,
            "stdout": self.stdout,
            "stderr": self.stderr,
        }


class ShellInterpreter:
    """Executes allow-listed commands inside one sandbox directory."""

    def __init__(self, sandbox_dir: str | Path) -> None:
        self.root = Path(sandbox_dir).resolve()
        if not self.root.is_dir():
            raise ShellCommandError(f"sandbox directory {self.root} does not exist")
        self.cwd = self.root

    # -- path containment -----------------------------------------------------------
    def _resolve(self, arg: str) -> Path:
        candidate = (self.cwd / arg).resolve() if not arg.startswith("/") \
            else (self.root / arg.lstrip("/")).resolve()
        if candidate != self.root and self.root not in candidate.parents:
            raise ShellCommandError(f"path {arg!r} escapes the sandbox")
        return candidate

    def _display(self, path: Path) -> str:
        if path == self.root:
            return "/"
        return "/" + str(path.relative_to(self.root))

    # -- execution --------------------------------------------------------------------
    def run(self, command_line: str) -> CommandResult:
        """Run a command line (possibly ``&&``-chained); returns the last result."""

        segments = [seg.strip() for seg in command_line.split("&&")]
        result = CommandResult(command=command_line, exit_code=0, stdout="", stderr="")
        outputs = []
        for segment in segments:
            if not segment:
                continue
            result = self._run_single(segment)
            outputs.append(result.stdout)
            if result.exit_code != 0:
                break
        combined = "".join(outputs[:-1]) + (result.stdout if outputs else "")
        return CommandResult(command=command_line, exit_code=result.exit_code,
                             stdout=combined, stderr=result.stderr)

    def _run_single(self, segment: str) -> CommandResult:
        try:
            tokens = shlex.split(segment)
        except ValueError as exc:
            return CommandResult(segment, 2, "", f"parse error: {exc}\n")
        if not tokens:
            return CommandResult(segment, 0, "", "")

        # Output redirection.
        redirect_path: Path | None = None
        append = False
        if ">>" in tokens:
            idx = tokens.index(">>")
            append = True
        elif ">" in tokens:
            idx = tokens.index(">")
        else:
            idx = -1
        if idx >= 0:
            if idx + 1 >= len(tokens):
                return CommandResult(segment, 2, "", "redirection without a target\n")
            try:
                redirect_path = self._resolve(tokens[idx + 1])
            except ShellCommandError as exc:
                return CommandResult(segment, 1, "", f"{exc}\n")
            tokens = tokens[:idx]

        name, *args = tokens
        if name not in ALLOWED_COMMANDS:
            return CommandResult(segment, 127, "",
                                 f"{name}: command not found (allowed: {', '.join(ALLOWED_COMMANDS)})\n")
        handler = getattr(self, f"_cmd_{name}")
        try:
            stdout = handler(args)
            code = 0
            stderr = ""
        except ShellCommandError as exc:
            stdout, code, stderr = "", 1, f"{exc}\n"
        except FileNotFoundError as exc:
            stdout, code, stderr = "", 1, f"{exc}\n"
        except OSError as exc:
            stdout, code, stderr = "", 1, f"{exc}\n"

        if redirect_path is not None and code == 0:
            redirect_path.parent.mkdir(parents=True, exist_ok=True)
            mode = "a" if append else "w"
            with redirect_path.open(mode, encoding="utf-8") as fh:
                fh.write(stdout)
            stdout = ""
        return CommandResult(segment, code, stdout, stderr)

    # -- individual commands --------------------------------------------------------------
    def _cmd_pwd(self, args: list[str]) -> str:
        return self._display(self.cwd) + "\n"

    def _cmd_echo(self, args: list[str]) -> str:
        return " ".join(args) + "\n"

    def _cmd_ls(self, args: list[str]) -> str:
        target = self._resolve(args[0]) if args else self.cwd
        if target.is_file():
            return self._display(target) + "\n"
        if not target.is_dir():
            raise ShellCommandError(f"ls: no such file or directory: {args[0] if args else '.'}")
        names = sorted(p.name + ("/" if p.is_dir() else "") for p in target.iterdir())
        return "\n".join(names) + ("\n" if names else "")

    def _cmd_cat(self, args: list[str]) -> str:
        if not args:
            raise ShellCommandError("cat: missing file operand")
        out = []
        for arg in args:
            path = self._resolve(arg)
            if not path.is_file():
                raise ShellCommandError(f"cat: no such file: {arg}")
            out.append(path.read_text())
        return "".join(out)

    def _cmd_mkdir(self, args: list[str]) -> str:
        if not args:
            raise ShellCommandError("mkdir: missing operand")
        for arg in args:
            if arg == "-p":
                continue
            self._resolve(arg).mkdir(parents=True, exist_ok=True)
        return ""

    def _cmd_touch(self, args: list[str]) -> str:
        if not args:
            raise ShellCommandError("touch: missing operand")
        for arg in args:
            path = self._resolve(arg)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.touch()
        return ""

    def _cmd_rm(self, args: list[str]) -> str:
        recursive = "-r" in args or "-rf" in args
        targets = [a for a in args if not a.startswith("-")]
        if not targets:
            raise ShellCommandError("rm: missing operand")
        for arg in targets:
            path = self._resolve(arg)
            if path == self.root:
                raise ShellCommandError("rm: refusing to remove the sandbox root")
            if path.is_dir():
                if not recursive:
                    raise ShellCommandError(f"rm: {arg} is a directory (use -r)")
                shutil.rmtree(path)
            elif path.exists():
                path.unlink()
            else:
                raise ShellCommandError(f"rm: no such file: {arg}")
        return ""

    def _cmd_cp(self, args: list[str]) -> str:
        if len(args) != 2:
            raise ShellCommandError("cp: expected source and destination")
        src = self._resolve(args[0])
        dst = self._resolve(args[1])
        if src.is_dir():
            shutil.copytree(src, dst, dirs_exist_ok=True)
        else:
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy2(src, dst)
        return ""

    def _cmd_mv(self, args: list[str]) -> str:
        if len(args) != 2:
            raise ShellCommandError("mv: expected source and destination")
        src = self._resolve(args[0])
        dst = self._resolve(args[1])
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.move(str(src), str(dst))
        return ""

    def _cmd_wc(self, args: list[str]) -> str:
        targets = [a for a in args if not a.startswith("-")]
        if not targets:
            raise ShellCommandError("wc: missing file operand")
        out = []
        for arg in targets:
            path = self._resolve(arg)
            text = path.read_text()
            out.append(f"{len(text.splitlines())} {len(text.split())} {len(text)} {arg}")
        return "\n".join(out) + "\n"

    def _cmd_grep(self, args: list[str]) -> str:
        if len(args) < 2:
            raise ShellCommandError("grep: expected pattern and file")
        pattern, *files = args
        out = []
        for arg in files:
            path = self._resolve(arg)
            for line in path.read_text().splitlines():
                if pattern in line:
                    prefix = f"{arg}:" if len(files) > 1 else ""
                    out.append(prefix + line)
        return "\n".join(out) + ("\n" if out else "")

    def _cmd_find(self, args: list[str]) -> str:
        start = self.cwd
        pattern = "*"
        remaining = list(args)
        if remaining and not remaining[0].startswith("-"):
            start = self._resolve(remaining.pop(0))
        if "-name" in remaining:
            idx = remaining.index("-name")
            if idx + 1 < len(remaining):
                pattern = remaining[idx + 1]
        matches = []
        for path in sorted(start.rglob("*")):
            if fnmatch.fnmatch(path.name, pattern):
                matches.append(self._display(path))
        return "\n".join(matches) + ("\n" if matches else "")

    def _cmd_head(self, args: list[str]) -> str:
        return self._head_tail(args, head=True)

    def _cmd_tail(self, args: list[str]) -> str:
        return self._head_tail(args, head=False)

    def _head_tail(self, args: list[str], *, head: bool) -> str:
        count = 10
        files = []
        it = iter(args)
        for arg in it:
            if arg == "-n":
                count = int(next(it, "10"))
            elif arg.startswith("-"):
                count = int(arg[1:])
            else:
                files.append(arg)
        if not files:
            raise ShellCommandError("head/tail: missing file operand")
        out = []
        for arg in files:
            lines = self._resolve(arg).read_text().splitlines()
            chosen = lines[:count] if head else lines[-count:]
            out.extend(chosen)
        return "\n".join(out) + ("\n" if out else "")
