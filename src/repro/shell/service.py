"""The ``shell`` service.

``shell.cmd`` executes a command line in the caller's sandbox (after mapping
the caller DN to a local user through the ``.clarens_user_map``);
``shell.cmd_info`` returns "the top directory of the sandbox that it can use
to issue file service commands such as uploading and downloading files" —
i.e. the sandbox path expressed relative to the file service's virtual root.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.context import CallContext
from repro.core.errors import AccessDeniedError
from repro.core.service import ClarensService, rpc_method
from repro.shell.interpreter import ALLOWED_COMMANDS, ShellInterpreter
from repro.shell.sandbox import SandboxManager
from repro.shell.usermap import UserMap, UserMapEntry

__all__ = ["ShellService"]


class ShellService(ClarensService):
    """Sandboxed remote command execution."""

    service_name = "shell"

    def __init__(self, server) -> None:
        super().__init__(server)
        self.sandboxes = SandboxManager(server.shell_root)
        map_path = server.config.user_map_path
        if map_path:
            self.user_map = UserMap.load(map_path)
        else:
            self.user_map = UserMap()
        # Server administrators are always mapped (to the "clarens" account)
        # so a freshly configured server is usable without a map file.
        for admin_dn in server.config.admins:
            if self.user_map.resolve(admin_dn) is None:
                self.user_map.add(UserMapEntry(user="clarens", dns=[admin_dn]))

    # -- mapping -------------------------------------------------------------------
    def _map_user(self, dn: str) -> str:
        user = self.user_map.resolve(dn, group_membership=self.server.vo.is_member)
        if user is None:
            raise AccessDeniedError(
                f"{dn} is not mapped to a local user in .clarens_user_map")
        return user

    def _interpreter_for(self, ctx: CallContext) -> tuple[str, ShellInterpreter]:
        dn = ctx.require_dn()
        user = self._map_user(dn)
        sandbox = self.sandboxes.get_or_create(user)
        return user, ShellInterpreter(sandbox.path)

    # -- methods -------------------------------------------------------------------
    @rpc_method()
    def cmd(self, ctx: CallContext, command_line: str) -> dict[str, Any]:
        """Execute a command line in the caller's sandbox; returns the result."""

        user, interpreter = self._interpreter_for(ctx)
        result = interpreter.run(command_line)
        sandbox = self.sandboxes.get_or_create(user)
        sandbox.commands_run += 1
        return result.to_record() | {"user": user}

    @rpc_method()
    def cmd_info(self, ctx: CallContext) -> dict[str, Any]:
        """Return the sandbox's top directory, as a file-service path when possible."""

        dn = ctx.require_dn()
        user = self._map_user(dn)
        sandbox = self.sandboxes.get_or_create(user)
        file_root = Path(self.server.file_root).resolve()
        sandbox_path = sandbox.path.resolve()
        try:
            virtual = "/" + str(sandbox_path.relative_to(file_root))
        except ValueError:
            virtual = ""
        return {
            "user": user,
            "sandbox": str(sandbox_path),
            "file_service_path": virtual,
            "commands_run": sandbox.commands_run,
        }

    @rpc_method()
    def allowed_commands(self, ctx: CallContext) -> list[str]:
        """The commands the confined interpreter accepts."""

        return list(ALLOWED_COMMANDS)

    @rpc_method()
    def whoami_local(self, ctx: CallContext) -> str:
        """The local user name the caller's DN maps to."""

        return self._map_user(ctx.require_dn())

    @rpc_method()
    def list_mappings(self, ctx: CallContext) -> list[dict[str, Any]]:
        """The user-map entries (administrators only)."""

        self.server.require_admin(ctx)
        return [
            {"user": e.user, "dns": list(e.dns), "groups": list(e.groups)}
            for e in self.user_map.entries
        ]

    @rpc_method()
    def add_mapping(self, ctx: CallContext, user: str, dns: list[str],
                    groups: list[str] = []) -> bool:
        """Add a mapping tuple (administrators only)."""

        self.server.require_admin(ctx)
        self.user_map.add(UserMapEntry(user=user, dns=list(dns), groups=list(groups or [])))
        if self.server.config.user_map_path:
            self.user_map.save(self.server.config.user_map_path)
        return True

    @rpc_method()
    def destroy_sandbox(self, ctx: CallContext, user: str = "") -> bool:
        """Destroy a sandbox (your own by default; others require admin)."""

        dn = ctx.require_dn()
        own_user = self._map_user(dn)
        target = user or own_user
        if target != own_user:
            self.server.require_admin(ctx)
        return self.sandboxes.destroy(target)
