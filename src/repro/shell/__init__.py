"""The shell service (paper section 2.5).

"The Shell provides a secure way for authorized clients to execute shell
commands on the server.  The command is executed by a designated local system
user" selected through the ``.clarens_user_map`` file, inside a sandbox that
is also "visible to the file service".

Because a test environment cannot switch local UNIX users, the reproduction
maps each DN to a *sandbox owner name* (the mapped "local user") and executes
commands with a built-in, allow-listed command interpreter confined to that
user's sandbox directory.  The mapping-file format, the sandbox lifecycle and
``shell.cmd_info`` semantics follow the paper; the substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from repro.shell.interpreter import CommandResult, ShellInterpreter
from repro.shell.sandbox import Sandbox, SandboxManager
from repro.shell.service import ShellService
from repro.shell.usermap import UserMap, UserMapEntry

__all__ = [
    "UserMap",
    "UserMapEntry",
    "Sandbox",
    "SandboxManager",
    "ShellInterpreter",
    "CommandResult",
    "ShellService",
]
