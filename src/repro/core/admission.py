"""Per-identity admission control for the request pipeline.

The paper's server served every request it could parse; under the ROADMAP's
"millions of users" target that is an invitation to collapse.  The admission
stage sheds load *per caller* instead: every identity (a certificate DN, or
the shared anonymous principal) owns a token bucket refilled at
``dispatch_rate_limit`` tokens/second up to ``dispatch_burst`` tokens, plus
an in-flight budget of ``dispatch_max_inflight`` concurrent requests.  A
request that finds the bucket empty (or the budget exhausted) is rejected
with :class:`~repro.core.errors.RetryLaterError` — a ``RETRY_LATER`` fault on
the wire, HTTP 429 on the plain endpoint — and a ``dispatch.throttled`` event
on the monitoring bus, so one hot client cannot starve the rest of the VO.

Both limits are off by default (0), matching the paper's open-door setup.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.core.errors import RetryLaterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.bus import MessageBus

__all__ = ["AdmissionController", "ANONYMOUS_IDENTITY"]

#: The shared principal all unauthenticated callers draw tokens from.
ANONYMOUS_IDENTITY = "<anonymous>"

#: Idle buckets are pruned once the table grows past this many identities.
_PRUNE_THRESHOLD = 4096


class _Bucket:
    """Token bucket plus in-flight counter for one identity."""

    __slots__ = ("tokens", "last_refill", "inflight")

    def __init__(self, tokens: float, now: float) -> None:
        self.tokens = tokens
        self.last_refill = now
        self.inflight = 0


class AdmissionController:
    """Token-bucket + in-flight admission, one bucket per identity."""

    def __init__(self, *, rate: float = 0.0, burst: float = 0.0,
                 max_inflight: int = 0, bus: "MessageBus | None" = None,
                 source: str = "",
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate < 0:
            raise ValueError("rate cannot be negative")
        if burst < 0:
            raise ValueError("burst cannot be negative")
        if max_inflight < 0:
            raise ValueError("max_inflight cannot be negative")
        self.rate = float(rate)
        #: Bucket capacity; with rate limiting on but no burst configured a
        #: caller may still fire one full second of traffic at once.  Clamped
        #: to >= 1 token: a fractional capacity could never hold the single
        #: token a request costs, rejecting everyone forever.
        self.burst = max(float(burst), 1.0) if burst > 0 else max(self.rate, 1.0)
        self.max_inflight = int(max_inflight)
        self.bus = bus
        self.source = source
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self.admitted = 0
        self.throttled = 0

    # -- the admission decision ----------------------------------------------
    def admit(self, identity: str | None, method: str) -> Callable[[], None]:
        """Admit one request for ``identity`` or raise RetryLaterError.

        Returns a release callable the caller must invoke when the request
        finishes (it returns the in-flight slot; tokens are not refunded).
        """

        identity = identity or ANONYMOUS_IDENTITY
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(identity)
            if bucket is None:
                if len(self._buckets) >= _PRUNE_THRESHOLD:
                    self._prune(now)
                bucket = self._buckets[identity] = _Bucket(self.burst, now)
            if self.rate > 0:
                bucket.tokens = min(self.burst,
                                    bucket.tokens + (now - bucket.last_refill) * self.rate)
                bucket.last_refill = now
            if self.max_inflight and bucket.inflight >= self.max_inflight:
                self.throttled += 1
                reason, retry_after = "inflight", 0.0
            elif self.rate > 0 and bucket.tokens < 1.0:
                self.throttled += 1
                reason, retry_after = "rate", (1.0 - bucket.tokens) / self.rate
            else:
                if self.rate > 0:
                    bucket.tokens -= 1.0
                bucket.inflight += 1
                self.admitted += 1
                return self._releaser(bucket)
        # Publish outside the lock: bus subscribers may be slow or re-entrant.
        self._publish_throttled(identity, method, reason, retry_after)
        raise RetryLaterError(
            f"request rate for {identity} exceeded ({reason} limit); retry later",
            retry_after=retry_after)

    def _releaser(self, bucket: _Bucket) -> Callable[[], None]:
        released = threading.Event()

        def release() -> None:
            if released.is_set():
                return
            released.set()
            with self._lock:
                bucket.inflight -= 1

        return release

    def _prune(self, now: float) -> None:
        """Drop idle buckets whose balance has refilled (lock held).

        Tokens are only materialised on admit, so an idle bucket's stored
        balance is stale; project the refill to now before judging fullness,
        or no bucket would ever qualify while rate limiting is on.
        """

        idle = []
        for identity, bucket in self._buckets.items():
            if bucket.inflight or now - bucket.last_refill < 1.0:
                continue
            tokens = bucket.tokens
            if self.rate > 0:
                tokens = min(self.burst,
                             tokens + (now - bucket.last_refill) * self.rate)
            if tokens >= self.burst - 1e-9:
                idle.append(identity)
        for identity in idle:
            del self._buckets[identity]

    def _publish_throttled(self, identity: str, method: str, reason: str,
                           retry_after: float) -> None:
        if self.bus is None:
            return
        try:
            self.bus.publish("dispatch.throttled", {
                "identity": identity,
                "method": method,
                "reason": reason,
                "retry_after": round(retry_after, 6),
            }, source=self.source)
        except Exception:  # noqa: BLE001 - monitoring must never kill dispatch
            pass

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "max_inflight": self.max_inflight,
                "identities": len(self._buckets),
                "admitted": self.admitted,
                "throttled": self.throttled,
            }
