"""Per-identity admission control for the request pipeline.

The paper's server served every request it could parse; under the ROADMAP's
"millions of users" target that is an invitation to collapse.  The admission
stage sheds load *per caller* instead: every identity (a certificate DN, or
the shared anonymous principal) owns a token bucket refilled at
``dispatch_rate_limit`` tokens/second up to ``dispatch_burst`` tokens, plus
an in-flight budget of ``dispatch_max_inflight`` concurrent requests.  A
request that finds the bucket empty (or the budget exhausted) is rejected
with :class:`~repro.core.errors.RetryLaterError` — a ``RETRY_LATER`` fault on
the wire, HTTP 429 on the plain endpoint — and a ``dispatch.throttled`` event
on the monitoring bus, so one hot client cannot starve the rest of the VO.

Both limits are off by default (0), matching the paper's open-door setup.

Two extensions ride on the same buckets: :meth:`AdmissionController.charge`
bills ``system.multicall`` batches one token per entry (the batch admits
once, then the pipeline charges the rest — batching amortizes parsing, not
the rate limit), and :meth:`AdmissionController.apply_shed` lets the fabric
layer (:mod:`repro.fabric.admission`) pre-throttle an identity that a *peer*
server just shed, so one hot client cannot fire a fresh burst at every
server in turn.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.core.errors import RetryLaterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.bus import MessageBus

__all__ = ["AdmissionController", "ANONYMOUS_IDENTITY"]

#: The shared principal all unauthenticated callers draw tokens from.
ANONYMOUS_IDENTITY = "<anonymous>"

#: Idle buckets are pruned once the table grows past this many identities.
_PRUNE_THRESHOLD = 4096


def _NOOP_RELEASE() -> None:
    """The release returned for exempt identities (nothing was reserved)."""


class _Bucket:
    """Token bucket plus in-flight and per-identity counters for one identity."""

    __slots__ = ("tokens", "last_refill", "inflight", "admitted", "throttled",
                 "shed")

    def __init__(self, tokens: float, now: float) -> None:
        self.tokens = tokens
        self.last_refill = now
        self.inflight = 0
        self.admitted = 0
        self.throttled = 0
        self.shed = 0


class AdmissionController:
    """Token-bucket + in-flight admission, one bucket per identity."""

    def __init__(self, *, rate: float = 0.0, burst: float = 0.0,
                 max_inflight: int = 0, bus: "MessageBus | None" = None,
                 source: str = "",
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate < 0:
            raise ValueError("rate cannot be negative")
        if burst < 0:
            raise ValueError("burst cannot be negative")
        if max_inflight < 0:
            raise ValueError("max_inflight cannot be negative")
        self.rate = float(rate)
        #: Bucket capacity; with rate limiting on but no burst configured a
        #: caller may still fire one full second of traffic at once.  Clamped
        #: to >= 1 token: a fractional capacity could never hold the single
        #: token a request costs, rejecting everyone forever.
        self.burst = max(float(burst), 1.0) if burst > 0 else max(self.rate, 1.0)
        self.max_inflight = int(max_inflight)
        self.bus = bus
        self.source = source
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        #: Predicates exempting infrastructure identities (fabric peer DNs)
        #: from every limit; see :meth:`add_exemption`.
        self._exemptions: list[Callable[[str], bool]] = []
        self.admitted = 0
        self.throttled = 0
        self.exempted = 0
        self.charged_tokens = 0
        self.sheds_applied = 0
        #: Shed adverts applied, counted per advertising server — answers
        #: "which peer is driving the fabric-wide shedding here".
        self.shed_sources: dict[str, int] = {}

    # -- the admission decision ----------------------------------------------
    def admit(self, identity: str | None, method: str) -> Callable[[], None]:
        """Admit one request for ``identity`` or raise RetryLaterError.

        Returns a release callable the caller must invoke when the request
        finishes (it returns the in-flight slot; tokens are not refunded).
        """

        identity = identity or ANONYMOUS_IDENTITY
        if self._is_exempt(identity):
            with self._lock:
                self.exempted += 1
            return _NOOP_RELEASE
        now = self._clock()
        with self._lock:
            bucket = self._refilled_bucket(identity, now)
            if self.max_inflight and bucket.inflight >= self.max_inflight:
                self.throttled += 1
                bucket.throttled += 1
                reason, retry_after = "inflight", 0.0
            elif self.rate > 0 and bucket.tokens < 1.0:
                self.throttled += 1
                bucket.throttled += 1
                reason, retry_after = "rate", (1.0 - bucket.tokens) / self.rate
            else:
                if self.rate > 0:
                    bucket.tokens -= 1.0
                bucket.inflight += 1
                self.admitted += 1
                bucket.admitted += 1
                return self._releaser(bucket)
        # Publish outside the lock: bus subscribers may be slow or re-entrant.
        self._publish_throttled(identity, method, reason, retry_after)
        raise RetryLaterError(
            f"request rate for {identity} exceeded ({reason} limit); retry later",
            retry_after=retry_after)

    def charge(self, identity: str | None, tokens: int, method: str = "", *,
               retry_cost: float | None = None) -> None:
        """Deduct ``tokens`` extra tokens for work already admitted.

        ``system.multicall`` admits as one request (one decode, one session
        check) but must pay one token *per entry* so batching cannot bypass
        ``dispatch_rate_limit``; the pipeline charges the N-1 remaining
        entries here.  A bucket too empty for the whole charge rejects it
        outright (nothing is deducted) with RetryLaterError, exactly like a
        throttled admit.

        ``retry_cost`` is the *total* tokens a retried attempt will need —
        for a multicall that is N, not N-1, because the retry pays the
        admission-stage token again.  The advertised ``retry_after`` waits
        for that total, so a client honoring it does not land back on an
        empty-by-one bucket forever.
        """

        if self.rate <= 0 or tokens <= 0:
            return
        identity = identity or ANONYMOUS_IDENTITY
        if self._is_exempt(identity):
            return
        need = float(tokens if retry_cost is None else retry_cost)
        now = self._clock()
        with self._lock:
            bucket = self._refilled_bucket(identity, now)
            if bucket.tokens < tokens:
                self.throttled += 1
                bucket.throttled += 1
                retry_after = max(0.0, need - bucket.tokens) / self.rate
            else:
                bucket.tokens -= tokens
                self.charged_tokens += tokens
                return
        self._publish_throttled(identity, method, "rate", retry_after)
        raise RetryLaterError(
            f"batch of {tokens + 1} entries exceeds the token balance for "
            f"{identity}; retry later", retry_after=retry_after)

    def apply_shed(self, identity: str | None, share: float = 0.0, *,
                   source: str = "") -> bool:
        """Pre-throttle ``identity`` on a peer's shed advert (fabric-wide).

        Clamps the identity's bucket down to ``share`` of the burst capacity
        so the next local request pays the refill wait the shedding server
        already imposed.  A no-op (returns False) without rate limiting —
        a shed advert must never install a limit the operator did not
        configure locally.
        """

        if self.rate <= 0:
            return False
        identity = identity or ANONYMOUS_IDENTITY
        if self._is_exempt(identity):
            return False
        now = self._clock()
        with self._lock:
            bucket = self._refilled_bucket(identity, now)
            bucket.tokens = min(bucket.tokens, max(0.0, share) * self.burst)
            bucket.last_refill = now
            bucket.shed += 1
            self.sheds_applied += 1
            if source:
                self.shed_sources[source] = \
                    self.shed_sources.get(source, 0) + 1
        return True

    def add_exemption(self, predicate: Callable[[str], bool]) -> None:
        """Exempt identities matching ``predicate`` from every limit.

        Used for infrastructure traffic whose volume is bounded elsewhere —
        the fabric registers its trusted peer DNs here, since gossip and
        catalogue-sync call rates are set by the fabric intervals, and a
        throttled fabric would mark healthy peers down.
        """

        self._exemptions.append(predicate)

    def is_exempt(self, identity: str) -> bool:
        """Whether ``identity`` bypasses every limit (see add_exemption)."""

        return self._is_exempt(identity)

    def _is_exempt(self, identity: str) -> bool:
        for predicate in self._exemptions:
            try:
                if predicate(identity):
                    return True
            except Exception:  # noqa: BLE001 - a broken predicate never blocks
                continue
        return False

    def _refilled_bucket(self, identity: str, now: float) -> _Bucket:
        """The identity's bucket, refilled to ``now`` (lock held)."""

        bucket = self._buckets.get(identity)
        if bucket is None:
            if len(self._buckets) >= _PRUNE_THRESHOLD:
                self._prune(now)
            bucket = self._buckets[identity] = _Bucket(self.burst, now)
        if self.rate > 0:
            bucket.tokens = min(self.burst,
                                bucket.tokens + (now - bucket.last_refill) * self.rate)
            bucket.last_refill = now
        return bucket

    def _releaser(self, bucket: _Bucket) -> Callable[[], None]:
        released = threading.Event()

        def release() -> None:
            if released.is_set():
                return
            released.set()
            with self._lock:
                bucket.inflight -= 1

        return release

    def _prune(self, now: float) -> None:
        """Drop idle buckets whose balance has refilled (lock held).

        Tokens are only materialised on admit, so an idle bucket's stored
        balance is stale; project the refill to now before judging fullness,
        or no bucket would ever qualify while rate limiting is on.
        """

        idle = []
        for identity, bucket in self._buckets.items():
            if bucket.inflight or now - bucket.last_refill < 1.0:
                continue
            tokens = bucket.tokens
            if self.rate > 0:
                tokens = min(self.burst,
                             tokens + (now - bucket.last_refill) * self.rate)
            if tokens >= self.burst - 1e-9:
                idle.append(identity)
        for identity in idle:
            del self._buckets[identity]

    def _publish_throttled(self, identity: str, method: str, reason: str,
                           retry_after: float) -> None:
        if self.bus is None:
            return
        try:
            self.bus.publish("dispatch.throttled", {
                "identity": identity,
                "method": method,
                "reason": reason,
                "retry_after": round(retry_after, 6),
            }, source=self.source)
        except Exception:  # noqa: BLE001 - monitoring must never kill dispatch
            pass

    # -- introspection -------------------------------------------------------
    def stats(self, *, top_k: int = 10) -> dict:
        """Counters plus the top-K identities by throttle pressure.

        Per-identity counters cover *live* buckets (pruned idle identities
        drop their history); they answer the operator question "who is the
        fabric shedding right now", not long-term accounting.
        """

        with self._lock:
            ranked = sorted(self._buckets.items(),
                            key=lambda item: (-item[1].throttled,
                                              -item[1].admitted, item[0]))
            per_identity = [{
                "identity": identity,
                "admitted": bucket.admitted,
                "throttled": bucket.throttled,
                "shed": bucket.shed,
                "inflight": bucket.inflight,
            } for identity, bucket in ranked[:max(0, int(top_k))]]
            return {
                "rate": self.rate,
                "burst": self.burst,
                "max_inflight": self.max_inflight,
                "identities": len(self._buckets),
                "admitted": self.admitted,
                "throttled": self.throttled,
                "exempted": self.exempted,
                "charged_tokens": self.charged_tokens,
                "sheds_applied": self.sheds_applied,
                "shed_sources": dict(self.shed_sources),
                "per_identity": per_identity,
            }
